//! Architecture description: cores, register space, scaling vectors.

use std::fmt;

use serde::{Deserialize, Serialize};

use sea_taskgraph::units::Bits;

use crate::dvs::{LevelSet, VoltageLevel};
use crate::ArchError;

/// Identifier of a processing core (dense index `0..n_cores`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct CoreId(usize);

impl CoreId {
    /// Creates a core id from a dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        CoreId(index)
    }

    /// Returns the dense index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 1-based like the paper's "Core 1".
        write!(f, "core{}", self.0 + 1)
    }
}

/// Default injectable register space per core: the ARM7 register file
/// (31 × 32 bit) plus 8 kbit data cache, 16 kbit instruction cache and
/// 512 kbit private memory (paper §II-A; decimal kbit).
pub const DEFAULT_CORE_REGISTER_SPACE_BITS: u64 = 31 * 32 + 8_000 + 16_000 + 512_000;

/// Default effective switched capacitance `C_L` (farads). Calibrated so the
/// four-core MPEG-2 designs land in the paper's few-mW range (Table II);
/// only relative power matters for the reproduction (DESIGN.md §2.1).
pub const DEFAULT_C_LOAD_FARADS: f64 = 55e-12;

/// Platform overhead factor calibrated to the paper's SystemC measurements.
///
/// The Fig. 2 task costs are pure computation cycles; the authors' measured
/// multiprocessor execution times (Table II: 1.32×10⁹ cycles ≈ 13.2 s for
/// the four-core proposed design against the 14.58 s deadline) include
/// pipeline stalls, cache misses and memory/bus contention that an ideal
/// cycle-count model does not see. Dividing each core's *effective*
/// throughput by this factor reproduces the published timing pressure —
/// without it the decoder meets its deadline at the lowest voltage on just
/// two cores and the architecture-allocation trends of Table III vanish.
///
/// The value is pinned by Table II itself: the proposed design's scaling
/// (2, 2, 3, 2) must be feasible (requires ≤ 1.94) while the all-lowest
/// combination (3, 3, 3, 3) must not be (requires ≥ 1.87), exactly as in
/// the published four-core outcome. The real clock (and therefore power
/// and SEU exposure per second) is unaffected. See DESIGN.md §3.
pub const ARM7_SYSTEMC_CPI_OVERHEAD: f64 = 1.9;

/// A homogeneous MPSoC: `C` identical cores sharing one DVS level set, with
/// dedicated inter-core links (paper Fig. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    n_cores: usize,
    levels: LevelSet,
    c_load_farads: f64,
    core_register_space: Bits,
    #[serde(default = "default_cpi_overhead")]
    cpi_overhead: f64,
}

// Dead only while the workspace builds against the no-op serde shim; the
// real serde derive reads it through `#[serde(default = "...")]` above.
#[allow(dead_code)]
fn default_cpi_overhead() -> f64 {
    1.0
}

impl Architecture {
    /// Creates a homogeneous architecture with default capacitance and
    /// register space.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    #[must_use]
    pub fn homogeneous(n_cores: usize, levels: LevelSet) -> Self {
        assert!(n_cores > 0, "an MPSoC needs at least one core");
        Architecture {
            n_cores,
            levels,
            c_load_farads: DEFAULT_C_LOAD_FARADS,
            core_register_space: Bits::new(DEFAULT_CORE_REGISTER_SPACE_BITS),
            cpi_overhead: 1.0,
        }
    }

    /// Creates a homogeneous architecture with the ARM7/SystemC platform
    /// calibration ([`ARM7_SYSTEMC_CPI_OVERHEAD`]) applied — the
    /// configuration the experiment harnesses use.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    #[must_use]
    pub fn arm7_calibrated(n_cores: usize, levels: LevelSet) -> Self {
        Architecture::homogeneous(n_cores, levels)
            .with_cpi_overhead(ARM7_SYSTEMC_CPI_OVERHEAD)
            .expect("calibration constant is positive")
    }

    /// Replaces the platform overhead factor (effective throughput becomes
    /// `f / overhead`; the clock itself — power, SEU exposure — is
    /// unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] for factors below 1.
    pub fn with_cpi_overhead(mut self, overhead: f64) -> Result<Self, ArchError> {
        if overhead.is_nan() || overhead < 1.0 {
            return Err(ArchError::InvalidParameter {
                message: format!("CPI overhead must be >= 1, got {overhead}"),
            });
        }
        self.cpi_overhead = overhead;
        Ok(self)
    }

    /// Replaces the effective switched capacitance (non-consuming builder).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] for a non-positive value.
    pub fn with_c_load(mut self, c_load_farads: f64) -> Result<Self, ArchError> {
        if c_load_farads.is_nan() || c_load_farads <= 0.0 {
            return Err(ArchError::InvalidParameter {
                message: format!("C_L must be positive, got {c_load_farads}"),
            });
        }
        self.c_load_farads = c_load_farads;
        Ok(self)
    }

    /// Replaces the per-core injectable register space.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] for a zero-sized space.
    pub fn with_core_register_space(mut self, bits: Bits) -> Result<Self, ArchError> {
        if bits.is_zero() {
            return Err(ArchError::InvalidParameter {
                message: "core register space must be non-empty".into(),
            });
        }
        self.core_register_space = bits;
        Ok(self)
    }

    /// Number of cores `C`.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Iterates over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.n_cores).map(CoreId::new)
    }

    /// The DVS level set shared by all cores.
    #[must_use]
    pub fn levels(&self) -> &LevelSet {
        &self.levels
    }

    /// Effective switched capacitance `C_L` in farads.
    #[must_use]
    pub fn c_load_farads(&self) -> f64 {
        self.c_load_farads
    }

    /// Injectable register space per core (register file + caches + memory).
    #[must_use]
    pub fn core_register_space(&self) -> Bits {
        self.core_register_space
    }

    /// Platform overhead factor (1.0 = ideal cycle-count timing).
    #[must_use]
    pub fn cpi_overhead(&self) -> f64 {
        self.cpi_overhead
    }

    /// Resolves the operating point of `core` under scaling vector `s`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range; `s` is validated at construction.
    #[must_use]
    pub fn operating_point(&self, core: CoreId, s: &ScalingVector) -> VoltageLevel {
        assert!(core.index() < self.n_cores, "{core} out of range");
        self.levels.level(s.coefficient(core))
    }

    /// Effective execution throughput of `core` under `s`, in cycles of
    /// useful work per second: `f / cpi_overhead`. Timing models (the list
    /// scheduler, the DES engine) divide work by this; electrical models
    /// (power, per-cycle SEU exposure) keep the raw clock `f`.
    #[must_use]
    pub fn effective_frequency(&self, core: CoreId, s: &ScalingVector) -> f64 {
        self.operating_point(core, s).f_hz / self.cpi_overhead
    }
}

/// Per-core scaling coefficients `(s_1, …, s_C)`, validated against an
/// architecture (1-based coefficients as in Table I / Fig. 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScalingVector(Vec<u8>);

impl ScalingVector {
    /// Validates coefficients against an architecture's level count.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::WrongCoreCount`] or
    /// [`ArchError::InvalidCoefficient`].
    pub fn try_new(coefficients: Vec<u8>, arch: &Architecture) -> Result<Self, ArchError> {
        if coefficients.len() != arch.n_cores() {
            return Err(ArchError::WrongCoreCount {
                got: coefficients.len(),
                expected: arch.n_cores(),
            });
        }
        let levels = arch.levels().len();
        for &s in &coefficients {
            if s == 0 || usize::from(s) > levels {
                return Err(ArchError::InvalidCoefficient {
                    coefficient: s,
                    levels,
                });
            }
        }
        Ok(ScalingVector(coefficients))
    }

    /// All cores at the nominal level (`s = 1`).
    #[must_use]
    pub fn all_nominal(arch: &Architecture) -> Self {
        ScalingVector(vec![1; arch.n_cores()])
    }

    /// All cores at the lowest-voltage level (`s = L`), where the paper's
    /// power minimization starts.
    #[must_use]
    pub fn all_lowest(arch: &Architecture) -> Self {
        ScalingVector(vec![arch.levels().lowest_coefficient(); arch.n_cores()])
    }

    /// All cores at the same coefficient `s`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCoefficient`] if `s` is out of range.
    pub fn uniform(s: u8, arch: &Architecture) -> Result<Self, ArchError> {
        ScalingVector::try_new(vec![s; arch.n_cores()], arch)
    }

    /// Coefficient of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn coefficient(&self, core: CoreId) -> u8 {
        self.0[core.index()]
    }

    /// All coefficients in core order.
    #[must_use]
    pub fn coefficients(&self) -> &[u8] {
        &self.0
    }

    /// Number of cores covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the vector covers no cores (never true once validated).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for ScalingVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch4() -> Architecture {
        Architecture::homogeneous(4, LevelSet::arm7_three_level())
    }

    #[test]
    fn validates_scaling_vectors() {
        let a = arch4();
        assert!(ScalingVector::try_new(vec![1, 2, 3, 2], &a).is_ok());
        assert!(matches!(
            ScalingVector::try_new(vec![1, 2, 3], &a).unwrap_err(),
            ArchError::WrongCoreCount { .. }
        ));
        assert!(matches!(
            ScalingVector::try_new(vec![1, 2, 3, 4], &a).unwrap_err(),
            ArchError::InvalidCoefficient { .. }
        ));
        assert!(matches!(
            ScalingVector::try_new(vec![0, 2, 3, 1], &a).unwrap_err(),
            ArchError::InvalidCoefficient { .. }
        ));
    }

    #[test]
    fn nominal_and_lowest_helpers() {
        let a = arch4();
        assert_eq!(ScalingVector::all_nominal(&a).coefficients(), &[1, 1, 1, 1]);
        assert_eq!(ScalingVector::all_lowest(&a).coefficients(), &[3, 3, 3, 3]);
        assert_eq!(
            ScalingVector::uniform(2, &a).unwrap().coefficients(),
            &[2, 2, 2, 2]
        );
    }

    #[test]
    fn operating_point_resolution() {
        let a = arch4();
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &a).unwrap();
        let p2 = a.operating_point(CoreId::new(2), &s);
        assert!((p2.f_hz - 200e6 / 3.0).abs() < 1e3);
        let p0 = a.operating_point(CoreId::new(0), &s);
        assert!((p0.f_hz - 100e6).abs() < 1.0);
    }

    #[test]
    fn default_register_space_matches_section_2a() {
        let a = arch4();
        assert_eq!(a.core_register_space().as_u64(), 536_992);
    }

    #[test]
    fn builder_rejects_bad_values() {
        let a = arch4();
        assert!(a.clone().with_c_load(0.0).is_err());
        assert!(a.clone().with_c_load(-1.0).is_err());
        assert!(a.clone().with_core_register_space(Bits::ZERO).is_err());
        let tuned = a.with_c_load(10e-12).unwrap();
        assert_eq!(tuned.c_load_farads(), 10e-12);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_architecture_panics() {
        let _ = Architecture::homogeneous(0, LevelSet::arm7_three_level());
    }

    #[test]
    fn display_forms() {
        let a = arch4();
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &a).unwrap();
        assert_eq!(s.to_string(), "(2,2,3,2)");
        assert_eq!(CoreId::new(0).to_string(), "core1");
    }
}
