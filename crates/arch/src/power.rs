//! Dynamic power model (eqs. 1 and 5).
//!
//! Per core, `P_dyn = α · C_L · f · V²dd` (eq. 1); for the MPSoC under a
//! scaling vector, `P = C_L · Σ_i α_i f_i(s_i) V²dd_i(s_i)` (eq. 5), where
//! `α_i` is the utilization (busy fraction) of core i.

use crate::dvs::VoltageLevel;

/// Power contribution of one core: utilization, operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreActivity {
    /// Busy fraction `α_i ∈ [0, 1]` of the core over the run.
    pub alpha: f64,
    /// Operating point `(f_i, Vdd_i)` of the core.
    pub level: VoltageLevel,
}

/// MPSoC dynamic power in watts, eq. (5): `C_L · Σ α_i f_i V²_i`.
///
/// # Panics
///
/// Panics in debug builds if any `α` is outside `[0, 1]` or `c_load` is not
/// positive.
///
/// ```
/// use sea_arch::dvs::VoltageLevel;
/// use sea_arch::power::{dynamic_power_w, CoreActivity};
///
/// let cores = [CoreActivity { alpha: 1.0, level: VoltageLevel::new(200e6, 1.0) }];
/// let p = dynamic_power_w(55e-12, &cores);
/// assert!((p - 55e-12 * 200e6).abs() < 1e-9); // 11 mW at full tilt
/// ```
#[must_use]
pub fn dynamic_power_w(c_load_farads: f64, cores: &[CoreActivity]) -> f64 {
    debug_assert!(c_load_farads > 0.0, "C_L must be positive");
    cores
        .iter()
        .map(|c| {
            debug_assert!(
                (0.0..=1.0 + 1e-9).contains(&c.alpha),
                "utilization must be in [0, 1], got {}",
                c.alpha
            );
            c.alpha * c.level.f_hz * c.level.vdd * c.level.vdd
        })
        .sum::<f64>()
        * c_load_farads
}

/// Convenience: watts → milliwatts (the paper reports mW).
#[must_use]
pub fn watts_to_mw(watts: f64) -> f64 {
    watts * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvs::LevelSet;

    #[test]
    fn single_core_matches_eq1() {
        let lvl = VoltageLevel::new(100e6, 0.5);
        let p = dynamic_power_w(
            1e-12,
            &[CoreActivity {
                alpha: 0.5,
                level: lvl,
            }],
        );
        // 0.5 * 1e-12 * 100e6 * 0.25 = 1.25e-5 W
        assert!((p - 1.25e-5).abs() < 1e-12);
    }

    #[test]
    fn power_is_additive_over_cores() {
        let lvl = VoltageLevel::new(100e6, 0.5);
        let one = dynamic_power_w(
            1e-12,
            &[CoreActivity {
                alpha: 1.0,
                level: lvl,
            }],
        );
        let two = dynamic_power_w(
            1e-12,
            &[
                CoreActivity {
                    alpha: 1.0,
                    level: lvl,
                },
                CoreActivity {
                    alpha: 1.0,
                    level: lvl,
                },
            ],
        );
        assert!((two - 2.0 * one).abs() < 1e-18);
    }

    #[test]
    fn voltage_scaling_saves_quadratically() {
        // Scaling s=1 -> s=2 halves f and reduces Vdd 1.0 -> 0.583:
        // power ratio should be 0.5 * 0.583² ≈ 0.17.
        let set = LevelSet::arm7_three_level();
        let p1 = dynamic_power_w(
            55e-12,
            &[CoreActivity {
                alpha: 1.0,
                level: set.level(1),
            }],
        );
        let p2 = dynamic_power_w(
            55e-12,
            &[CoreActivity {
                alpha: 1.0,
                level: set.level(2),
            }],
        );
        let ratio = p2 / p1;
        assert!(
            (ratio - 0.5 * 0.5834 * 0.5834).abs() < 1e-3,
            "ratio {ratio}"
        );
    }

    #[test]
    fn mw_conversion() {
        assert_eq!(watts_to_mw(0.001), 1.0);
    }

    #[test]
    fn idle_cores_draw_nothing() {
        let lvl = VoltageLevel::new(100e6, 0.5);
        let p = dynamic_power_w(
            1e-12,
            &[CoreActivity {
                alpha: 0.0,
                level: lvl,
            }],
        );
        assert_eq!(p, 0.0);
    }
}
