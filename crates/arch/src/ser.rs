//! Soft error rate vs. supply voltage (paper §II-B, §III Observation 3).
//!
//! Lowering `Vdd` reduces the critical charge `Q_crit` of storage nodes and
//! raises the SEU rate exponentially (Chandra & Aitken, the paper's ref.
//! \[2\]). The paper quantifies the effect on its own platform: scaling every
//! core from s=1 (1.0 V) to s=2 (0.583 V) multiplies the number of SEUs
//! experienced by ≈2.5 with unchanged cycle counts and register usage
//! (Observation 3, Fig. 3(b) vs. 3(c)).
//!
//! We therefore model the per-bit-per-cycle rate as
//!
//! ```text
//! λ(Vdd) = λ_ref · exp(k · (V_nom − Vdd))
//! ```
//!
//! and calibrate `k = ln(2.5) / (1.0 − 0.5834) ≈ 2.199 V⁻¹` so the model
//! reproduces the published 2.5× anchor exactly.

use serde::{Deserialize, Serialize};

use crate::dvs::arm7_vdd_for_mhz;
use crate::ArchError;

/// The paper's quoted raw soft error rate: 10⁻⁹ SEU/bit/cycle ("1 SEU per
/// 10 ms for a 1 kbit register bank").
pub const PAPER_SER: f64 = 1e-9;

/// Exponential SER-vs-voltage model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SerModel {
    /// Rate at nominal voltage, in SEU per bit per clock cycle.
    lambda_ref: f64,
    /// Nominal supply voltage (volts) at which `λ = λ_ref`.
    v_nom: f64,
    /// Exponential slope in V⁻¹.
    k: f64,
}

impl SerModel {
    /// Creates a model with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] if `lambda_ref` or `v_nom`
    /// are non-positive, or `k` is negative.
    pub fn try_new(lambda_ref: f64, v_nom: f64, k: f64) -> Result<Self, ArchError> {
        if lambda_ref.is_nan() || lambda_ref <= 0.0 {
            return Err(ArchError::InvalidParameter {
                message: format!("lambda_ref must be positive, got {lambda_ref}"),
            });
        }
        if v_nom.is_nan() || v_nom <= 0.0 {
            return Err(ArchError::InvalidParameter {
                message: format!("v_nom must be positive, got {v_nom}"),
            });
        }
        if k.is_nan() || k < 0.0 {
            return Err(ArchError::InvalidParameter {
                message: format!("k must be non-negative, got {k}"),
            });
        }
        Ok(SerModel {
            lambda_ref,
            v_nom,
            k,
        })
    }

    /// The paper-calibrated model: `λ_ref` at 1.0 V with the slope anchored
    /// to Observation 3's 2.5× increase at the s=2 voltage (0.583 V).
    ///
    /// ```
    /// use sea_arch::ser::{SerModel, PAPER_SER};
    /// let m = SerModel::calibrated(PAPER_SER);
    /// let ratio = m.lambda(0.58337) / m.lambda(1.0);
    /// assert!((ratio - 2.5).abs() < 1e-3);
    /// ```
    #[must_use]
    pub fn calibrated(lambda_ref: f64) -> Self {
        let v_nom = arm7_vdd_for_mhz(200.0); // ≈ 1.0 V
        let v_s2 = arm7_vdd_for_mhz(100.0); // ≈ 0.583 V
        let k = (2.5f64).ln() / (v_nom - v_s2);
        SerModel::try_new(lambda_ref, v_nom, k).expect("calibration constants are positive")
    }

    /// Rate at nominal voltage (SEU/bit/cycle).
    #[must_use]
    pub fn lambda_ref(&self) -> f64 {
        self.lambda_ref
    }

    /// Nominal voltage in volts.
    #[must_use]
    pub fn v_nom(&self) -> f64 {
        self.v_nom
    }

    /// Exponential slope in V⁻¹.
    #[must_use]
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Per-bit-per-cycle SEU rate at supply voltage `vdd`.
    #[must_use]
    pub fn lambda(&self, vdd: f64) -> f64 {
        self.lambda_ref * self.voltage_factor(vdd)
    }

    /// Multiplicative rate increase relative to nominal voltage:
    /// `exp(k · (V_nom − Vdd))`.
    #[must_use]
    pub fn voltage_factor(&self, vdd: f64) -> f64 {
        (self.k * (self.v_nom - vdd)).exp()
    }
}

impl Default for SerModel {
    /// The paper-calibrated model at the quoted SER of 10⁻⁹ SEU/bit/cycle.
    fn default() -> Self {
        SerModel::calibrated(PAPER_SER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvs::LevelSet;

    #[test]
    fn nominal_voltage_has_reference_rate() {
        let m = SerModel::default();
        let l = m.lambda(m.v_nom());
        assert!((l - PAPER_SER).abs() < 1e-18);
    }

    #[test]
    fn observation3_anchor_is_exact() {
        let m = SerModel::default();
        let set = LevelSet::arm7_three_level();
        let ratio = m.lambda(set.level(2).vdd) / m.lambda(set.level(1).vdd);
        assert!((ratio - 2.5).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn s3_rate_is_higher_still() {
        let m = SerModel::default();
        let set = LevelSet::arm7_three_level();
        let r3 = m.voltage_factor(set.level(3).vdd);
        let r2 = m.voltage_factor(set.level(2).vdd);
        assert!(r3 > r2, "lower voltage must raise the rate");
        // exp(2.199 * (1.0 - 0.4445)) ≈ 3.39
        assert!((r3 - 3.39).abs() < 0.05, "factor(s=3) = {r3}");
    }

    #[test]
    fn rate_monotonically_decreases_with_voltage() {
        let m = SerModel::default();
        let mut last = f64::INFINITY;
        for i in 0..20 {
            let v = 0.3 + 0.05 * f64::from(i);
            let l = m.lambda(v);
            assert!(l < last, "λ must decrease as Vdd rises");
            last = l;
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SerModel::try_new(0.0, 1.0, 1.0).is_err());
        assert!(SerModel::try_new(1e-9, 0.0, 1.0).is_err());
        assert!(SerModel::try_new(1e-9, 1.0, -1.0).is_err());
        assert!(
            SerModel::try_new(1e-9, 1.0, 0.0).is_ok(),
            "k = 0 disables voltage dependence"
        );
    }

    #[test]
    fn paper_ser_quote_consistency() {
        // "1 SEU per 10 ms for a 1 kbit register bank": at 100 MHz a 10 ms
        // window is 1e6 cycles; 1e-9 · 1000 bit · 1e6 cy = 1 SEU.
        let expected = PAPER_SER * 1000.0 * 1e6;
        assert!((expected - 1.0).abs() < 1e-12);
    }
}
