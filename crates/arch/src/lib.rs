//! MPSoC architecture, DVS, power and soft-error-rate models (paper §II-A/B).
//!
//! The paper's platform is a homogeneous MPSoC of `C` identical ARM7TDMI
//! cores, each with data/instruction caches (8 kbit / 16 kbit) and 512 kbit
//! private memory, fed by a clock-tree generator that gives every core its
//! own discrete voltage/frequency operating point (Fig. 1, Table I).
//!
//! * [`dvs`] — the ARM7TDMI voltage/frequency relationship of eq. (2) and
//!   the discrete [`dvs::LevelSet`]s used in the paper (2, 3 and 4 levels).
//! * [`power`] — dynamic power `P = C_L Σ α_i f_i V²_i` (eqs. 1 and 5).
//! * [`ser`] — soft error rate vs. supply voltage: exponential increase as
//!   `Vdd` scales down, calibrated to the paper's Observation 3.
//! * [`mpsoc`] — the [`mpsoc::Architecture`] description, per-core
//!   [`mpsoc::CoreId`]s and the per-core [`mpsoc::ScalingVector`].
//!
//! # Example
//!
//! ```
//! use sea_arch::dvs::LevelSet;
//! use sea_arch::mpsoc::{Architecture, CoreId, ScalingVector};
//!
//! let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
//! let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).expect("valid coefficients");
//! let lvl = arch.operating_point(CoreId::new(2), &s);
//! assert!((lvl.f_hz - 66.7e6).abs() < 1e5); // s=3 -> 66.7 MHz
//! ```

pub mod dvs;
pub mod mpsoc;
pub mod power;
pub mod ser;

pub use dvs::{LevelSet, VoltageLevel};
pub use mpsoc::{Architecture, CoreId, ScalingVector};
pub use power::dynamic_power_w;
pub use ser::SerModel;

use std::error::Error;
use std::fmt;

/// Errors produced while describing architectures or scaling vectors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// A scaling coefficient was outside `1..=levels`.
    InvalidCoefficient {
        /// The offending coefficient.
        coefficient: u8,
        /// Number of levels available.
        levels: usize,
    },
    /// A scaling vector's length did not match the core count.
    WrongCoreCount {
        /// Cores in the vector.
        got: usize,
        /// Cores in the architecture.
        expected: usize,
    },
    /// An architecture parameter was invalid; the message names it.
    InvalidParameter {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidCoefficient {
                coefficient,
                levels,
            } => write!(f, "scaling coefficient {coefficient} outside 1..={levels}"),
            ArchError::WrongCoreCount { got, expected } => {
                write!(
                    f,
                    "scaling vector has {got} entries, architecture has {expected} cores"
                )
            }
            ArchError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_error_is_well_behaved() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<ArchError>();
        let e = ArchError::WrongCoreCount {
            got: 3,
            expected: 4,
        };
        assert!(e.to_string().contains('3'));
    }
}
