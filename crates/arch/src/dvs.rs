//! Dynamic voltage scaling: operating points and level sets (eq. 2, Table I).
//!
//! For the ARM7TDMI the paper uses the measured relationship
//! `Vdd(f) = 0.1667 + 4.1667 · f/10³` (volts, f in MHz) from Pouwelse et al.,
//! with discrete scaling coefficients `s` such that `f(s) = 200/s MHz`:
//!
//! | s | f (MHz) | Vdd (V) |
//! |---|---------|---------|
//! | 1 | 200     | 1.00    |
//! | 2 | 100     | 0.58    |
//! | 3 | 66.7    | 0.44    |
//!
//! Fig. 11 additionally studies a two-level set (dropping s=3) and a
//! four-level set that introduces the faster point (236 MHz, 1.2 V).

use serde::{Deserialize, Serialize};

use crate::ArchError;

/// One discrete operating point of a core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageLevel {
    /// Clock frequency in Hz.
    pub f_hz: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
}

impl VoltageLevel {
    /// Creates an operating point.
    #[must_use]
    pub const fn new(f_hz: f64, vdd: f64) -> Self {
        VoltageLevel { f_hz, vdd }
    }
}

/// ARM7TDMI supply voltage required for frequency `f_mhz`, eq. (2) of the
/// paper evaluated directly: `Vdd = 0.1667 + 4.1667 · f/1000` volts.
///
/// ```
/// let v = sea_arch::dvs::arm7_vdd_for_mhz(200.0);
/// assert!((v - 1.0).abs() < 1e-3);
/// ```
#[must_use]
pub fn arm7_vdd_for_mhz(f_mhz: f64) -> f64 {
    0.1667 + 4.1667 * f_mhz / 1000.0
}

/// Nominal ARM7TDMI frequency (s = 1) in MHz.
pub const ARM7_NOMINAL_MHZ: f64 = 200.0;

/// An ordered set of operating points indexed by the paper's scaling
/// coefficient `s` (1-based; `s = 1` is the fastest/nominal level and larger
/// `s` means lower voltage and frequency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelSet {
    name: String,
    levels: Vec<VoltageLevel>,
}

impl LevelSet {
    /// Creates a level set from fastest to slowest operating point.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] if `levels` is empty, or if
    /// frequencies/voltages are non-positive or not strictly decreasing.
    pub fn try_new(name: impl Into<String>, levels: Vec<VoltageLevel>) -> Result<Self, ArchError> {
        if levels.is_empty() {
            return Err(ArchError::InvalidParameter {
                message: "level set needs at least one operating point".into(),
            });
        }
        for w in levels.windows(2) {
            if w[1].f_hz >= w[0].f_hz || w[1].vdd >= w[0].vdd {
                return Err(ArchError::InvalidParameter {
                    message: "levels must be strictly decreasing in f and Vdd".into(),
                });
            }
        }
        for l in &levels {
            if l.f_hz.is_nan() || l.f_hz <= 0.0 || l.vdd.is_nan() || l.vdd <= 0.0 {
                return Err(ArchError::InvalidParameter {
                    message: format!("non-positive operating point {l:?}"),
                });
            }
        }
        Ok(LevelSet {
            name: name.into(),
            levels,
        })
    }

    /// The paper's three-level Table I set, computed from eq. (2) at
    /// `f(s) = 200/s` MHz.
    #[must_use]
    pub fn arm7_three_level() -> Self {
        let levels = (1..=3)
            .map(|s| {
                let f_mhz = ARM7_NOMINAL_MHZ / f64::from(s);
                VoltageLevel::new(f_mhz * 1e6, arm7_vdd_for_mhz(f_mhz))
            })
            .collect();
        LevelSet::try_new("arm7-3-level", levels).expect("static table is monotone")
    }

    /// The Fig. 11 two-level set: (200 MHz, 1 V) and (100 MHz, 0.58 V).
    #[must_use]
    pub fn arm7_two_level() -> Self {
        let mut three = Self::arm7_three_level();
        three.levels.truncate(2);
        three.name = "arm7-2-level".into();
        three
    }

    /// The Fig. 11 four-level set: Table I plus the faster point
    /// (236 MHz, 1.2 V) quoted in §V.
    #[must_use]
    pub fn arm7_four_level() -> Self {
        let mut levels = vec![VoltageLevel::new(236e6, 1.2)];
        levels.extend(Self::arm7_three_level().levels);
        LevelSet::try_new("arm7-4-level", levels).expect("static table is monotone")
    }

    /// The set's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels `L`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Returns true if there are no levels (never true for a built set).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The operating point for scaling coefficient `s` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `s` is outside `1..=len()`; validate with
    /// [`LevelSet::checked_level`] or [`crate::mpsoc::ScalingVector`] first.
    #[must_use]
    pub fn level(&self, s: u8) -> VoltageLevel {
        self.checked_level(s)
            .unwrap_or_else(|| panic!("scaling coefficient {s} outside 1..={}", self.len()))
    }

    /// The operating point for coefficient `s`, or `None` if out of range.
    #[must_use]
    pub fn checked_level(&self, s: u8) -> Option<VoltageLevel> {
        if s == 0 {
            return None;
        }
        self.levels.get(usize::from(s) - 1).copied()
    }

    /// Iterates over `(s, level)` pairs from nominal downwards.
    pub fn iter(&self) -> impl Iterator<Item = (u8, VoltageLevel)> + '_ {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, &l)| (u8::try_from(i + 1).expect("level sets are tiny"), l))
    }

    /// The lowest-voltage coefficient (`L`), where the paper's optimization
    /// starts (Fig. 5).
    #[must_use]
    pub fn lowest_coefficient(&self) -> u8 {
        u8::try_from(self.levels.len()).expect("level sets are tiny")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let set = LevelSet::arm7_three_level();
        let l1 = set.level(1);
        let l2 = set.level(2);
        let l3 = set.level(3);
        assert!((l1.f_hz - 200e6).abs() < 1.0);
        assert!((l1.vdd - 1.0).abs() < 2e-3, "Vdd(s=1)={}", l1.vdd);
        assert!((l2.f_hz - 100e6).abs() < 1.0);
        assert!((l2.vdd - 0.58).abs() < 5e-3, "Vdd(s=2)={}", l2.vdd);
        assert!((l3.f_hz - 66.7e6).abs() < 0.05e6);
        assert!((l3.vdd - 0.44).abs() < 5e-3, "Vdd(s=3)={}", l3.vdd);
    }

    #[test]
    fn two_and_four_level_sets() {
        assert_eq!(LevelSet::arm7_two_level().len(), 2);
        let four = LevelSet::arm7_four_level();
        assert_eq!(four.len(), 4);
        let fastest = four.level(1);
        assert!((fastest.f_hz - 236e6).abs() < 1.0);
        assert!((fastest.vdd - 1.2).abs() < 1e-9);
        // s=2 of the 4-level set is the nominal Table I point.
        assert!((four.level(2).f_hz - 200e6).abs() < 1.0);
    }

    #[test]
    fn rejects_non_monotone_sets() {
        let bad = LevelSet::try_new(
            "bad",
            vec![VoltageLevel::new(100e6, 0.5), VoltageLevel::new(200e6, 1.0)],
        );
        assert!(bad.is_err());
        assert!(LevelSet::try_new("empty", vec![]).is_err());
    }

    #[test]
    fn checked_level_bounds() {
        let set = LevelSet::arm7_three_level();
        assert!(set.checked_level(0).is_none());
        assert!(set.checked_level(4).is_none());
        assert!(set.checked_level(3).is_some());
        assert_eq!(set.lowest_coefficient(), 3);
    }

    #[test]
    #[should_panic(expected = "scaling coefficient")]
    fn level_panics_out_of_range() {
        let _ = LevelSet::arm7_three_level().level(9);
    }

    #[test]
    fn iter_yields_one_based_coefficients() {
        let set = LevelSet::arm7_three_level();
        let coeffs: Vec<u8> = set.iter().map(|(s, _)| s).collect();
        assert_eq!(coeffs, vec![1, 2, 3]);
    }
}
