//! Streaming result sinks and deterministic final reports.
//!
//! A [`Sink`] observes a campaign twice: [`Sink::unit_completed`] fires
//! per unit in *completion* order (useful for progress; nondeterministic
//! under `jobs > 1`), and [`Sink::finish`] receives the full record list
//! in *enumeration* order. The bundled sinks therefore split their two
//! outputs: progress lines go to one writer (the CLI wires stderr) and
//! the final report to another (stdout) — so a campaign's stdout is
//! byte-identical for every worker count, which
//! `tests/determinism.rs` pins.
//!
//! The report renderers ([`human_report`], [`csv_report`],
//! [`jsonl_report`]) are pure functions of the record list, usable
//! without a sink.
//!
//! Progress streams are **flushed after every record**: a campaign killed
//! mid-run leaves at most the in-flight unit unwritten, so a progress
//! JSONL stream (or the write-ahead journal built on the same records,
//! [`crate::journal`]) is always a parseable prefix.

use std::fmt::Write as _;
use std::io::Write;

use crate::unit::UnitRecord;

/// Observer of campaign progress and results.
pub trait Sink {
    /// Called once before the first unit runs.
    fn begin(&mut self, _total: usize) {}
    /// Called per unit as it completes (completion order).
    fn unit_completed(&mut self, _record: &UnitRecord) {}
    /// Called once with every record in enumeration order.
    fn finish(&mut self, _records: &[UnitRecord]) {}
    /// Appends the aggregate sections ([`crate::analytics`]) after the
    /// per-unit report. Opt-in and separate from [`Sink::finish`] so the
    /// default per-unit output stays byte-stable; the bundled sinks
    /// render to the same report writer (errors surface through
    /// [`Sink::take_io_error`]). The default is a no-op.
    fn report_aggregates(&mut self, _records: &[UnitRecord]) {}
    /// The first I/O error the sink swallowed while writing the *final
    /// report*, if any. Sinks buffer the error rather than failing
    /// mid-campaign; callers that need a complete report check this
    /// after the run — a truncated report on a full disk must not exit
    /// 0. Progress-stream failures (a closed stderr consumer) are
    /// deliberately excluded: losing progress lines must not fail a
    /// campaign whose report was written intact.
    fn take_io_error(&mut self) -> Option<std::io::Error> {
        None
    }
}

/// Discards everything (library callers that only want the results).
pub struct NullSink;

impl Sink for NullSink {}

/// Human-readable sink: one-line progress per completion, aligned table
/// at the end.
pub struct HumanSink<P: Write, F: Write> {
    progress: P,
    report: F,
    total: usize,
    done: usize,
    report_error: Option<std::io::Error>,
}

impl<P: Write, F: Write> HumanSink<P, F> {
    /// Creates a sink streaming progress to `progress` and the final
    /// table to `report`.
    pub fn new(progress: P, report: F) -> Self {
        HumanSink {
            progress,
            report,
            total: 0,
            done: 0,
            report_error: None,
        }
    }
}

/// Keeps the first report-writer failure. Progress-stream writes are
/// fire-and-forget (`let _ =`): a dead stderr consumer must not fail a
/// campaign whose stdout report was written intact.
fn record_io(slot: &mut Option<std::io::Error>, result: std::io::Result<()>) {
    if let (None, Err(e)) = (&slot, result) {
        *slot = Some(e);
    }
}

impl<P: Write, F: Write> Sink for HumanSink<P, F> {
    fn begin(&mut self, total: usize) {
        self.total = total;
        self.done = 0;
        let _ = writeln!(self.progress, "campaign: {total} units");
        let _ = self.progress.flush();
    }

    fn unit_completed(&mut self, record: &UnitRecord) {
        self.done += 1;
        let _ = writeln!(
            self.progress,
            "[{}/{}] #{} {} {} cores={} {}",
            self.done,
            self.total,
            record.index,
            record.kind,
            record.app,
            record.cores,
            record.status
        );
        let _ = self.progress.flush();
    }

    fn finish(&mut self, records: &[UnitRecord]) {
        let r = write!(self.report, "{}", human_report(records)).and_then(|()| self.report.flush());
        record_io(&mut self.report_error, r);
    }

    fn report_aggregates(&mut self, records: &[UnitRecord]) {
        let r = write!(
            self.report,
            "{}",
            crate::analytics::human_aggregates(records)
        )
        .and_then(|()| self.report.flush());
        record_io(&mut self.report_error, r);
    }

    fn take_io_error(&mut self) -> Option<std::io::Error> {
        self.report_error.take()
    }
}

/// CSV sink: progress lines per completion, full CSV report at the end.
pub struct CsvSink<P: Write, F: Write> {
    progress: P,
    report: F,
    report_error: Option<std::io::Error>,
}

impl<P: Write, F: Write> CsvSink<P, F> {
    /// Creates a sink streaming per-unit CSV rows to `progress` and the
    /// ordered report (header + rows) to `report`.
    pub fn new(progress: P, report: F) -> Self {
        CsvSink {
            progress,
            report,
            report_error: None,
        }
    }
}

impl<P: Write, F: Write> Sink for CsvSink<P, F> {
    fn begin(&mut self, _total: usize) {
        let _ = writeln!(self.progress, "{CSV_HEADER}");
        let _ = self.progress.flush();
    }

    fn unit_completed(&mut self, record: &UnitRecord) {
        let _ = writeln!(self.progress, "{}", csv_row(record));
        let _ = self.progress.flush();
    }

    fn finish(&mut self, records: &[UnitRecord]) {
        let r = write!(self.report, "{}", csv_report(records)).and_then(|()| self.report.flush());
        record_io(&mut self.report_error, r);
    }

    fn report_aggregates(&mut self, records: &[UnitRecord]) {
        let r = write!(self.report, "{}", crate::analytics::csv_aggregates(records))
            .and_then(|()| self.report.flush());
        record_io(&mut self.report_error, r);
    }

    fn take_io_error(&mut self) -> Option<std::io::Error> {
        self.report_error.take()
    }
}

/// JSONL sink: one JSON object per completion, ordered JSONL report at
/// the end.
pub struct JsonlSink<P: Write, F: Write> {
    progress: P,
    report: F,
    report_error: Option<std::io::Error>,
}

impl<P: Write, F: Write> JsonlSink<P, F> {
    /// Creates a sink streaming per-unit JSON lines to `progress` and the
    /// ordered report to `report`.
    pub fn new(progress: P, report: F) -> Self {
        JsonlSink {
            progress,
            report,
            report_error: None,
        }
    }
}

impl<P: Write, F: Write> Sink for JsonlSink<P, F> {
    fn unit_completed(&mut self, record: &UnitRecord) {
        let _ = writeln!(self.progress, "{}", json_record(record));
        let _ = self.progress.flush();
    }

    fn finish(&mut self, records: &[UnitRecord]) {
        let r = write!(self.report, "{}", jsonl_report(records)).and_then(|()| self.report.flush());
        record_io(&mut self.report_error, r);
    }

    fn report_aggregates(&mut self, records: &[UnitRecord]) {
        let r = write!(
            self.report,
            "{}",
            crate::analytics::jsonl_aggregates(records)
        )
        .and_then(|()| self.report.flush());
        record_io(&mut self.report_error, r);
    }

    fn take_io_error(&mut self) -> Option<std::io::Error> {
        self.report_error.take()
    }
}

/// The CSV column set, stable across formats.
pub const CSV_HEADER: &str = "index,scenario,kind,app,cores,levels,seed,status,power_mw,gamma,\
tm_seconds,r_kbits,evaluations,scaling,mapping,experienced_seus";

fn fmt_opt_f64(v: Option<f64>) -> String {
    // Non-finite values render as an empty field, mirroring
    // `json_field_f64`'s `null`: `NaN`/`inf` are absent measurements,
    // and printing them verbatim would diverge from the JSONL report.
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        Some(_) | None => String::new(),
    }
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(String::new, |x| x.to_string())
}

pub(crate) fn csv_escape(s: &str) -> String {
    // RFC 4180: quote on separators, quotes, and CR/LF — an unquoted
    // newline would split one field across two rows.
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn csv_row(r: &UnitRecord) -> String {
    [
        r.index.to_string(),
        csv_escape(&r.scenario),
        csv_escape(&r.kind),
        csv_escape(&r.app),
        r.cores.to_string(),
        r.levels.to_string(),
        r.seed.to_string(),
        r.status.to_string(),
        fmt_opt_f64(r.power_mw),
        fmt_opt_f64(r.gamma),
        fmt_opt_f64(r.tm_seconds),
        fmt_opt_f64(r.r_kbits),
        r.evaluations.map_or_else(String::new, |e| e.to_string()),
        csv_escape(r.scaling.as_deref().unwrap_or("")),
        csv_escape(r.mapping.as_deref().unwrap_or("")),
        fmt_opt_u64(r.experienced_seus),
    ]
    .join(",")
}

/// Renders the enumeration-order CSV report (header + one row per unit).
#[must_use]
pub fn csv_report(records: &[UnitRecord]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&csv_row(r));
        out.push('\n');
    }
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_field_f64(out: &mut String, key: &str, v: Option<f64>) {
    match v {
        // `{v}` is Rust's shortest round-trip float form — stable, locale
        // free, and valid JSON for every finite value.
        Some(v) if v.is_finite() => {
            let _ = write!(out, ",\"{key}\":{v}");
        }
        Some(_) | None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

/// Renders one record as a single-line JSON object with a fixed key
/// order.
#[must_use]
pub fn json_record(r: &UnitRecord) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"index\":{},\"scenario\":\"{}\",\"kind\":\"{}\",\"app\":\"{}\",\"cores\":{},\
         \"levels\":{},\"seed\":{},\"status\":\"{}\"",
        r.index,
        json_escape(&r.scenario),
        json_escape(&r.kind),
        json_escape(&r.app),
        r.cores,
        r.levels,
        r.seed,
        r.status,
    );
    json_field_f64(&mut out, "power_mw", r.power_mw);
    json_field_f64(&mut out, "gamma", r.gamma);
    json_field_f64(&mut out, "tm_seconds", r.tm_seconds);
    json_field_f64(&mut out, "r_kbits", r.r_kbits);
    match r.evaluations {
        Some(e) => {
            let _ = write!(out, ",\"evaluations\":{e}");
        }
        None => out.push_str(",\"evaluations\":null"),
    }
    match &r.scaling {
        Some(s) => {
            let _ = write!(out, ",\"scaling\":\"{}\"", json_escape(s));
        }
        None => out.push_str(",\"scaling\":null"),
    }
    match &r.mapping {
        Some(m) => {
            let _ = write!(out, ",\"mapping\":\"{}\"", json_escape(m));
        }
        None => out.push_str(",\"mapping\":null"),
    }
    match r.experienced_seus {
        Some(n) => {
            let _ = write!(out, ",\"experienced_seus\":{n}");
        }
        None => out.push_str(",\"experienced_seus\":null"),
    }
    out.push('}');
    out
}

/// Renders the enumeration-order JSONL report (one object per line).
#[must_use]
pub fn jsonl_report(records: &[UnitRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&json_record(r));
        out.push('\n');
    }
    out
}

/// Renders the enumeration-order human table.
#[must_use]
pub fn human_report(records: &[UnitRecord]) -> String {
    let header = [
        "#", "scenario", "kind", "app", "cores", "levels", "status", "P (mW)", "Gamma", "TM (s)",
        "evals",
    ];
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(records.len());
    for r in records {
        rows.push(vec![
            r.index.to_string(),
            r.scenario.clone(),
            r.kind.clone(),
            r.app.clone(),
            r.cores.to_string(),
            r.levels.to_string(),
            r.status.to_string(),
            r.power_mw.map_or_else(|| "-".into(), |v| format!("{v:.3}")),
            r.gamma.map_or_else(|| "-".into(), |v| format!("{v:.3e}")),
            r.tm_seconds
                .map_or_else(|| "-".into(), |v| format!("{v:.4}")),
            r.evaluations.map_or_else(|| "-".into(), |e| e.to_string()),
        ]);
    }
    ascii_table(&header, &rows)
}

/// Renders an aligned `|`-delimited ASCII table — shared by the per-unit
/// human report and the aggregate sections ([`crate::analytics`]).
pub(crate) fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (cell, w) in cells.iter().zip(widths) {
            let _ = write!(out, " {cell:<w$} |");
        }
        out.push('\n');
    };
    let header: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    render(&header, &widths, &mut out);
    out.push('|');
    for w in &widths {
        let _ = write!(out, "{}|", "-".repeat(w + 2));
    }
    out.push('\n');
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> UnitRecord {
        UnitRecord {
            index: 3,
            scenario: "s, with comma".into(),
            kind: "optimize".into(),
            app: "mpeg2".into(),
            cores: 4,
            levels: 3,
            seed: 9,
            status: "ok",
            power_mw: Some(4.6875),
            gamma: Some(327_000.25),
            tm_seconds: Some(13.5),
            r_kbits: None,
            evaluations: Some(1200),
            scaling: Some("(3,3,2,2)".into()),
            mapping: Some("core1: t1 | core2: t2".into()),
            experienced_seus: None,
        }
    }

    #[test]
    fn json_record_is_valid_shape_and_escapes() {
        let mut r = record();
        r.app = "a\"b\\c".into();
        let line = json_record(&r);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"app\":\"a\\\"b\\\\c\""));
        assert!(line.contains("\"power_mw\":4.6875"));
        assert!(line.contains("\"r_kbits\":null"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let report = csv_report(&[record()]);
        let mut lines = report.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.contains("\"s, with comma\""));
        assert!(row.contains("core1: t1 | core2: t2"));
    }

    #[test]
    fn csv_quotes_fields_with_cr_and_lf() {
        // Regression: an unquoted newline in a field used to split one
        // record across two CSV rows.
        assert_eq!(csv_escape("a\nb"), "\"a\nb\"");
        assert_eq!(csv_escape("a\rb"), "\"a\rb\"");
        assert_eq!(csv_escape("a\r\n\"b\",c"), "\"a\r\n\"\"b\"\",c\"");
        assert_eq!(csv_escape("plain"), "plain");

        let mut r = record();
        r.mapping = Some("core1: t1\ncore2: t2".into());
        let report = csv_report(&[r]);
        // Header + one (quoted, two-physical-line) row: exactly one
        // record boundary when parsed with RFC 4180 quoting.
        assert!(report.contains("\"core1: t1\ncore2: t2\""));
        let unquoted_newlines = report
            .split('"')
            .step_by(2) // text outside quotes
            .map(|chunk| chunk.matches('\n').count())
            .sum::<usize>();
        assert_eq!(unquoted_newlines, 2, "header + one row:\n{report}");
    }

    #[test]
    fn csv_and_jsonl_agree_on_non_finite_floats() {
        // Regression: CSV printed `NaN`/`inf` verbatim while JSONL
        // nulled them. Both now render "absent" for the same record.
        let mut r = record();
        r.power_mw = Some(f64::NAN);
        r.gamma = Some(f64::INFINITY);
        r.tm_seconds = Some(f64::NEG_INFINITY);
        let row = csv_report(&[r.clone()]).lines().nth(1).unwrap().to_string();
        assert!(!row.contains("NaN") && !row.contains("inf"), "{row}");
        assert!(row.contains(",ok,,,,"), "empty metric fields: {row}");
        let json = json_record(&r);
        assert!(
            json.contains("\"power_mw\":null")
                && json.contains("\"gamma\":null")
                && json.contains("\"tm_seconds\":null"),
            "{json}"
        );
    }

    #[test]
    fn human_report_aligns_columns() {
        let table = human_report(&[record()]);
        assert!(table.contains("| #"));
        assert!(table.contains("optimize"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn jsonl_report_is_one_line_per_record() {
        let records = vec![record(), record()];
        let report = jsonl_report(&records);
        assert_eq!(report.lines().count(), 2);
    }

    /// A writer that fails every operation (full-disk stand-in).
    struct FailingWriter;
    impl std::io::Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }

    #[test]
    fn sinks_surface_report_write_failures() {
        let mut sink = JsonlSink::new(Vec::new(), FailingWriter);
        sink.unit_completed(&record());
        sink.finish(&[record()]);
        assert!(sink.take_io_error().is_some(), "finish failure captured");
        assert!(sink.take_io_error().is_none(), "error is taken once");
    }

    #[test]
    fn progress_stream_failures_do_not_fail_the_campaign() {
        // A dead stderr consumer must not poison the exit status when the
        // stdout report was written intact.
        let mut sink = HumanSink::new(FailingWriter, Vec::new());
        sink.begin(2);
        sink.unit_completed(&record());
        sink.finish(&[record()]);
        assert!(sink.take_io_error().is_none());

        let mut sink = CsvSink::new(FailingWriter, Vec::new());
        sink.begin(1);
        sink.unit_completed(&record());
        sink.finish(&[record()]);
        assert!(sink.take_io_error().is_none());
    }

    /// A clonable handle to a shared byte buffer — stands in for a
    /// terminal/file that another process could observe mid-run.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn progress_is_flushed_per_record_even_through_a_bufwriter() {
        // Regression: progress used to sit in an interposed BufWriter
        // until the campaign ended, so a killed run lost every progress
        // line. Each unit_completed must flush through to the observer.
        let observed = SharedBuf::default();
        let mut sink = JsonlSink::new(
            std::io::BufWriter::with_capacity(1 << 20, observed.clone()),
            Vec::new(),
        );
        sink.begin(3);
        sink.unit_completed(&record());
        let after_one = observed.0.lock().unwrap().clone();
        assert_eq!(
            String::from_utf8(after_one).unwrap().lines().count(),
            1,
            "first record visible before the campaign ends"
        );
        sink.unit_completed(&record());
        let after_two = String::from_utf8(observed.0.lock().unwrap().clone()).unwrap();
        assert_eq!(after_two.lines().count(), 2);
        // Every line of the mid-run stream is complete, parseable JSONL.
        for line in after_two.lines() {
            assert!(
                crate::journal::parse_record_json(line).is_ok(),
                "mid-run prefix line parses: {line}"
            );
        }
    }

    #[test]
    fn human_sink_progress_counter_resets_per_campaign() {
        let mut sink = HumanSink::new(Vec::new(), Vec::new());
        sink.begin(2);
        sink.unit_completed(&record());
        sink.unit_completed(&record());
        sink.begin(1);
        sink.unit_completed(&record());
        let progress = String::from_utf8(sink.progress).unwrap();
        assert!(
            progress.contains("[1/1]"),
            "counter reset on begin:\n{progress}"
        );
        assert!(!progress.contains("[3/1]"), "no carry-over:\n{progress}");
    }
}
