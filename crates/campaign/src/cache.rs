//! Content-addressed on-disk result cache for campaign units.
//!
//! A unit's result is a pure function of its content hash
//! ([`crate::hash::unit_hash`]), so completed results can be reused across
//! processes, campaigns and front ends: repeated `reproduce` runs and
//! overlapping specs become incremental. The cache is opt-in (the
//! `--cache` flag or the `SEA_CACHE` environment variable); when neither
//! is set, nothing here runs and the engine performs **zero** filesystem
//! writes.
//!
//! Layout: one file per unit, named `<unit-hash>.unit`, written to a
//! temporary name and atomically renamed — concurrent writers (parallel
//! workers, overlapping campaigns) can only ever race to publish
//! identical bytes. Each entry carries the unit's flat
//! [`UnitRecord`] (as
//! the exact JSON the sinks emit) plus a bitwise-exact encoding of the
//! full typed payload ([`sea_opt::codec`] for designs, local codecs for
//! sweep/simulate), and ends with a content checksum. A truncated or
//! corrupted entry fails the checksum (or any parse step) and is treated
//! as a miss — the unit is recomputed and the entry rewritten; corruption
//! never crashes a campaign and never poisons a report.

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use sea_baselines::sweep::SweepPoint;
use sea_opt::codec::{self, CodecError, Tokens};
use sea_sim::fault::CoreFaults;
use sea_sim::{ExecutionTrace, FaultReport, SeuEvent, SimReport, TaskEvent};

use crate::hash::{unit_hash, ContentHash, ContentHasher};
use crate::journal::parse_record_json;
use crate::sink::json_record;
use crate::unit::{Unit, UnitPayload, UnitRecord, UnitResult};

/// Environment variable naming the cache directory when `--cache` is not
/// given.
pub const CACHE_ENV: &str = "SEA_CACHE";

/// Cache entry format version (first line of every entry).
/// v2: the bound-and-prune driver charges zero evaluations to pruned
/// scaling chunks, so tight-deadline results computed by v1 builds
/// would disagree byte-for-byte with fresh ones — refusing them is the
/// cheap, safe fix.
pub const CACHE_VERSION: u32 = 2;

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Cache { dir })
    }

    /// Resolves the cache from an explicit flag value or, failing that,
    /// the [`CACHE_ENV`] environment variable. An *empty* value in
    /// either position means "unset" (an unset shell variable expanding
    /// to `--cache ""` must not root a cache at the current directory).
    /// Returns `Ok(None)` — and guarantees no filesystem activity — when
    /// neither names a directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures for a named directory.
    pub fn resolve(flag: Option<&str>) -> std::io::Result<Option<Self>> {
        let dir = flag
            .map(str::to_string)
            .filter(|s| !s.is_empty())
            .or_else(|| std::env::var(CACHE_ENV).ok().filter(|s| !s.is_empty()));
        match dir {
            Some(d) => Cache::open(d).map(Some),
            None => Ok(None),
        }
    }

    /// The directory backing this cache.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a unit hash.
    #[must_use]
    pub fn entry_path(&self, hash: ContentHash) -> PathBuf {
        self.dir.join(format!("{}.unit", hash.to_hex()))
    }

    /// Looks a unit up. Any miss, parse failure, checksum mismatch or
    /// shape incompatibility returns `None` — the caller recomputes.
    #[must_use]
    pub fn load(&self, unit: &Unit) -> Option<UnitResult> {
        let hash = unit_hash(unit);
        let source = std::fs::read_to_string(self.entry_path(hash)).ok()?;
        decode_entry(&source, unit, hash).ok()
    }

    /// Publishes a completed unit result (atomic rename; best-effort —
    /// the pool ignores failures, a full disk must not fail a campaign).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors for callers that do care (tests).
    pub fn store(&self, result: &UnitResult) -> std::io::Result<()> {
        // Per-store unique temp name: pid separates processes, the
        // counter separates same-process workers storing the *same* unit
        // hash (possible when two scenarios contain content-identical
        // units) — without it, one worker's fs::write could truncate the
        // file another worker is mid-rename on.
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let hash = unit_hash(&result.unit);
        let body = encode_entry(result, hash);
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            hash.to_hex(),
            std::process::id(),
            STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, self.entry_path(hash))
    }

    /// Surveys every `<hash>.unit` entry in the cache directory: size,
    /// modification time and structural health (magic, version, embedded
    /// hash vs. file name, checksum, record line — everything except the
    /// typed payload, which needs the owning unit to decode). Entries are
    /// returned sorted by file name so reports are deterministic.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures; per-entry read failures are
    /// reported as [`EntryHealth::Corrupt`], not errors.
    pub fn survey(&self) -> std::io::Result<Vec<EntrySurvey>> {
        let mut entries: Vec<EntrySurvey> = self
            .scan()?
            .into_iter()
            .map(|raw| {
                // A file whose name is not a unit hash can never be a
                // cache hit (lookups derive paths from hashes), so it is
                // unhealthy no matter what it contains.
                let health = if raw.hash.is_none() {
                    EntryHealth::Corrupt("file name is not a 32-hex-digit unit hash".into())
                } else {
                    match std::fs::read_to_string(&raw.path) {
                        Ok(source) => match validate_entry(&source, raw.hash) {
                            Ok(kind) => EntryHealth::Ok {
                                kind: kind.to_string(),
                            },
                            Err(e) => EntryHealth::Corrupt(e),
                        },
                        Err(e) => EntryHealth::Corrupt(format!("unreadable: {e}")),
                    }
                };
                EntrySurvey {
                    path: raw.path,
                    hash: raw.hash,
                    bytes: raw.bytes,
                    modified: raw.modified,
                    health,
                }
            })
            .collect();
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(entries)
    }

    /// Metadata-only entry listing (no contents read) — what pruning
    /// needs; [`Cache::survey`] layers content validation on top.
    fn scan(&self) -> std::io::Result<Vec<RawEntry>> {
        let mut entries = Vec::new();
        for dirent in std::fs::read_dir(&self.dir)? {
            let dirent = dirent?;
            let path = dirent.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name.strip_suffix(".unit") else {
                continue; // temp files, strays — not entries
            };
            let hash = ContentHash::parse_hex(stem);
            let (bytes, modified) = match dirent.metadata() {
                Ok(m) => (m.len(), m.modified().ok()),
                Err(_) => (0, None),
            };
            entries.push(RawEntry {
                path,
                hash,
                bytes,
                modified,
            });
        }
        Ok(entries)
    }

    /// Prunes entries by age and/or total size: first every entry older
    /// than `max_age` is deleted, then the oldest remaining entries go
    /// until the directory total is at most `max_bytes`. With neither
    /// limit this deletes nothing (and reports what is there).
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures. Per-entry delete failures are
    /// skipped (another process may have pruned concurrently).
    pub fn prune(
        &self,
        max_age: Option<Duration>,
        max_bytes: Option<u64>,
    ) -> std::io::Result<PruneOutcome> {
        let now = SystemTime::now();
        // Metadata only: pruning by age/size must not read (let alone
        // checksum) every entry's contents.
        let mut entries = self.scan()?;
        // Oldest first; entries without a readable mtime sort oldest so
        // they are reclaimed before anything with a known age.
        entries.sort_by_key(|e| e.modified);
        let mut outcome = PruneOutcome {
            scanned: entries.len(),
            deleted: 0,
            freed_bytes: 0,
            kept: 0,
            kept_bytes: 0,
        };
        let mut kept: Vec<&RawEntry> = Vec::with_capacity(entries.len());
        for entry in &entries {
            let age = match entry.modified {
                // A *future* mtime (clock skew, NFS) clamps to age zero:
                // the entry is at worst brand new. Mapping the error to
                // MAX would treat the freshest entries as infinitely old
                // and delete them first under any --max-age.
                Some(m) => now.duration_since(m).unwrap_or(Duration::ZERO),
                // An unreadable mtime stays infinitely old: with no
                // evidence of freshness it is reclaimed first.
                None => Duration::MAX,
            };
            let expired = max_age.is_some_and(|limit| age > limit);
            if expired && std::fs::remove_file(&entry.path).is_ok() {
                outcome.deleted += 1;
                outcome.freed_bytes += entry.bytes;
            } else {
                kept.push(entry);
            }
        }
        if let Some(limit) = max_bytes {
            let mut total: u64 = kept.iter().map(|e| e.bytes).sum();
            let mut survivors = Vec::with_capacity(kept.len());
            for entry in kept {
                if total > limit && std::fs::remove_file(&entry.path).is_ok() {
                    total -= entry.bytes;
                    outcome.deleted += 1;
                    outcome.freed_bytes += entry.bytes;
                } else {
                    survivors.push(entry);
                }
            }
            kept = survivors;
        }
        outcome.kept = kept.len();
        outcome.kept_bytes = kept.iter().map(|e| e.bytes).sum();
        Ok(outcome)
    }

    /// Reads every healthy entry's flat [`UnitRecord`] — the
    /// offline-analytics read path (`sea-dse report <cache-dir>`).
    /// Structural validation (checksum, magic, version, embedded hash,
    /// record line) runs per entry but the typed payload is never
    /// decoded and nothing is re-evaluated. Corrupt or mis-named entries
    /// are skipped and counted, mirroring the "a bad entry is a miss"
    /// rule. Records are returned sorted by enumeration index (ties by
    /// file name) so the rendered report matches the live campaign's
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures; per-entry problems are the
    /// skip count, not errors.
    pub fn records(&self) -> std::io::Result<(Vec<UnitRecord>, usize)> {
        let mut rows: Vec<(usize, PathBuf, UnitRecord)> = Vec::new();
        let mut skipped = 0usize;
        for raw in self.scan()? {
            let Some(hash) = raw.hash else {
                skipped += 1;
                continue;
            };
            let parsed = std::fs::read_to_string(&raw.path)
                .map_err(|e| format!("unreadable: {e}"))
                .and_then(|source| {
                    let parts = parse_entry(&source, Some(hash))?;
                    match parts.kind {
                        "design" | "infeasible" | "too-few-tasks" | "sweep" | "simulate" => {
                            Ok(parts.record)
                        }
                        other => Err(format!("unknown payload kind `{other}`")),
                    }
                });
            match parsed {
                Ok(record) => rows.push((record.index, raw.path, record)),
                Err(_) => skipped += 1,
            }
        }
        rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        Ok((rows.into_iter().map(|(_, _, r)| r).collect(), skipped))
    }
}

/// One entry's file metadata (no contents read).
struct RawEntry {
    path: PathBuf,
    hash: Option<ContentHash>,
    bytes: u64,
    modified: Option<SystemTime>,
}

/// One surveyed cache entry ([`Cache::survey`]).
#[derive(Debug, Clone)]
pub struct EntrySurvey {
    /// Entry file path.
    pub path: PathBuf,
    /// Unit hash parsed from the file name (`None` for a malformed name).
    pub hash: Option<ContentHash>,
    /// File size in bytes.
    pub bytes: u64,
    /// Modification time, when the filesystem reports one.
    pub modified: Option<SystemTime>,
    /// Structural health.
    pub health: EntryHealth,
}

/// Structural health of one cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryHealth {
    /// Magic, version, embedded hash and checksum all check out.
    Ok {
        /// The payload kind recorded in the entry.
        kind: String,
    },
    /// The entry would be treated as a miss (the reason why).
    Corrupt(String),
}

/// What [`Cache::prune`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneOutcome {
    /// Entries present before pruning.
    pub scanned: usize,
    /// Entries deleted.
    pub deleted: usize,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Entries remaining.
    pub kept: usize,
    /// Bytes remaining.
    pub kept_bytes: u64,
}

// ---------------------------------------------------------------------------
// Entry encoding.
// ---------------------------------------------------------------------------

fn payload_kind(payload: &UnitPayload) -> &'static str {
    match payload {
        UnitPayload::Design(_) => "design",
        UnitPayload::Infeasible { .. } => "infeasible",
        UnitPayload::TooFewTasks { .. } => "too-few-tasks",
        UnitPayload::Sweep(_) => "sweep",
        UnitPayload::Sim(_) => "simulate",
    }
}

fn encode_payload(payload: &UnitPayload) -> String {
    let mut s = String::new();
    match payload {
        UnitPayload::Design(out) => s.push_str(&codec::encode_outcome(out)),
        UnitPayload::Infeasible {
            best_tm_seconds,
            deadline_s,
        } => {
            codec::push_f64(&mut s, *best_tm_seconds);
            codec::push_f64(&mut s, *deadline_s);
        }
        UnitPayload::TooFewTasks { tasks, cores } => {
            codec::push_u64(&mut s, *tasks as u64);
            codec::push_u64(&mut s, *cores as u64);
        }
        UnitPayload::Sweep(points) => {
            codec::push_u64(&mut s, points.len() as u64);
            for p in points {
                s.push('\n');
                codec::push_mapping(&mut s, &p.mapping);
                codec::encode_evaluation(&mut s, &p.evaluation);
            }
        }
        UnitPayload::Sim(report) => encode_sim(&mut s, report),
    }
    s
}

fn encode_sim(s: &mut String, r: &SimReport) {
    codec::push_f64(s, r.trace.tm_seconds);
    codec::push_u64(s, u64::from(r.trace.iterations));
    codec::push_u64(s, r.trace.busy_s.len() as u64);
    for &b in &r.trace.busy_s {
        codec::push_f64(s, b);
    }
    codec::push_u64(s, r.trace.events.len() as u64);
    for e in &r.trace.events {
        codec::push_u64(s, e.task.index() as u64);
        codec::push_u64(s, u64::from(e.iteration));
        codec::push_u64(s, e.core.index() as u64);
        codec::push_f64(s, e.start_s);
        codec::push_f64(s, e.finish_s);
    }
    codec::push_u64(s, r.faults.per_core.len() as u64);
    for c in &r.faults.per_core {
        codec::push_u64(s, c.core.index() as u64);
        codec::push_u64(s, c.injected);
        codec::push_u64(s, c.experienced);
        codec::push_f64(s, c.expected_experienced);
        codec::push_u64(s, c.r_bits.as_u64());
        codec::push_f64(s, c.exposure_cycles);
    }
    codec::push_u64(s, r.faults.total_injected);
    codec::push_u64(s, r.faults.total_experienced);
    codec::push_f64(s, r.faults.gamma_expected);
    codec::push_u64(s, r.faults.events.len() as u64);
    for e in &r.faults.events {
        codec::push_u64(s, e.core.index() as u64);
        codec::push_f64(s, e.time_s);
        match e.block {
            Some(b) => codec::push_u64(s, b.index() as u64),
            None => codec::push_tok(s, "-"),
        }
        codec::push_bool(s, e.experienced);
    }
    codec::encode_evaluation(s, &r.analytic);
}

fn decode_sim(t: &mut Tokens<'_>) -> Result<SimReport, CodecError> {
    let tm_seconds = t.next_f64()?;
    let iterations = t.next_u32()?;
    let n_busy = t.next_usize()?;
    let busy_s = (0..n_busy)
        .map(|_| t.next_f64())
        .collect::<Result<Vec<_>, _>>()?;
    let n_events = t.next_usize()?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        events.push(TaskEvent {
            task: sea_taskgraph::TaskId::new(t.next_usize()?),
            iteration: t.next_u32()?,
            core: sea_arch::CoreId::new(t.next_usize()?),
            start_s: t.next_f64()?,
            finish_s: t.next_f64()?,
        });
    }
    let trace = ExecutionTrace {
        tm_seconds,
        busy_s,
        events,
        iterations,
    };
    let n_cores = t.next_usize()?;
    let mut per_core = Vec::with_capacity(n_cores);
    for _ in 0..n_cores {
        per_core.push(CoreFaults {
            core: sea_arch::CoreId::new(t.next_usize()?),
            injected: t.next_u64()?,
            experienced: t.next_u64()?,
            expected_experienced: t.next_f64()?,
            r_bits: sea_taskgraph::units::Bits::new(t.next_u64()?),
            exposure_cycles: t.next_f64()?,
        });
    }
    let total_injected = t.next_u64()?;
    let total_experienced = t.next_u64()?;
    let gamma_expected = t.next_f64()?;
    let n_seu = t.next_usize()?;
    let mut seu_events = Vec::with_capacity(n_seu);
    for _ in 0..n_seu {
        let core = sea_arch::CoreId::new(t.next_usize()?);
        let time_s = t.next_f64()?;
        let block = match t.next_tok()? {
            "-" => None,
            idx => Some(sea_taskgraph::RegisterBlockId::new(
                idx.parse()
                    .map_err(|_| CodecError(format!("bad block index `{idx}`")))?,
            )),
        };
        seu_events.push(SeuEvent {
            core,
            time_s,
            block,
            experienced: t.next_bool()?,
        });
    }
    let faults = FaultReport {
        per_core,
        total_injected,
        total_experienced,
        gamma_expected,
        events: seu_events,
    };
    let analytic = codec::decode_evaluation(t)?;
    Ok(SimReport {
        trace,
        faults,
        analytic,
    })
}

fn decode_payload(kind: &str, body: &str, unit: &Unit) -> Result<UnitPayload, CodecError> {
    match kind {
        "design" => {
            let arch = unit.optimizer_config().arch;
            Ok(UnitPayload::Design(Box::new(codec::decode_outcome(
                body, &arch,
            )?)))
        }
        "infeasible" => {
            let mut t = Tokens::new(body);
            let payload = UnitPayload::Infeasible {
                best_tm_seconds: t.next_f64()?,
                deadline_s: t.next_f64()?,
            };
            t.finish()?;
            Ok(payload)
        }
        "too-few-tasks" => {
            let mut t = Tokens::new(body);
            let payload = UnitPayload::TooFewTasks {
                tasks: t.next_usize()?,
                cores: t.next_usize()?,
            };
            t.finish()?;
            Ok(payload)
        }
        "sweep" => {
            let mut t = Tokens::new(body);
            let n = t.next_usize()?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push(SweepPoint {
                    mapping: codec::decode_mapping(&mut t, unit.cores)?,
                    evaluation: codec::decode_evaluation(&mut t)?,
                });
            }
            t.finish()?;
            Ok(UnitPayload::Sweep(points))
        }
        "simulate" => {
            let mut t = Tokens::new(body);
            let report = decode_sim(&mut t)?;
            t.finish()?;
            Ok(UnitPayload::Sim(Box::new(report)))
        }
        other => Err(CodecError(format!("unknown payload kind `{other}`"))),
    }
}

fn checksum(prefix: &str) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write(prefix.as_bytes());
    h.finish()
}

fn encode_entry(result: &UnitResult, hash: ContentHash) -> String {
    let mut s = format!("sea-unit-cache {CACHE_VERSION} {}\n", hash.to_hex());
    s.push_str("record ");
    s.push_str(&json_record(&result.record));
    s.push('\n');
    s.push_str("payload ");
    s.push_str(payload_kind(&result.payload));
    s.push('\n');
    s.push_str(&encode_payload(&result.payload));
    s.push('\n');
    let sum = checksum(&s);
    s.push_str("end ");
    s.push_str(&sum.to_hex());
    s.push('\n');
    s
}

fn take_line<'a>(rest: &mut &'a str) -> Option<&'a str> {
    let pos = rest.find('\n')?;
    let line = &rest[..pos];
    *rest = &rest[pos + 1..];
    Some(line)
}

/// The structurally validated pieces of one entry, payload still encoded.
struct EntryParts<'a> {
    record: UnitRecord,
    kind: &'a str,
    body: &'a str,
}

/// Validates everything except the typed payload: checksum, magic line,
/// format version, embedded hash (against `expected` when given) and the
/// record line.
fn parse_entry(source: &str, expected: Option<ContentHash>) -> Result<EntryParts<'_>, String> {
    let end_pos = source.rfind("\nend ").ok_or("no checksum line")?;
    let prefix = &source[..=end_pos];
    let stored = source[end_pos + 5..].trim();
    let stored = ContentHash::parse_hex(stored).ok_or("malformed checksum")?;
    if stored != checksum(prefix) {
        return Err("checksum mismatch (truncated or corrupted entry)".into());
    }
    let mut rest = prefix;
    let magic = take_line(&mut rest).ok_or("missing magic line")?;
    let mut parts = magic.split_whitespace();
    if parts.next() != Some("sea-unit-cache") {
        return Err("not a cache entry".into());
    }
    if parts.next() != Some(CACHE_VERSION.to_string().as_str()) {
        return Err("unsupported cache version".into());
    }
    let entry_hash = parts
        .next()
        .and_then(ContentHash::parse_hex)
        .ok_or("malformed entry hash")?;
    if expected.is_some_and(|h| h != entry_hash) {
        return Err("entry hash does not match its key".into());
    }
    let record_line = take_line(&mut rest).ok_or("missing record line")?;
    let record_json = record_line
        .strip_prefix("record ")
        .ok_or("malformed record line")?;
    let record = parse_record_json(record_json)?;
    let payload_line = take_line(&mut rest).ok_or("missing payload line")?;
    let kind = payload_line
        .strip_prefix("payload ")
        .ok_or("malformed payload line")?;
    Ok(EntryParts {
        record,
        kind,
        body: rest,
    })
}

/// Structural validation of one entry source without decoding the typed
/// payload (which needs the owning unit): checksum, magic, version,
/// embedded hash (against `expected` when given), record line and a known
/// payload kind. Returns the payload kind — what `sea-dse cache verify`
/// and the survey run.
///
/// # Errors
///
/// A human-readable reason the entry would be treated as a cache miss.
pub fn validate_entry(source: &str, expected: Option<ContentHash>) -> Result<&str, String> {
    let parts = parse_entry(source, expected)?;
    match parts.kind {
        "design" | "infeasible" | "too-few-tasks" | "sweep" | "simulate" => Ok(parts.kind),
        other => Err(format!("unknown payload kind `{other}`")),
    }
}

fn decode_entry(source: &str, unit: &Unit, hash: ContentHash) -> Result<UnitResult, String> {
    let parts = parse_entry(source, Some(hash))?;
    let mut record = parts.record;
    let payload = decode_payload(parts.kind, parts.body, unit).map_err(|e| e.to_string())?;
    // Index and scenario are presentation, not content: the entry may have
    // been written by a different campaign whose enumeration placed this
    // unit elsewhere.
    record.index = unit.index;
    record.scenario = unit.scenario.clone();
    Ok(UnitResult {
        unit: unit.clone(),
        payload,
        record,
    })
}

/// Encodes a completed unit result in the self-describing entry format —
/// record JSON, typed payload ([`sea_opt::codec`] and the local codecs)
/// and content checksum. This is both the cache's on-disk format and the
/// exact result payload `sea-dist` workers stream back to a coordinator.
#[must_use]
pub fn encode_result(result: &UnitResult) -> String {
    encode_entry(result, unit_hash(&result.unit))
}

/// Decodes an [`encode_result`] stream against the unit it must belong
/// to: the embedded hash has to equal `unit_hash(unit)` and the checksum
/// has to hold, so a coordinator can verify a worker's bytes against the
/// unit it dispatched. Presentation fields (index, scenario) are taken
/// from the live `unit`.
///
/// # Errors
///
/// A human-readable reason the stream cannot be trusted.
pub fn decode_result(source: &str, unit: &Unit) -> Result<UnitResult, String> {
    decode_entry(source, unit, unit_hash(unit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{run_unit, AppRef, BudgetSpec, UnitKind};
    use sea_opt::SelectionPolicy;
    use sea_taskgraph::AppSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_cache() -> (PathBuf, Cache) {
        let dir = std::env::temp_dir().join(format!(
            "sea-cache-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let cache = Cache::open(&dir).unwrap();
        (dir, cache)
    }

    fn unit(kind: UnitKind, seed: u64) -> Unit {
        Unit {
            index: 3,
            scenario: "cache-test".into(),
            kind,
            app: AppRef::Spec(AppSpec::Fig8),
            cores: 3,
            levels: 3,
            budget: BudgetSpec::Fast,
            selection: SelectionPolicy::default(),
            seed,
        }
    }

    fn assert_results_equal(a: &UnitResult, b: &UnitResult) {
        assert_eq!(json_record(&a.record), json_record(&b.record));
        match (&a.payload, &b.payload) {
            (UnitPayload::Design(x), UnitPayload::Design(y)) => {
                assert_eq!(
                    sea_opt::codec::encode_outcome(x),
                    sea_opt::codec::encode_outcome(y)
                );
            }
            (UnitPayload::Sweep(x), UnitPayload::Sweep(y)) => {
                assert_eq!(x.len(), y.len());
                for (p, q) in x.iter().zip(y) {
                    assert_eq!(p.mapping, q.mapping);
                    assert_eq!(p.evaluation, q.evaluation);
                }
            }
            (UnitPayload::Sim(x), UnitPayload::Sim(y)) => {
                assert_eq!(x.trace, y.trace);
                assert_eq!(x.faults, y.faults);
                assert_eq!(x.analytic, y.analytic);
            }
            (
                UnitPayload::Infeasible {
                    best_tm_seconds: a1,
                    deadline_s: a2,
                },
                UnitPayload::Infeasible {
                    best_tm_seconds: b1,
                    deadline_s: b2,
                },
            ) => {
                assert_eq!(a1.to_bits(), b1.to_bits());
                assert_eq!(a2.to_bits(), b2.to_bits());
            }
            (
                UnitPayload::TooFewTasks {
                    tasks: a1,
                    cores: a2,
                },
                UnitPayload::TooFewTasks {
                    tasks: b1,
                    cores: b2,
                },
            ) => {
                assert_eq!((a1, a2), (b1, b2));
            }
            (x, y) => panic!("payload kinds differ: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn design_sweep_and_simulate_entries_round_trip() {
        let (dir, cache) = temp_cache();
        let kinds = vec![
            // fig8 at 3 cores is deadline-infeasible under the paper
            // calibration → exercises the `infeasible` payload.
            unit(UnitKind::Optimize, 0x5EA),
            // mpeg2 at 4 cores is feasible → full `design` payload.
            {
                let mut u = unit(UnitKind::Optimize, 0x5EA);
                u.app = AppRef::Spec(AppSpec::Mpeg2);
                u.cores = 4;
                u
            },
            // 8 cores for fig8's 6 tasks → `too-few-tasks` payload.
            {
                let mut u = unit(UnitKind::Optimize, 0x5EA);
                u.cores = 8;
                u
            },
            unit(UnitKind::Sweep { count: 8, scale: 1 }, 42),
            {
                let mut u = unit(
                    UnitKind::Simulate {
                        scaling: vec![2, 2, 3, 2],
                        groups: vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7], vec![8], vec![9, 10]],
                        ser: sea_arch::ser::PAPER_SER,
                    },
                    13,
                );
                u.app = AppRef::Spec(AppSpec::Mpeg2);
                u.cores = 4;
                u
            },
        ];
        for u in kinds {
            let fresh = run_unit(&u).unwrap();
            assert!(cache.load(&u).is_none(), "cold cache misses");
            cache.store(&fresh).unwrap();
            let restored = cache.load(&u).expect("warm cache hits");
            assert_results_equal(&fresh, &restored);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn restored_records_take_the_live_units_presentation_fields() {
        let (dir, cache) = temp_cache();
        let u = unit(UnitKind::Optimize, 7);
        cache.store(&run_unit(&u).unwrap()).unwrap();
        let mut elsewhere = u.clone();
        elsewhere.index = 42;
        elsewhere.scenario = "another-campaign".into();
        let restored = cache.load(&elsewhere).expect("same content hash");
        assert_eq!(restored.record.index, 42);
        assert_eq!(restored.record.scenario, "another-campaign");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupted_and_truncated_entries_are_misses_not_crashes() {
        let (dir, cache) = temp_cache();
        let u = unit(UnitKind::Optimize, 9);
        cache.store(&run_unit(&u).unwrap()).unwrap();
        let path = cache.entry_path(unit_hash(&u));
        let good = std::fs::read_to_string(&path).unwrap();

        // Truncation (simulated torn write without the atomic rename).
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(cache.load(&u).is_none(), "truncated entry is a miss");

        // Single-byte corruption in the payload body.
        let mut corrupt = good.clone().into_bytes();
        let mid = corrupt.len() / 2;
        corrupt[mid] = corrupt[mid].wrapping_add(1);
        std::fs::write(&path, corrupt).unwrap();
        assert!(cache.load(&u).is_none(), "corrupted entry is a miss");

        // Recompute-and-store heals the entry.
        cache.store(&run_unit(&u).unwrap()).unwrap();
        assert!(cache.load(&u).is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn entries_do_not_cross_unit_identities() {
        let (dir, cache) = temp_cache();
        let a = unit(UnitKind::Optimize, 1);
        let b = unit(UnitKind::Optimize, 2); // different seed → different hash
        cache.store(&run_unit(&a).unwrap()).unwrap();
        assert!(cache.load(&b).is_none());
        // Renaming a's entry to b's key is detected by the embedded hash.
        std::fs::copy(
            cache.entry_path(unit_hash(&a)),
            cache.entry_path(unit_hash(&b)),
        )
        .unwrap();
        assert!(cache.load(&b).is_none(), "embedded hash check rejects");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn result_codec_round_trips_and_rejects_the_wrong_unit() {
        let u = unit(UnitKind::Optimize, 21);
        let fresh = run_unit(&u).unwrap();
        let encoded = encode_result(&fresh);
        let back = decode_result(&encoded, &u).expect("round trip");
        assert_results_equal(&fresh, &back);
        // Stable golden form: re-encoding is byte-identical.
        assert_eq!(encoded, encode_result(&back));
        // A different unit (different hash) must refuse the stream.
        let other = unit(UnitKind::Optimize, 22);
        assert!(decode_result(&encoded, &other).is_err());
        // Structural validation accepts it without knowing the unit.
        assert_eq!(validate_entry(&encoded, None), Ok("infeasible"));
        assert!(validate_entry(&encoded[..encoded.len() / 2], None).is_err());
    }

    #[test]
    fn survey_reports_health_and_prune_reclaims_entries() {
        let (dir, cache) = temp_cache();
        assert!(cache.survey().unwrap().is_empty());
        let a = unit(UnitKind::Optimize, 31);
        let b = unit(UnitKind::Optimize, 32);
        cache.store(&run_unit(&a).unwrap()).unwrap();
        cache.store(&run_unit(&b).unwrap()).unwrap();
        // A stray temp file is not an entry.
        std::fs::write(dir.join(".stray.tmp"), "junk").unwrap();
        // A mis-named `.unit` file can never be a cache hit: it must be
        // flagged corrupt, not reported healthy.
        let good_bytes = std::fs::read(cache.entry_path(unit_hash(&a))).unwrap();
        std::fs::write(dir.join("junk.unit"), &good_bytes).unwrap();
        let survey = cache.survey().unwrap();
        assert_eq!(survey.len(), 3);
        assert!(survey
            .iter()
            .any(|e| e.hash.is_none() && matches!(e.health, EntryHealth::Corrupt(_))));
        std::fs::remove_file(dir.join("junk.unit")).unwrap();

        let survey = cache.survey().unwrap();
        assert_eq!(survey.len(), 2);
        for entry in &survey {
            assert!(entry.hash.is_some());
            assert!(entry.bytes > 0);
            assert!(
                matches!(&entry.health, EntryHealth::Ok { kind } if kind == "infeasible"),
                "{:?}",
                entry.health
            );
        }

        // Corrupt one entry: survey flags it, load treats it as a miss.
        let victim = cache.entry_path(unit_hash(&a));
        let good = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, &good[..good.len() - 10]).unwrap();
        let survey = cache.survey().unwrap();
        assert_eq!(
            survey
                .iter()
                .filter(|e| matches!(e.health, EntryHealth::Corrupt(_)))
                .count(),
            1
        );

        // No limits: prune deletes nothing.
        let noop = cache.prune(None, None).unwrap();
        assert_eq!((noop.scanned, noop.deleted), (2, 0));
        // A zero-byte budget reclaims everything.
        let all = cache.prune(None, Some(0)).unwrap();
        assert_eq!(all.deleted, 2);
        assert_eq!(all.kept, 0);
        assert!(all.freed_bytes > 0);
        assert!(cache.survey().unwrap().is_empty());
        // Age-based pruning: everything here is younger than an hour.
        cache.store(&run_unit(&b).unwrap()).unwrap();
        let aged = cache
            .prune(Some(std::time::Duration::from_secs(3600)), None)
            .unwrap();
        assert_eq!((aged.deleted, aged.kept), (0, 1));
        // ... and a zero age deletes it.
        let aged = cache
            .prune(Some(std::time::Duration::from_secs(0)), None)
            .unwrap();
        assert_eq!(aged.deleted, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn prune_clamps_future_mtimes_to_age_zero() {
        // Regression: a future mtime (clock skew, NFS) used to map to
        // age = Duration::MAX via `duration_since(..).ok()`, so the
        // freshest entries were treated as infinitely old and deleted
        // first under any --max-age.
        let (dir, cache) = temp_cache();
        let u = unit(UnitKind::Optimize, 51);
        cache.store(&run_unit(&u).unwrap()).unwrap();
        let path = cache.entry_path(unit_hash(&u));
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_modified(SystemTime::now() + Duration::from_secs(3600))
            .unwrap();
        file.sync_all().unwrap();
        drop(file);
        // Even the tightest age limit must keep it: its age clamps to
        // zero, never to infinity.
        let outcome = cache.prune(Some(Duration::from_secs(0)), None).unwrap();
        assert_eq!((outcome.deleted, outcome.kept), (0, 1), "{outcome:?}");
        // Size-based pruning still reclaims it when asked.
        let outcome = cache.prune(None, Some(0)).unwrap();
        assert_eq!(outcome.deleted, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn records_reads_flat_records_without_decoding_payloads() {
        let (dir, cache) = temp_cache();
        let a = unit(UnitKind::Optimize, 61);
        let mut b = unit(UnitKind::Optimize, 62);
        b.index = 1; // sorts before a's index 3
        cache.store(&run_unit(&a).unwrap()).unwrap();
        cache.store(&run_unit(&b).unwrap()).unwrap();
        // A corrupt entry is skipped and counted, not an error.
        let victim = cache.entry_path(unit_hash(&a));
        let good = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, &good[..good.len() - 10]).unwrap();
        let (records, skipped) = cache.records().unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].index, 1);
        // Healed entry restores the full set, sorted by index.
        std::fs::write(&victim, &good).unwrap();
        let (records, skipped) = cache.records().unwrap();
        assert_eq!(skipped, 0);
        let indices: Vec<usize> = records.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![1, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn resolve_without_flag_or_env_is_none() {
        // `resolve(None)` with SEA_CACHE unset must not touch the
        // filesystem at all.
        let saved = std::env::var(CACHE_ENV).ok();
        std::env::remove_var(CACHE_ENV);
        assert!(Cache::resolve(None).unwrap().is_none());
        // `--cache ""` (an unset shell variable) must not root a cache
        // at the current working directory.
        assert!(
            Cache::resolve(Some("")).unwrap().is_none(),
            "empty flag = unset"
        );
        std::env::set_var(CACHE_ENV, "");
        assert!(Cache::resolve(None).unwrap().is_none(), "empty = unset");
        match saved {
            Some(v) => std::env::set_var(CACHE_ENV, v),
            None => std::env::remove_var(CACHE_ENV),
        }
    }
}
