//! The write-ahead campaign journal: crash-safe per-unit records and the
//! `--resume` machinery.
//!
//! A journal is a JSONL file. Line 1 is a header binding the file to one
//! specific campaign expansion via its *spec hash*
//! ([`crate::hash::units_hash`]):
//!
//! ```text
//! {"journal":"sea-campaign","version":1,"name":"quickstart","spec_hash":"<32 hex>","units":5}
//! ```
//!
//! Every following line records one completed unit, keyed by the unit's
//! content hash and enumeration index, with the exact flat record the
//! sinks render:
//!
//! ```text
//! {"unit":"<32 hex>","index":3,"record":{...same shape as `json_record`...}}
//! ```
//!
//! Records are flushed *and fsync'd* per unit, so a killed process loses
//! at most the unit that was in flight. Reading tolerates exactly one
//! torn tail line (the in-flight record of a crash); anything malformed
//! before the tail is corruption and fails loudly.
//!
//! **Compatibility rule:** a journal may only resume the campaign it was
//! written for — [`open_journal`] refuses (with both hashes in the
//! message) when the header's spec hash differs from the current
//! expansion's. A record whose unit hash does not match the unit at its
//! index is dropped and recomputed rather than trusted.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use crate::hash::{unit_hash, units_hash, ContentHash};
use crate::sink::json_record;
use crate::unit::{Unit, UnitRecord};
use crate::CampaignError;

/// Journal format version (header `version` field).
/// v2: bound-and-prune evaluation accounting (see
/// [`crate::cache::CACHE_VERSION`]) — v1 journals may hold records a
/// current build would not reproduce, so resuming from them is refused.
pub const JOURNAL_VERSION: u32 = 2;

fn jerr(msg: impl Into<String>) -> CampaignError {
    CampaignError::Journal(msg.into())
}

// ---------------------------------------------------------------------------
// Minimal JSON reading for the fixed, flat shapes this crate emits.
// ---------------------------------------------------------------------------

/// A value inside a flat JSON object: string, raw number, null, or one
/// nested object captured as its raw source slice.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(String),
    Null,
    Obj(String),
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
                out.push(char::from_u32(code).ok_or(format!("bad codepoint {code}"))?);
            }
            other => return Err(format!("bad escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

/// Scans a JSON string literal starting at the opening quote; returns the
/// raw (escaped) content and the index just past the closing quote.
fn scan_string(s: &str, start: usize) -> Result<(String, usize), String> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes.get(start), Some(&b'"'));
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok((s[start + 1..i].to_string(), i + 1)),
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

/// Scans a balanced JSON object starting at `{`; returns the raw slice
/// including braces and the index just past it.
fn scan_object(s: &str, start: usize) -> Result<(String, usize), String> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes.get(start), Some(&b'{'));
    let mut depth = 0usize;
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let (_, next) = scan_string(s, i)?;
                i = next;
            }
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    return Ok((s[start..i].to_string(), i));
                }
            }
            _ => i += 1,
        }
    }
    Err("unterminated object".into())
}

fn skip_ws(s: &str, mut i: usize) -> usize {
    let bytes = s.as_bytes();
    while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Parses one flat JSON object (`{"k":v,...}`) where every value is a
/// string, number, `null`, or a nested flat object (captured raw).
fn parse_flat_object(source: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let s = source.trim();
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return Err("not a JSON object".into());
    }
    let mut fields = Vec::new();
    let mut i = skip_ws(s, 1);
    if bytes.get(i) == Some(&b'}') {
        return Ok(fields);
    }
    loop {
        if bytes.get(i) != Some(&b'"') {
            return Err(format!("expected key at byte {i}"));
        }
        let (raw_key, next) = scan_string(s, i)?;
        let key = unescape(&raw_key)?;
        i = skip_ws(s, next);
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected `:` after key `{key}`"));
        }
        i = skip_ws(s, i + 1);
        let value = match bytes.get(i) {
            Some(&b'"') => {
                let (raw, next) = scan_string(s, i)?;
                i = next;
                JsonValue::Str(unescape(&raw)?)
            }
            Some(&b'{') => {
                let (raw, next) = scan_object(s, i)?;
                i = next;
                JsonValue::Obj(raw)
            }
            Some(_) => {
                let end = s[i..]
                    .find([',', '}'])
                    .map(|off| i + off)
                    .ok_or("unterminated value")?;
                let tok = s[i..end].trim();
                i = end;
                if tok == "null" {
                    JsonValue::Null
                } else if tok.is_empty() {
                    return Err(format!("empty value for `{key}`"));
                } else {
                    JsonValue::Num(tok.to_string())
                }
            }
            None => return Err("unterminated object".into()),
        };
        fields.push((key, value));
        i = skip_ws(s, i);
        match bytes.get(i) {
            Some(&b',') => i = skip_ws(s, i + 1),
            Some(&b'}') => {
                if skip_ws(s, i + 1) != s.len() {
                    return Err("trailing content after object".into());
                }
                return Ok(fields);
            }
            _ => return Err(format!("expected `,` or `}}` at byte {i}")),
        }
    }
}

struct Fields(Vec<(String, JsonValue)>);

impl Fields {
    fn take(&mut self, key: &str) -> Result<JsonValue, String> {
        let pos = self
            .0
            .iter()
            .position(|(k, _)| k == key)
            .ok_or(format!("missing field `{key}`"))?;
        Ok(self.0.remove(pos).1)
    }

    fn str(&mut self, key: &str) -> Result<String, String> {
        match self.take(key)? {
            JsonValue::Str(s) => Ok(s),
            other => Err(format!("field `{key}` is not a string: {other:?}")),
        }
    }

    fn num<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, String> {
        match self.take(key)? {
            JsonValue::Num(n) => n.parse().map_err(|_| format!("bad number in `{key}`: {n}")),
            other => Err(format!("field `{key}` is not a number: {other:?}")),
        }
    }

    fn opt_num<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, String> {
        match self.take(key)? {
            JsonValue::Null => Ok(None),
            JsonValue::Num(n) => n
                .parse()
                .map(Some)
                .map_err(|_| format!("bad number in `{key}`: {n}")),
            other => Err(format!("field `{key}` is not a number: {other:?}")),
        }
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<String>, String> {
        match self.take(key)? {
            JsonValue::Null => Ok(None),
            JsonValue::Str(s) => Ok(Some(s)),
            other => Err(format!("field `{key}` is not a string: {other:?}")),
        }
    }
}

/// Parses a [`json_record`]-shaped object back into a [`UnitRecord`].
///
/// The round trip is exact: re-rendering the parsed record with
/// [`json_record`] reproduces the input byte for byte (floats are emitted
/// in Rust's shortest round-trip form, which `str::parse::<f64>`
/// recovers exactly).
///
/// # Errors
///
/// Returns a message for malformed JSON, missing fields, or an unknown
/// `status`.
pub fn parse_record_json(source: &str) -> Result<UnitRecord, String> {
    let mut f = Fields(parse_flat_object(source)?);
    let status = match f.str("status")?.as_str() {
        "ok" => "ok",
        "infeasible" => "infeasible",
        "too-few-tasks" => "too-few-tasks",
        other => return Err(format!("unknown status `{other}`")),
    };
    Ok(UnitRecord {
        index: f.num("index")?,
        scenario: f.str("scenario")?,
        kind: f.str("kind")?,
        app: f.str("app")?,
        cores: f.num("cores")?,
        levels: f.num("levels")?,
        seed: f.num("seed")?,
        status,
        power_mw: f.opt_num("power_mw")?,
        gamma: f.opt_num("gamma")?,
        tm_seconds: f.opt_num("tm_seconds")?,
        r_kbits: f.opt_num("r_kbits")?,
        evaluations: f.opt_num("evaluations")?,
        scaling: f.opt_str("scaling")?,
        mapping: f.opt_str("mapping")?,
        experienced_seus: f.opt_num("experienced_seus")?,
    })
}

// ---------------------------------------------------------------------------
// Journal lines.
// ---------------------------------------------------------------------------

/// Renders the journal header line (no trailing newline).
#[must_use]
pub fn header_line(name: &str, spec_hash: ContentHash, units: usize) -> String {
    format!(
        "{{\"journal\":\"sea-campaign\",\"version\":{JOURNAL_VERSION},\"name\":\"{}\",\
         \"spec_hash\":\"{}\",\"units\":{units}}}",
        crate::sink::json_escape(name),
        spec_hash.to_hex()
    )
}

/// Renders one journal record line (no trailing newline). `index` is the
/// *enumeration position* in the unit list — the slot a resume restores
/// into — which the pool keeps authoritative independently of the
/// record's own (presentation) `index` field.
#[must_use]
pub fn record_line(index: usize, hash: ContentHash, record: &UnitRecord) -> String {
    format!(
        "{{\"unit\":\"{}\",\"index\":{index},\"record\":{}}}",
        hash.to_hex(),
        json_record(record)
    )
}

/// The parsed journal header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Format version.
    pub version: u32,
    /// Campaign name at write time.
    pub name: String,
    /// Spec hash of the expansion the journal belongs to.
    pub spec_hash: ContentHash,
    /// Unit count of that expansion.
    pub units: usize,
}

/// One parsed journal record.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// Content hash of the unit that completed.
    pub unit_hash: ContentHash,
    /// Enumeration index.
    pub index: usize,
    /// The flat record as the sinks would render it.
    pub record: UnitRecord,
}

/// A fully parsed journal.
#[derive(Debug, Clone)]
pub struct Journal {
    /// The header line.
    pub header: JournalHeader,
    /// Records in file order (a crash-torn final line is dropped).
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header + parsed records, each
    /// newline-terminated). Anything beyond is a torn tail that must be
    /// truncated away before appending, or the next record would fuse
    /// onto the fragment and corrupt the file for later resumes.
    pub valid_len: usize,
}

fn parse_header(line: &str) -> Result<JournalHeader, String> {
    let mut f = Fields(parse_flat_object(line)?);
    let magic = f.str("journal")?;
    if magic != "sea-campaign" {
        return Err(format!("not a sea-campaign journal (magic `{magic}`)"));
    }
    let version = f.num("version")?;
    let name = f.str("name")?;
    let hex = f.str("spec_hash")?;
    let spec_hash = ContentHash::parse_hex(&hex).ok_or(format!("malformed spec_hash `{hex}`"))?;
    let units = f.num("units")?;
    Ok(JournalHeader {
        version,
        name,
        spec_hash,
        units,
    })
}

fn parse_record(line: &str) -> Result<JournalRecord, String> {
    let mut f = Fields(parse_flat_object(line)?);
    let hex = f.str("unit")?;
    let unit_hash = ContentHash::parse_hex(&hex).ok_or(format!("malformed unit hash `{hex}`"))?;
    let index = f.num("index")?;
    let record = match f.take("record")? {
        JsonValue::Obj(raw) => parse_record_json(&raw)?,
        other => return Err(format!("field `record` is not an object: {other:?}")),
    };
    Ok(JournalRecord {
        unit_hash,
        index,
        record,
    })
}

/// Parses journal source text.
///
/// The final line may be torn (a crash mid-append): if it fails to parse
/// it is dropped. A malformed line anywhere *before* the tail is
/// corruption and errors.
///
/// # Errors
///
/// [`CampaignError::Journal`] for a malformed header, an unsupported
/// format version, or a mid-file record.
pub fn parse_journal(source: &str) -> Result<Journal, CampaignError> {
    // Split into newline-*terminated* lines, tracking the byte offset
    // just past each terminator: `valid_len` must point at a clean line
    // boundary so a resume can truncate a torn tail before appending.
    let mut lines: Vec<(usize, &str)> = Vec::new();
    let mut start = 0usize;
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            lines.push((i + 1, &source[start..i]));
            start = i + 1;
        }
    }
    // Anything after the last newline is by definition a torn tail (the
    // writer emits whole `line + \n` units and fsyncs).
    let unterminated_tail = !source[start..].trim().is_empty();

    let mut complete = lines
        .iter()
        .filter(|(_, line)| !line.trim().is_empty())
        .copied();
    let Some((header_end, header_src)) = complete.next() else {
        return Err(jerr(if unterminated_tail {
            "journal has no complete header line (torn during creation?)"
        } else {
            "journal is empty"
        }));
    };
    let header = parse_header(header_src).map_err(|e| jerr(format!("journal header: {e}")))?;
    // Version skew must surface *before* record parsing — a future
    // format's records would otherwise fail with a misleading
    // mid-file-corruption message.
    if header.version != JOURNAL_VERSION {
        return Err(jerr(format!(
            "journal has format version {} (this build reads {JOURNAL_VERSION})",
            header.version
        )));
    }
    let rest: Vec<(usize, &str)> = complete.collect();
    let mut records = Vec::with_capacity(rest.len());
    let mut valid_len = header_end;
    for (k, (end, line)) in rest.iter().enumerate() {
        match parse_record(line) {
            Ok(r) => {
                records.push(r);
                valid_len = *end;
            }
            Err(e) if k + 1 == rest.len() && !unterminated_tail => {
                // Torn final line: the record in flight when the process
                // died. (With an unterminated tail present, every
                // newline-terminated line must be intact.)
                let _ = e;
            }
            Err(e) => {
                return Err(jerr(format!("journal record {}: {e}", k + 1)));
            }
        }
    }
    Ok(Journal {
        header,
        records,
        valid_len,
    })
}

/// Appender for a campaign journal, fsync'ing each record so the file
/// survives a kill at any instant.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` and durably writes the header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(
        path: &Path,
        name: &str,
        spec_hash: ContentHash,
        units: usize,
    ) -> std::io::Result<Self> {
        let mut file = File::create(path)?;
        writeln!(file, "{}", header_line(name, spec_hash, units))?;
        file.sync_data()?;
        Ok(JournalWriter { file })
    }

    /// Opens an existing journal for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_append(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Durably appends one completed-unit record (write + fsync),
    /// keyed by its enumeration position `index`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors — the caller must treat a failed
    /// append as fatal (the write-ahead guarantee is gone).
    pub fn append(
        &mut self,
        index: usize,
        hash: ContentHash,
        record: &UnitRecord,
    ) -> std::io::Result<()> {
        writeln!(self.file, "{}", record_line(index, hash, record))?;
        self.file.sync_data()
    }
}

/// A journal opened (or created) for one specific unit list: the records
/// already present, slotted by index, plus the appender for new ones.
#[derive(Debug)]
pub struct JournalPlan {
    /// Per-index records restored from the journal (`None` = still to
    /// run).
    pub prefilled: Vec<Option<UnitRecord>>,
    /// Appender positioned at the end of the journal.
    pub writer: JournalWriter,
    /// How many units the journal already covered.
    pub resumed: usize,
}

/// Opens `path` as the journal for `units`: creates it (with a durable
/// header) when absent or empty, otherwise validates it against the
/// expansion and returns the completed records.
///
/// # Errors
///
/// * [`CampaignError::Journal`] when the file belongs to a different
///   campaign (spec-hash mismatch — the compatibility rule), has a
///   different format version, or is corrupt mid-file.
/// * Filesystem errors, wrapped in [`CampaignError::Journal`].
pub fn open_journal(path: &Path, name: &str, units: &[Unit]) -> Result<JournalPlan, CampaignError> {
    let spec_hash = units_hash(units);
    let fresh = match std::fs::metadata(path) {
        Ok(m) => m.len() == 0,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
        Err(e) => {
            return Err(jerr(format!(
                "cannot stat journal `{}`: {e}",
                path.display()
            )))
        }
    };
    if fresh {
        let writer = JournalWriter::create(path, name, spec_hash, units.len())
            .map_err(|e| jerr(format!("cannot create journal `{}`: {e}", path.display())))?;
        return Ok(JournalPlan {
            prefilled: vec![None; units.len()],
            writer,
            resumed: 0,
        });
    }
    let source = std::fs::read_to_string(path)
        .map_err(|e| jerr(format!("cannot read journal `{}`: {e}", path.display())))?;
    let journal = parse_journal(&source)?;
    if journal.header.spec_hash != spec_hash {
        return Err(jerr(format!(
            "refusing to resume `{}`: it was written for a different campaign \
             (journal spec-hash {}, this campaign {}). Delete the journal or point \
             --resume at the matching one.",
            path.display(),
            journal.header.spec_hash.to_hex(),
            spec_hash.to_hex()
        )));
    }
    if journal.header.units != units.len() {
        return Err(jerr(format!(
            "journal `{}` covers {} units but the campaign expands to {}",
            path.display(),
            journal.header.units,
            units.len()
        )));
    }
    let mut prefilled: Vec<Option<UnitRecord>> = vec![None; units.len()];
    for r in journal.records {
        if r.index >= units.len() {
            return Err(jerr(format!(
                "journal record index {} is outside the campaign (0..{})",
                r.index,
                units.len()
            )));
        }
        // A record whose hash disagrees with the unit at its index is
        // corrupt — drop it and recompute rather than trust it.
        if r.unit_hash == unit_hash(&units[r.index]) {
            prefilled[r.index] = Some(r.record);
        }
    }
    let resumed = prefilled.iter().filter(|r| r.is_some()).count();
    // Cut any torn tail at the last clean line boundary *before* opening
    // for append — appending onto a half-written fragment would fuse two
    // records into one corrupt mid-file line and doom the next resume.
    if journal.valid_len < source.len() {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| jerr(format!("cannot truncate journal `{}`: {e}", path.display())))?;
        file.set_len(journal.valid_len as u64)
            .and_then(|()| file.sync_data())
            .map_err(|e| jerr(format!("cannot truncate journal `{}`: {e}", path.display())))?;
    }
    let writer = JournalWriter::open_append(path).map_err(|e| {
        jerr(format!(
            "cannot append to journal `{}`: {e}",
            path.display()
        ))
    })?;
    Ok(JournalPlan {
        prefilled,
        writer,
        resumed,
    })
}

/// Reads a journal *standalone* — without the campaign it was written
/// for — and returns its records slotted into enumeration order. This is
/// the offline-analytics read path (`sea-dse report <journal>`): the
/// persisted records are trusted as-is (the spec-hash compatibility
/// check needs the unit list, which an offline reader does not have) and
/// nothing is re-evaluated. A crashed campaign's journal is fine: the
/// records present are returned, gaps are skipped.
///
/// # Errors
///
/// [`CampaignError::Journal`] for filesystem errors, a malformed header
/// or mid-file record, version skew, or a record index outside the
/// header's unit count.
pub fn read_journal_records(
    path: &Path,
) -> Result<(JournalHeader, Vec<UnitRecord>), CampaignError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| jerr(format!("cannot read journal `{}`: {e}", path.display())))?;
    let journal = parse_journal(&source)?;
    // Slot by enumeration index (last wins, like a resume) so the
    // returned order matches the live report regardless of the
    // completion order the journal happened to record.
    let mut slots: Vec<Option<UnitRecord>> = vec![None; journal.header.units];
    for r in journal.records {
        if r.index >= slots.len() {
            return Err(jerr(format!(
                "journal record index {} is outside the campaign (0..{})",
                r.index,
                slots.len()
            )));
        }
        slots[r.index] = Some(r.record);
    }
    Ok((journal.header, slots.into_iter().flatten().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> UnitRecord {
        UnitRecord {
            index: 2,
            scenario: "s\"x".into(),
            kind: "optimize".into(),
            app: "mpeg2".into(),
            cores: 4,
            levels: 3,
            seed: 77,
            status: "ok",
            power_mw: Some(4.6875),
            gamma: Some(1.0 / 3.0),
            tm_seconds: Some(13.5),
            r_kbits: None,
            evaluations: Some(1200),
            scaling: Some("(3,3,2,2)".into()),
            mapping: Some("core1: t1 | core2: t2".into()),
            experienced_seus: None,
        }
    }

    #[test]
    fn record_json_round_trips_byte_identical() {
        let r = record();
        let line = json_record(&r);
        let back = parse_record_json(&line).unwrap();
        assert_eq!(json_record(&back), line);
        assert_eq!(back.scenario, r.scenario);
        assert_eq!(back.gamma.map(f64::to_bits), r.gamma.map(f64::to_bits));
        assert_eq!(back.status, "ok");
        assert_eq!(back.r_kbits, None);
    }

    #[test]
    fn unknown_status_is_rejected() {
        let line = json_record(&record()).replace("\"ok\"", "\"exploded\"");
        assert!(parse_record_json(&line).is_err());
    }

    #[test]
    fn journal_lines_parse_back() {
        let h = ContentHash(0xDEAD_BEEF);
        let header = header_line("demo \"q\"", h, 7);
        let parsed = parse_header(&header).unwrap();
        assert_eq!(parsed.version, JOURNAL_VERSION);
        assert_eq!(parsed.name, "demo \"q\"");
        assert_eq!(parsed.spec_hash, h);
        assert_eq!(parsed.units, 7);

        let line = record_line(2, h, &record());
        let r = parse_record(&line).unwrap();
        assert_eq!(r.unit_hash, h);
        assert_eq!(r.index, 2);
        assert_eq!(json_record(&r.record), json_record(&record()));
    }

    #[test]
    fn torn_tail_is_dropped_but_mid_file_corruption_errors() {
        let h = ContentHash(1);
        let mut src = header_line("j", h, 3);
        src.push('\n');
        src.push_str(&record_line(0, h, &record()));
        src.push('\n');
        src.push_str("{\"unit\":\"tr"); // torn tail
        let j = parse_journal(&src).unwrap();
        assert_eq!(j.records.len(), 1);

        let mut bad = header_line("j", h, 3);
        bad.push('\n');
        bad.push_str("garbage\n");
        bad.push_str(&record_line(0, h, &record()));
        bad.push('\n');
        assert!(parse_journal(&bad).is_err());
    }

    #[test]
    fn read_journal_records_restores_enumeration_order() {
        let h = ContentHash(5);
        let mut src = header_line("offline", h, 3);
        src.push('\n');
        // Completion order 2, 0 — index 1 never finished (crash).
        for i in [2usize, 0] {
            let mut r = record();
            r.index = i;
            r.seed = i as u64;
            src.push_str(&record_line(i, h, &r));
            src.push('\n');
        }
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sea-journal-read-{}.jsonl", std::process::id()));
        std::fs::write(&path, &src).unwrap();
        let (header, records) = read_journal_records(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(header.units, 3);
        let indices: Vec<usize> = records.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 2], "enumeration order, gap skipped");
    }

    #[test]
    fn every_journal_prefix_is_valid_jsonl() {
        // The flush-per-record discipline means any prefix of complete
        // lines must parse as a valid journal (fewer records, same
        // header) — this is what makes kill-anywhere recovery sound.
        let h = ContentHash(9);
        let mut lines = vec![header_line("p", h, 4)];
        for i in 0..4 {
            let mut r = record();
            r.index = i;
            lines.push(record_line(i, h, &r));
        }
        for k in 1..=lines.len() {
            // The writer terminates every line; a clean kill boundary is
            // therefore a newline-terminated prefix.
            let mut src = lines[..k].join("\n");
            src.push('\n');
            let j = parse_journal(&src).unwrap();
            assert_eq!(j.records.len(), k - 1);
            assert_eq!(j.valid_len, src.len(), "clean prefix is fully valid");
            for obj in src.lines() {
                assert!(parse_flat_object(obj).is_ok(), "line is valid JSON: {obj}");
            }
        }
    }
}
