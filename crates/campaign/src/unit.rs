//! The unit model: one scenario grid point, executable in isolation.
//!
//! A campaign expands to a flat list of [`Unit`]s. Each unit is a *pure
//! function of its own fields* — it carries its application, architecture
//! shape, budget, seed and job kind, and [`run_unit`] never consults
//! global state — which is what lets the pool in [`crate::pool`] execute
//! units in any order on any number of workers while the campaign's final
//! report stays bitwise identical.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, OnceLock};

use sea_arch::{Architecture, LevelSet, ScalingVector, SerModel};
use sea_baselines::{BaselineOptimizer, Objective};
use sea_opt::{
    DesignOptimizer, OptError, OptimizationOutcome, OptimizerConfig, SearchBudget, SelectionPolicy,
};
use sea_sched::metrics::EvalContext;
use sea_sched::Mapping;
use sea_sim::{simulate_design, SimConfig, SimReport};
use sea_taskgraph::{AppSpec, Application, SpecError, TaskGraphSoa};

use crate::CampaignError;

/// Named search-budget presets shared by the CLI, the campaign grammar and
/// the experiment harnesses (`sea-experiments` maps its `EffortProfile`
/// onto these).
///
/// Keyword caveat: `paper` here is the experiment harnesses' 20 000
/// evaluation EXPERIMENTS.md profile; the `sea-dse optimize --budget
/// paper` flag predates this enum and means [`SearchBudget::thorough`]
/// (60 000) — campaign users wanting that budget say `thorough`. The CLI
/// usage text spells the mapping out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetSpec {
    /// [`SearchBudget::fast`] — tests, examples, quick looks.
    #[default]
    Fast,
    /// The experiment harnesses' smoke budget (600 evaluations).
    Smoke,
    /// The experiment harnesses' EXPERIMENTS.md budget (20 000
    /// evaluations).
    Paper,
    /// [`SearchBudget::thorough`] — the CLI's `--budget paper`.
    Thorough,
}

impl BudgetSpec {
    /// The concrete per-scaling search budget.
    #[must_use]
    pub fn to_budget(self) -> SearchBudget {
        match self {
            BudgetSpec::Fast => SearchBudget::fast(),
            BudgetSpec::Smoke => SearchBudget {
                max_evaluations: 600,
                max_stale_sweeps: 4,
                time_limit: None,
            },
            BudgetSpec::Paper => SearchBudget {
                max_evaluations: 20_000,
                max_stale_sweeps: 4,
                time_limit: None,
            },
            BudgetSpec::Thorough => SearchBudget::thorough(),
        }
    }

    /// Parses a budget keyword.
    ///
    /// # Errors
    ///
    /// Returns the list of accepted keywords for anything else.
    pub fn parse(s: &str) -> Result<Self, CampaignError> {
        match s {
            "fast" => Ok(BudgetSpec::Fast),
            "smoke" => Ok(BudgetSpec::Smoke),
            "paper" => Ok(BudgetSpec::Paper),
            "thorough" => Ok(BudgetSpec::Thorough),
            other => Err(CampaignError::Spec(format!(
                "unknown budget `{other}` (fast|smoke|paper|thorough)"
            ))),
        }
    }

    /// The keyword form accepted by [`BudgetSpec::parse`].
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            BudgetSpec::Fast => "fast",
            BudgetSpec::Smoke => "smoke",
            BudgetSpec::Paper => "paper",
            BudgetSpec::Thorough => "thorough",
        }
    }
}

/// Builds the DVS [`LevelSet`] for a validated level count (2..=4).
///
/// # Panics
///
/// Panics on level counts outside 2..=4 (validated at parse time).
#[must_use]
pub fn level_set(levels: usize) -> LevelSet {
    match levels {
        2 => LevelSet::arm7_two_level(),
        3 => LevelSet::arm7_three_level(),
        4 => LevelSet::arm7_four_level(),
        _ => unreachable!("level counts are validated to 2..=4 at parse time"),
    }
}

/// The workload of a unit: either a textual [`AppSpec`] (campaign files)
/// or a pre-built application (experiment harnesses that construct
/// workloads programmatically, e.g. with modified deadlines).
#[derive(Debug, Clone)]
pub enum AppRef {
    /// Built on demand from the shared spec grammar.
    Spec(AppSpec),
    /// A spec-built workload with its deadline multiplied by a factor
    /// (the campaign grammar's `deadline_scale` key — tight-deadline
    /// studies without hand-written task graphs).
    Scaled {
        /// The base workload.
        spec: AppSpec,
        /// Deadline multiplier (validated positive at parse time).
        deadline_scale: f64,
    },
    /// Shared pre-built application.
    Inline(Arc<Application>),
}

impl AppRef {
    /// A display label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            AppRef::Spec(s) => s.to_string(),
            AppRef::Scaled {
                spec,
                deadline_scale,
            } => format!("{spec}@d{deadline_scale}"),
            AppRef::Inline(app) => app.name().to_string(),
        }
    }

    /// Materializes the application.
    ///
    /// Spec-built applications are memoized process-wide by spec string, so
    /// every unit of a campaign grid sharing a workload receives the *same*
    /// `Arc<Application>`. Beyond skipping rebuilds, the stable pointer is
    /// what makes [`TaskGraphSoa::shared`]'s pointer-keyed cache effective
    /// across units: graph-derived arrays (bottom levels, static schedule
    /// order, CSR adjacency) are computed once per workload per process,
    /// not once per unit.
    ///
    /// # Errors
    ///
    /// Propagates [`AppSpec::build`] failures.
    pub fn build(&self) -> Result<Arc<Application>, CampaignError> {
        fn memoized(
            key: String,
            build: impl FnOnce() -> Result<Application, CampaignError>,
        ) -> Result<Arc<Application>, CampaignError> {
            static CACHE: OnceLock<Mutex<HashMap<String, Arc<Application>>>> = OnceLock::new();
            let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
            let mut cache = cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(app) = cache.get(&key) {
                return Ok(Arc::clone(app));
            }
            let app = Arc::new(build()?);
            cache.insert(key, Arc::clone(&app));
            Ok(app)
        }
        match self {
            AppRef::Spec(s) => memoized(s.to_string(), || s.build().map_err(CampaignError::App)),
            AppRef::Scaled {
                spec,
                deadline_scale,
            } => memoized(self.label(), || {
                let base = spec.build().map_err(CampaignError::App)?;
                base.with_deadline(base.deadline_s() * deadline_scale)
                    .map_err(|e| {
                        CampaignError::App(SpecError(format!(
                            "cannot scale `{spec}` deadline by {deadline_scale}: {e}"
                        )))
                    })
            }),
            AppRef::Inline(app) => Ok(Arc::clone(app)),
        }
    }
}

/// What a unit runs.
#[derive(Debug, Clone)]
pub enum UnitKind {
    /// The proposed soft error-aware optimization (Exp:4).
    Optimize,
    /// A soft error-unaware SA baseline (Exp:1–Exp:3).
    Baseline(Objective),
    /// A Fig. 3-style random-mapping sweep at uniform scaling.
    Sweep {
        /// Number of random mappings.
        count: usize,
        /// Uniform scaling coefficient.
        scale: u8,
    },
    /// Monte-Carlo fault injection of one explicit design point.
    Simulate {
        /// Per-core scaling coefficients.
        scaling: Vec<u8>,
        /// Per-core task groups (0-based task indices).
        groups: Vec<Vec<usize>>,
        /// Raw SER (λ_ref), SEU/bit/cycle.
        ser: f64,
    },
}

impl UnitKind {
    /// A short label for reports (`optimize`, `baseline:tm`, `sweep`,
    /// `simulate`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            UnitKind::Optimize => "optimize".into(),
            UnitKind::Baseline(o) => format!(
                "baseline:{}",
                match o {
                    Objective::RegisterUsage => "r",
                    Objective::Parallelism => "tm",
                    Objective::RegTimeProduct => "tmr",
                }
            ),
            UnitKind::Sweep { .. } => "sweep".into(),
            UnitKind::Simulate { .. } => "simulate".into(),
        }
    }
}

/// One executable grid point of a campaign.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Global enumeration index (also the default seed derivation input).
    pub index: usize,
    /// Owning scenario's label.
    pub scenario: String,
    /// What to run.
    pub kind: UnitKind,
    /// Workload.
    pub app: AppRef,
    /// Core count.
    pub cores: usize,
    /// DVS level count (2..=4).
    pub levels: usize,
    /// Search budget preset.
    pub budget: BudgetSpec,
    /// Selection policy of the iterative assessment.
    pub selection: SelectionPolicy,
    /// Search / injection seed.
    pub seed: u64,
}

impl Unit {
    /// The optimizer configuration this unit runs under: the
    /// paper-calibrated architecture at the unit's core count and level
    /// set. `jobs` is pinned to 1 — the campaign pool parallelizes
    /// *across* units, and `sea_opt`'s outcome is identical for every
    /// inner job count anyway.
    #[must_use]
    pub fn optimizer_config(&self) -> OptimizerConfig {
        let mut config = OptimizerConfig::paper(self.cores).with_levels(level_set(self.levels));
        config.budget = self.budget.to_budget();
        config.seed = self.seed;
        config.selection = self.selection;
        config.jobs = 1;
        config
    }

    /// The architecture the unit's evaluation-only kinds (sweep, simulate)
    /// run on.
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        Architecture::arm7_calibrated(self.cores, level_set(self.levels))
    }

    /// Estimated work, in candidate evaluations — the dispatch cost
    /// model. Backends hand out expensive units first so the straggler
    /// that bounds the makespan starts as early as possible; since every
    /// result slots by enumeration index, the estimate (however rough)
    /// can never change a report, only wall-clock.
    ///
    /// Optimize units dominate real campaigns, and their work is the
    /// number of scalings the bound-and-prune driver will actually
    /// search times the per-scaling budget
    /// ([`DesignOptimizer::surviving_scalings`]). Baselines run one
    /// budget-bounded SA chain plus one cheap evaluation per scaling;
    /// sweeps evaluate `count` mappings; fault injection replays one
    /// schedule.
    #[must_use]
    pub fn cost_estimate(&self) -> u64 {
        let budget = self.budget.to_budget().max_evaluations as u64;
        match &self.kind {
            UnitKind::Optimize => {
                let Ok(app) = self.app.build() else {
                    // The build error resurfaces when the unit runs.
                    return budget;
                };
                let soa = TaskGraphSoa::shared(&app);
                let optimizer = DesignOptimizer::new(self.optimizer_config());
                (optimizer.surviving_scalings(&app, &soa) as u64).saturating_mul(budget)
            }
            UnitKind::Baseline(_) => budget,
            UnitKind::Sweep { count, .. } => *count as u64,
            UnitKind::Simulate { .. } => 1,
        }
    }
}

/// The kind-specific result of one unit.
#[derive(Debug, Clone)]
pub enum UnitPayload {
    /// A full optimization outcome (`optimize` and `baseline` units).
    Design(Box<OptimizationOutcome>),
    /// The unit's design space holds no deadline-meeting design.
    Infeasible {
        /// Tightest multiprocessor execution time found, seconds.
        best_tm_seconds: f64,
        /// The deadline that could not be met.
        deadline_s: f64,
    },
    /// The application cannot occupy every core of the allocation.
    TooFewTasks {
        /// Tasks available.
        tasks: usize,
        /// Cores to fill.
        cores: usize,
    },
    /// Random-mapping sweep points (`sweep` units).
    Sweep(Vec<sea_baselines::sweep::SweepPoint>),
    /// Fault-injection report (`simulate` units).
    Sim(Box<SimReport>),
}

impl UnitPayload {
    /// The optimization outcome, when the unit produced one.
    #[must_use]
    pub fn outcome(&self) -> Option<&OptimizationOutcome> {
        match self {
            UnitPayload::Design(out) => Some(out),
            _ => None,
        }
    }

    /// Re-raises infeasibility outcomes as the [`OptError`] the direct
    /// optimizer calls would have returned — used by harnesses that treat
    /// an infeasible unit as a hard error (Table II) rather than an empty
    /// cell (Table III).
    ///
    /// # Errors
    ///
    /// [`OptError::Infeasible`] / [`OptError::TooFewTasks`] for the
    /// corresponding payloads.
    ///
    /// # Panics
    ///
    /// Panics on sweep/simulate payloads — those units never produce a
    /// design, so reaching here means the caller sliced its results out
    /// of step with its unit list, which must fail loudly rather than
    /// masquerade as infeasibility.
    pub fn require_design(&self) -> Result<&OptimizationOutcome, OptError> {
        match self {
            UnitPayload::Design(out) => Ok(out),
            UnitPayload::Infeasible {
                best_tm_seconds,
                deadline_s,
            } => Err(OptError::Infeasible {
                best_tm_seconds: *best_tm_seconds,
                deadline_s: *deadline_s,
            }),
            UnitPayload::TooFewTasks { tasks, cores } => Err(OptError::TooFewTasks {
                tasks: *tasks,
                cores: *cores,
            }),
            UnitPayload::Sweep(_) | UnitPayload::Sim(_) => {
                unreachable!(
                    "require_design called on a {} payload — the caller's result slice \
                     is misaligned with its unit list",
                    match self {
                        UnitPayload::Sweep(_) => "sweep",
                        _ => "simulate",
                    }
                )
            }
        }
    }
}

/// A completed unit: the executed unit, its rich payload and the flat
/// [`UnitRecord`] the sinks render.
#[derive(Debug, Clone)]
pub struct UnitResult {
    /// The unit that ran.
    pub unit: Unit,
    /// Kind-specific result data.
    pub payload: UnitPayload,
    /// Flat record for streaming sinks and final reports.
    pub record: UnitRecord,
}

/// The flat, sink-facing view of one unit result.
#[derive(Debug, Clone)]
pub struct UnitRecord {
    /// Global enumeration index.
    pub index: usize,
    /// Owning scenario label.
    pub scenario: String,
    /// Kind label (`optimize`, `baseline:tmr`, …).
    pub kind: String,
    /// Workload label.
    pub app: String,
    /// Core count.
    pub cores: usize,
    /// DVS level count.
    pub levels: usize,
    /// Seed the unit ran with.
    pub seed: u64,
    /// `ok`, `infeasible` or `too-few-tasks`.
    pub status: &'static str,
    /// Power of the winning design, mW (sweeps report the mean).
    pub power_mw: Option<f64>,
    /// Expected SEUs of the winning design (sweeps report the mean).
    pub gamma: Option<f64>,
    /// Execution time of the winning design, seconds (sweeps: mean).
    pub tm_seconds: Option<f64>,
    /// Register usage of the winning design, kbit/cycle (sweeps: mean).
    pub r_kbits: Option<f64>,
    /// Candidate evaluations spent (sweeps: mapping count; simulate:
    /// none).
    pub evaluations: Option<usize>,
    /// Winning scaling vector, when the unit selects one.
    pub scaling: Option<String>,
    /// Winning mapping, when the unit selects one.
    pub mapping: Option<String>,
    /// Monte-Carlo experienced SEU count (`simulate` units).
    pub experienced_seus: Option<u64>,
}

impl UnitRecord {
    fn empty(unit: &Unit, status: &'static str) -> Self {
        UnitRecord {
            index: unit.index,
            scenario: unit.scenario.clone(),
            kind: unit.kind.label(),
            app: unit.app.label(),
            cores: unit.cores,
            levels: unit.levels,
            seed: unit.seed,
            status,
            power_mw: None,
            gamma: None,
            tm_seconds: None,
            r_kbits: None,
            evaluations: None,
            scaling: None,
            mapping: None,
            experienced_seus: None,
        }
    }
}

fn design_record(unit: &Unit, out: &OptimizationOutcome) -> UnitRecord {
    let best = &out.best;
    UnitRecord {
        power_mw: Some(best.evaluation.power_mw),
        gamma: Some(best.evaluation.gamma),
        tm_seconds: Some(best.evaluation.tm_seconds),
        r_kbits: Some(best.evaluation.r_total_kbits()),
        evaluations: Some(out.total_evaluations),
        scaling: Some(best.scaling.to_string()),
        mapping: Some(best.mapping.to_string()),
        ..UnitRecord::empty(unit, "ok")
    }
}

/// Executes one unit on the calling thread.
///
/// # Errors
///
/// Hard errors (scheduling/architecture/spec failures) propagate and abort
/// the campaign; infeasibility is *not* an error — it lands in the payload
/// and record so a campaign over a grid with infeasible corners still
/// completes.
pub fn run_unit(unit: &Unit) -> Result<UnitResult, CampaignError> {
    run_unit_with_jobs(unit, 1)
}

/// [`run_unit`] with `inner_jobs` worker threads handed down to the
/// unit's own scaling enumeration. The pool uses this when a campaign
/// has fewer units than workers (leftover capacity would otherwise
/// idle); the outcome is identical for every value — `sea_opt`'s engine
/// is job-count-invariant — so this only trades wall-clock.
///
/// # Errors
///
/// As [`run_unit`].
pub fn run_unit_with_jobs(unit: &Unit, inner_jobs: usize) -> Result<UnitResult, CampaignError> {
    run_unit_cancellable(unit, inner_jobs, None)
}

/// [`run_unit_with_jobs`] with a cooperative cancellation flag threaded
/// into the unit's optimizer ([`OptimizerConfig::with_cancel`]). Setting
/// the flag makes in-progress optimize/baseline units abort at the next
/// scaling-chunk boundary with [`CampaignError::Opt`]`(`[`OptError::Cancelled`]`)`
/// instead of finishing — how the daemon's `Cancel` frames and a worker's
/// lost-coordinator path stop doomed work promptly. An unset flag changes
/// nothing: the produced result is bitwise identical to [`run_unit`]'s.
///
/// # Errors
///
/// As [`run_unit`], plus [`OptError::Cancelled`] when the flag fires.
pub fn run_unit_cancellable(
    unit: &Unit,
    inner_jobs: usize,
    cancel: Option<&Arc<AtomicBool>>,
) -> Result<UnitResult, CampaignError> {
    let app = unit.app.build()?;
    let with_cancel = |config: OptimizerConfig| match cancel {
        Some(flag) => config.with_cancel(Arc::clone(flag)),
        None => config,
    };
    let (payload, record) = match &unit.kind {
        UnitKind::Optimize => {
            let optimizer =
                DesignOptimizer::new(with_cancel(unit.optimizer_config().with_jobs(inner_jobs)));
            let result = if inner_jobs <= 1 {
                // Sequential units share the graph's structure-of-arrays
                // view across the whole campaign (memoized per
                // `Arc<Application>` identity, which `AppRef::build` keeps
                // stable per workload).
                let soa = TaskGraphSoa::shared(&app);
                optimizer.optimize_unit_with(&app, &soa)
            } else {
                optimizer.optimize(&app)
            };
            design_payload(unit, result)?
        }
        UnitKind::Baseline(objective) => {
            let optimizer =
                BaselineOptimizer::new(with_cancel(unit.optimizer_config()), *objective);
            design_payload(unit, optimizer.optimize(&app))?
        }
        UnitKind::Sweep { count, scale } => {
            let arch = unit.architecture();
            let ctx = EvalContext::new(&app, &arch);
            let scaling = ScalingVector::uniform(*scale, &arch).map_err(OptError::from)?;
            let points =
                sea_baselines::sweep::random_mapping_sweep(&ctx, &scaling, *count, unit.seed)?;
            let mean = |f: &dyn Fn(&sea_baselines::sweep::SweepPoint) -> f64| {
                if points.is_empty() {
                    None
                } else {
                    Some(points.iter().map(f).sum::<f64>() / points.len() as f64)
                }
            };
            let record = UnitRecord {
                power_mw: mean(&|p| p.evaluation.power_mw),
                gamma: mean(&|p| p.evaluation.gamma),
                tm_seconds: mean(&|p| p.evaluation.tm_seconds),
                r_kbits: mean(&|p| p.evaluation.r_total_kbits()),
                evaluations: Some(points.len()),
                scaling: Some(scaling.to_string()),
                ..UnitRecord::empty(unit, "ok")
            };
            (UnitPayload::Sweep(points), record)
        }
        UnitKind::Simulate {
            scaling,
            groups,
            ser,
        } => {
            let arch = unit.architecture();
            let group_refs: Vec<&[usize]> = groups.iter().map(Vec::as_slice).collect();
            let mapping = Mapping::from_groups(&group_refs, unit.cores).map_err(OptError::from)?;
            let scaling = ScalingVector::try_new(scaling.clone(), &arch).map_err(OptError::from)?;
            let mut config = SimConfig::seeded(unit.seed);
            config.ser = SerModel::calibrated(*ser);
            let report = simulate_design(&app, &arch, &mapping, &scaling, &config)
                .map_err(CampaignError::Sim)?;
            let record = UnitRecord {
                power_mw: Some(report.analytic.power_mw),
                gamma: Some(report.analytic.gamma),
                tm_seconds: Some(report.analytic.tm_seconds),
                r_kbits: Some(report.analytic.r_total_kbits()),
                scaling: Some(scaling.to_string()),
                mapping: Some(mapping.to_string()),
                experienced_seus: Some(report.faults.total_experienced),
                ..UnitRecord::empty(unit, "ok")
            };
            (UnitPayload::Sim(Box::new(report)), record)
        }
    };
    Ok(UnitResult {
        unit: unit.clone(),
        payload,
        record,
    })
}

/// Folds an optimizer result into a payload + record, downgrading
/// infeasibility to data.
fn design_payload(
    unit: &Unit,
    result: Result<OptimizationOutcome, OptError>,
) -> Result<(UnitPayload, UnitRecord), CampaignError> {
    match result {
        Ok(out) => {
            let record = design_record(unit, &out);
            Ok((UnitPayload::Design(Box::new(out)), record))
        }
        Err(OptError::Infeasible {
            best_tm_seconds,
            deadline_s,
        }) => Ok((
            UnitPayload::Infeasible {
                best_tm_seconds,
                deadline_s,
            },
            UnitRecord {
                tm_seconds: Some(best_tm_seconds),
                ..UnitRecord::empty(unit, "infeasible")
            },
        )),
        Err(OptError::TooFewTasks { tasks, cores }) => Ok((
            UnitPayload::TooFewTasks { tasks, cores },
            UnitRecord::empty(unit, "too-few-tasks"),
        )),
        Err(other) => Err(CampaignError::Opt(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimize_unit(app: AppSpec, cores: usize) -> Unit {
        Unit {
            index: 0,
            scenario: "test".into(),
            kind: UnitKind::Optimize,
            app: AppRef::Spec(app),
            cores,
            levels: 3,
            budget: BudgetSpec::Fast,
            selection: SelectionPolicy::default(),
            seed: 0x5EA,
        }
    }

    #[test]
    fn optimize_unit_matches_direct_driver_call() {
        let unit = optimize_unit(AppSpec::Mpeg2, 4);
        let via_unit = run_unit(&unit).unwrap();
        let direct = DesignOptimizer::new(unit.optimizer_config())
            .optimize(&AppSpec::Mpeg2.build().unwrap())
            .unwrap();
        let out = via_unit.payload.outcome().expect("feasible");
        assert_eq!(out.best.mapping, direct.best.mapping);
        assert_eq!(out.best.scaling, direct.best.scaling);
        assert_eq!(out.total_evaluations, direct.total_evaluations);
        assert_eq!(via_unit.record.status, "ok");
        assert_eq!(via_unit.record.evaluations, Some(direct.total_evaluations));
    }

    #[test]
    fn infeasible_units_become_records_not_errors() {
        let mut unit = optimize_unit(AppSpec::Fig8, 3);
        // fig8's 75 ms deadline is tight; force infeasibility via an
        // impossible allocation instead: 8 cores for 6 tasks.
        unit.cores = 8;
        let result = run_unit(&unit).unwrap();
        assert_eq!(result.record.status, "too-few-tasks");
        assert!(result.payload.require_design().is_err());
    }

    #[test]
    fn sweep_and_simulate_units_run() {
        let mut unit = optimize_unit(AppSpec::Mpeg2, 4);
        unit.kind = UnitKind::Sweep {
            count: 10,
            scale: 1,
        };
        let sweep = run_unit(&unit).unwrap();
        assert_eq!(sweep.record.evaluations, Some(10));
        assert!(sweep.record.gamma.unwrap() > 0.0);

        unit.kind = UnitKind::Simulate {
            scaling: vec![2, 2, 3, 2],
            groups: vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7], vec![8], vec![9, 10]],
            ser: sea_arch::ser::PAPER_SER,
        };
        unit.seed = 13;
        let sim = run_unit(&unit).unwrap();
        assert!(sim.record.experienced_seus.unwrap() > 0);
        let UnitPayload::Sim(report) = &sim.payload else {
            panic!("simulate payload expected");
        };
        assert!(report.analytic.gamma > 0.0);
    }

    #[test]
    fn budget_keywords_round_trip() {
        for b in [
            BudgetSpec::Fast,
            BudgetSpec::Smoke,
            BudgetSpec::Paper,
            BudgetSpec::Thorough,
        ] {
            assert_eq!(BudgetSpec::parse(b.keyword()).unwrap(), b);
        }
        assert!(BudgetSpec::parse("leisurely").is_err());
    }
}
