//! Stable 128-bit content identity for campaigns and units.
//!
//! The resumable-journal and result-cache layers both need one primitive:
//! a hash of *what a unit computes* that is stable across processes,
//! compiler versions and struct layouts. Rust's `#[derive(Hash)]` +
//! `DefaultHasher` guarantees none of that, so this module hand-rolls a
//! 128-bit FNV-1a over an explicit canonical byte encoding — every field
//! that influences a unit's result (application content, core count, DVS
//! levels, budget, selection policy, seed, job kind) is written
//! length-prefixed and tagged, and nothing else is.
//!
//! Two deliberate exclusions define the identity:
//!
//! * `Unit::index` and `Unit::scenario` are *presentation* — two units
//!   differing only in enumeration position or scenario label compute the
//!   same numbers, so they share a hash (which is exactly what lets
//!   overlapping campaigns share cache entries).
//! * The worker count never enters (results are job-count invariant).
//!
//! [`units_hash`] folds the per-unit hashes in enumeration order into the
//! campaign-level *spec hash* a journal header records: resuming is legal
//! exactly when the stored and recomputed spec hashes agree.

use std::fmt;

use sea_opt::SelectionPolicy;
use sea_taskgraph::Application;

use crate::unit::{AppRef, Unit, UnitKind};
use crate::Campaign;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit stable content hash, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// The 32-digit lowercase hex form (what journals and cache file
    /// names store).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-digit hex form.
    ///
    /// # Errors
    ///
    /// Returns `None` for anything that is not exactly 32 hex digits.
    #[must_use]
    pub fn parse_hex(s: &str) -> Option<Self> {
        // Strictly 32 hex digits: from_str_radix alone would also accept
        // a leading `+`.
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a-128 over a canonical byte stream.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        ContentHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64` (stable across pointer widths).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Finishes the stream.
    #[must_use]
    pub fn finish(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

/// Encoding version — bump on any canonical-encoding change so stale
/// journals/caches are refused/missed instead of silently misread.
const ENCODING_VERSION: u8 = 1;

fn write_selection(h: &mut ContentHasher, s: SelectionPolicy) {
    match s {
        SelectionPolicy::PowerGammaProduct => h.write_u8(0),
        SelectionPolicy::PowerFirst { tolerance } => {
            h.write_u8(1);
            h.write_f64(tolerance);
        }
        SelectionPolicy::Weighted { w_power } => {
            h.write_u8(2);
            h.write_f64(w_power);
        }
        SelectionPolicy::GammaFirst => h.write_u8(3),
    }
}

fn write_kind(h: &mut ContentHasher, kind: &UnitKind) {
    match kind {
        UnitKind::Optimize => h.write_u8(0),
        UnitKind::Baseline(objective) => {
            h.write_u8(1);
            h.write_str(objective.label());
        }
        UnitKind::Sweep { count, scale } => {
            h.write_u8(2);
            h.write_usize(*count);
            h.write_u8(*scale);
        }
        UnitKind::Simulate {
            scaling,
            groups,
            ser,
        } => {
            h.write_u8(3);
            h.write_usize(scaling.len());
            h.write(scaling);
            h.write_usize(groups.len());
            for group in groups {
                h.write_usize(group.len());
                for &t in group {
                    h.write_usize(t);
                }
            }
            h.write_f64(*ser);
        }
    }
}

/// Canonical encoding of a full application: name, execution mode,
/// deadline, every task's computation cost, every edge, and the complete
/// register-sharing model. Two [`AppRef::Inline`] workloads hash equal iff
/// they describe the same computation.
fn write_application(h: &mut ContentHasher, app: &Application) {
    h.write_str(app.name());
    h.write_u32(app.mode().iterations());
    h.write_f64(app.deadline_s());
    let g = app.graph();
    h.write_usize(g.len());
    for task in g.tasks() {
        h.write_str(task.name());
        h.write_u64(task.computation().as_u64());
    }
    h.write_usize(g.edges().len());
    for e in g.edges() {
        h.write_usize(e.src.index());
        h.write_usize(e.dst.index());
        h.write_u64(e.comm.as_u64());
    }
    let m = app.registers();
    h.write_usize(m.blocks().len());
    for block in m.blocks() {
        h.write_str(block.name());
        h.write_u64(block.bits().as_u64());
    }
    h.write_usize(m.n_tasks());
    for t in 0..m.n_tasks() {
        let blocks = m.task_blocks(sea_taskgraph::TaskId::new(t));
        h.write_usize(blocks.len());
        for b in blocks {
            h.write_usize(b.index());
        }
    }
}

fn write_app_ref(h: &mut ContentHasher, app: &AppRef) {
    match app {
        // Spec apps hash by their canonical string — cheap, and the
        // grammar round-trips (`random:40` normalizes to `random:40:7`).
        AppRef::Spec(spec) => {
            h.write_u8(0);
            h.write_str(&spec.to_string());
        }
        AppRef::Inline(app) => {
            h.write_u8(1);
            write_application(h, app);
        }
        // Hashed by (spec, factor) rather than by built content: cheap,
        // and the grammar's canonical form round-trips. A semantically
        // equal `Inline` app hashes differently — that costs a cache
        // miss, never a wrong hit.
        AppRef::Scaled {
            spec,
            deadline_scale,
        } => {
            h.write_u8(2);
            h.write_str(&spec.to_string());
            h.write_f64(*deadline_scale);
        }
    }
}

/// The stable content hash of one unit: everything its result depends on
/// (kind, application, cores, levels, budget, selection, seed) and
/// nothing it doesn't (index, scenario label, worker counts).
#[must_use]
pub fn unit_hash(unit: &Unit) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_u8(ENCODING_VERSION);
    write_kind(&mut h, &unit.kind);
    write_app_ref(&mut h, &unit.app);
    h.write_usize(unit.cores);
    h.write_usize(unit.levels);
    h.write_str(unit.budget.keyword());
    write_selection(&mut h, unit.selection);
    h.write_u64(unit.seed);
    h.finish()
}

/// The campaign-level *spec hash*: the fold of every unit's content hash
/// in enumeration order. Two unit lists share a spec hash exactly when
/// they are the same work in the same order — the compatibility rule for
/// resuming a journal.
#[must_use]
pub fn units_hash(units: &[Unit]) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_u8(ENCODING_VERSION);
    h.write_usize(units.len());
    for unit in units {
        h.write(&unit_hash(unit).0.to_le_bytes());
    }
    h.finish()
}

/// The content hash of a parsed campaign: its name plus the spec hash of
/// its expansion.
#[must_use]
pub fn campaign_hash(campaign: &Campaign) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_u8(ENCODING_VERSION);
    h.write_str(&campaign.name);
    h.write(&units_hash(&campaign.expand()).0.to_le_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_campaign;
    use crate::unit::BudgetSpec;
    use sea_taskgraph::AppSpec;
    use std::sync::Arc;

    fn base_unit() -> Unit {
        Unit {
            index: 0,
            scenario: "s".into(),
            kind: UnitKind::Optimize,
            app: AppRef::Spec(AppSpec::Mpeg2),
            cores: 4,
            levels: 3,
            budget: BudgetSpec::Fast,
            selection: SelectionPolicy::default(),
            seed: 0x5EA,
        }
    }

    #[test]
    fn fnv_vector_is_correct() {
        // FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(ContentHasher::new().finish().0, FNV_OFFSET);
        // Known vector: fnv1a-128("a") (offset ^ 'a', then * prime).
        let mut h = ContentHasher::new();
        h.write(b"a");
        assert_eq!(
            h.finish().to_hex(),
            format!(
                "{:032x}",
                (FNV_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV_PRIME)
            )
        );
    }

    #[test]
    fn hex_round_trips() {
        let h = unit_hash(&base_unit());
        assert_eq!(ContentHash::parse_hex(&h.to_hex()), Some(h));
        assert_eq!(h.to_hex().len(), 32);
        assert!(ContentHash::parse_hex("xyz").is_none());
        assert!(ContentHash::parse_hex(&"0".repeat(31)).is_none());
        // 32 chars but not 32 hex digits.
        assert!(ContentHash::parse_hex("+0000000000000000000000000000001f").is_none());
    }

    #[test]
    fn index_and_scenario_do_not_change_the_hash() {
        let a = base_unit();
        let mut b = base_unit();
        b.index = 99;
        b.scenario = "other".into();
        assert_eq!(unit_hash(&a), unit_hash(&b));
    }

    #[test]
    fn every_content_field_changes_the_hash() {
        let base = unit_hash(&base_unit());
        let mutations: Vec<Unit> = vec![
            {
                let mut u = base_unit();
                u.cores = 5;
                u
            },
            {
                let mut u = base_unit();
                u.levels = 2;
                u
            },
            {
                let mut u = base_unit();
                u.budget = BudgetSpec::Smoke;
                u
            },
            {
                let mut u = base_unit();
                u.seed = 0x5EB;
                u
            },
            {
                let mut u = base_unit();
                u.selection = SelectionPolicy::GammaFirst;
                u
            },
            {
                let mut u = base_unit();
                u.app = AppRef::Spec(AppSpec::Fig8);
                u
            },
            {
                let mut u = base_unit();
                u.kind = UnitKind::Sweep {
                    count: 120,
                    scale: 1,
                };
                u
            },
            {
                let mut u = base_unit();
                u.app = AppRef::Scaled {
                    spec: AppSpec::Mpeg2,
                    deadline_scale: 0.4,
                };
                u
            },
            {
                let mut u = base_unit();
                u.app = AppRef::Scaled {
                    spec: AppSpec::Mpeg2,
                    deadline_scale: 0.5,
                };
                u
            },
        ];
        let mut seen = vec![base];
        for m in &mutations {
            let h = unit_hash(m);
            assert!(!seen.contains(&h), "collision for {m:?}");
            seen.push(h);
        }
    }

    #[test]
    fn inline_apps_hash_by_content_not_identity() {
        let a = Arc::new(AppSpec::Mpeg2.build().unwrap());
        let b = Arc::new(AppSpec::Mpeg2.build().unwrap());
        let mut ua = base_unit();
        ua.app = AppRef::Inline(a);
        let mut ub = base_unit();
        ub.app = AppRef::Inline(b);
        assert_eq!(unit_hash(&ua), unit_hash(&ub));
        let c = Arc::new(AppSpec::Fig8.build().unwrap());
        let mut uc = base_unit();
        uc.app = AppRef::Inline(c);
        assert_ne!(unit_hash(&ua), unit_hash(&uc));
    }

    #[test]
    fn spec_hash_depends_on_order_and_count() {
        let campaign = parse_campaign(
            "name = \"h\"\n[scenario]\nkind = \"optimize\"\napps = \"mpeg2, fig8\"\ncores = \"4\"\n",
        )
        .unwrap();
        let units = campaign.expand();
        assert_eq!(units.len(), 2);
        let forward = units_hash(&units);
        let mut reversed = units.clone();
        reversed.swap(0, 1);
        // Same content set, different enumeration order: different runs.
        assert_ne!(forward, units_hash(&reversed));
        assert_ne!(forward, units_hash(&units[..1]));
        assert_eq!(forward, units_hash(&campaign.expand()));
        assert_eq!(campaign_hash(&campaign), campaign_hash(&campaign));
    }
}
