//! The declarative campaign grammar: a hand-rolled TOML-lite parser
//! (`key = value` lines plus `[scenario]` sections — no external
//! dependencies) and the grid expansion from scenarios to [`Unit`]s.
//!
//! ```text
//! # campaign header
//! name   = "quickstart"
//! budget = "fast"            # fast | smoke | paper | thorough
//! seed   = 1514              # base seed for derived per-unit seeds
//!
//! [scenario]
//! name       = "mpeg2-cores"
//! kind       = "optimize"    # optimize | baseline | sweep | simulate
//! apps       = "mpeg2"       # comma list of app specs
//! cores      = "2-4"         # comma list and/or a-b ranges
//! levels     = "3"           # comma list of 2|3|4 (default 3)
//! selections = "product"     # product | power | gamma (default product)
//! # seeds    = "1,2,3"       # explicit seed axis; omitted = derived
//! ```
//!
//! Scenario kinds add their own keys: `objectives = "r,tm,tmr"`
//! (baseline), `count` and `scales` (sweep), `scaling`, `groups` and
//! `ser` (simulate). Any kind accepts `deadline_scale = "0.4"`, which
//! multiplies every listed app's deadline — the standard way to pose the
//! tight-deadline problems the bound-and-prune engine accelerates.
//! Unknown or duplicate keys are errors — a typo must not silently
//! shrink a grid.
//!
//! # Seed discipline
//!
//! When a scenario lists no explicit `seeds`, every unit's seed is
//! `base_seed + global_unit_index` (wrapping). The index is a property of
//! the *enumeration* — never of the worker count — so a campaign's
//! results are bitwise identical for every `--jobs` value.

use sea_baselines::Objective;
use sea_opt::SelectionPolicy;
use sea_taskgraph::AppSpec;

use crate::arena::Arena;
use crate::unit::{AppRef, BudgetSpec, Unit, UnitKind};
use crate::CampaignError;

/// Default base seed when a campaign file sets none.
pub const DEFAULT_BASE_SEED: u64 = 0x5EA;

/// A parsed campaign: header + scenarios, expandable to units.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (reports title).
    pub name: String,
    /// Default budget for scenarios that set none.
    pub budget: BudgetSpec,
    /// Base seed for derived per-unit seeds.
    pub base_seed: u64,
    /// Scenarios in file order.
    pub scenarios: Vec<Scenario>,
}

/// One `[scenario]` section.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label (defaults to `scenario-<k>`).
    pub name: String,
    /// Kind plus kind-specific parameters.
    pub kind: ScenarioKind,
    /// Application axis.
    pub apps: Vec<AppSpec>,
    /// Core-count axis.
    pub cores: Vec<usize>,
    /// DVS level-count axis.
    pub levels: Vec<usize>,
    /// Selection-policy axis.
    pub selections: Vec<SelectionPolicy>,
    /// Explicit seed axis; `None` derives seeds from the global index.
    pub seeds: Option<Vec<u64>>,
    /// Per-scenario budget override.
    pub budget: Option<BudgetSpec>,
    /// Deadline multiplier applied to every app of the scenario
    /// (`deadline_scale = "0.4"` — tight-deadline studies, where the
    /// bound-and-prune engine earns its keep).
    pub deadline_scale: Option<f64>,
}

/// Kind-specific scenario parameters.
#[derive(Debug, Clone)]
pub enum ScenarioKind {
    /// The proposed flow.
    Optimize,
    /// SA baselines over an objective axis.
    Baseline {
        /// Objective axis (`r`, `tm`, `tmr`).
        objectives: Vec<Objective>,
    },
    /// Random-mapping sweeps over a uniform-scale axis.
    Sweep {
        /// Mappings per sweep.
        count: usize,
        /// Uniform scaling coefficient axis.
        scales: Vec<u8>,
    },
    /// Fault injection of one explicit design point.
    Simulate {
        /// Per-core scaling coefficients.
        scaling: Vec<u8>,
        /// Per-core task groups.
        groups: Vec<Vec<usize>>,
        /// Raw SER (λ_ref).
        ser: f64,
    },
}

impl Campaign {
    /// Expands the scenario grids into the flat, globally-indexed unit
    /// list the pool executes. Expansion order is deterministic: scenarios
    /// in file order; within a scenario `apps × cores × levels ×
    /// selections × (objectives|scales) × seeds`, innermost last.
    #[must_use]
    pub fn expand(&self) -> Vec<Unit> {
        let mut units = Vec::new();
        // Scratch for the innermost seed axis; capacity survives resets,
        // so the grid walk allocates nothing here after the first point.
        let mut seed_arena: Arena<u64> = Arena::new();
        for scenario in &self.scenarios {
            let budget = scenario.budget.unwrap_or(self.budget);
            let kinds: Vec<UnitKind> = match &scenario.kind {
                ScenarioKind::Optimize => vec![UnitKind::Optimize],
                ScenarioKind::Baseline { objectives } => {
                    objectives.iter().map(|&o| UnitKind::Baseline(o)).collect()
                }
                ScenarioKind::Sweep { count, scales } => scales
                    .iter()
                    .map(|&scale| UnitKind::Sweep {
                        count: *count,
                        scale,
                    })
                    .collect(),
                ScenarioKind::Simulate {
                    scaling,
                    groups,
                    ser,
                } => vec![UnitKind::Simulate {
                    scaling: scaling.clone(),
                    groups: groups.clone(),
                    ser: *ser,
                }],
            };
            for &app in &scenario.apps {
                for &cores in &scenario.cores {
                    for &levels in &scenario.levels {
                        for &selection in &scenario.selections {
                            for kind in &kinds {
                                seed_arena.reset();
                                let seeds = match &scenario.seeds {
                                    Some(s) => seed_arena.alloc_slice(s),
                                    None => seed_arena.alloc_from(std::iter::once(
                                        self.base_seed.wrapping_add(units.len() as u64),
                                    )),
                                };
                                for &seed in seed_arena.get(seeds) {
                                    let app = match scenario.deadline_scale {
                                        Some(deadline_scale) => AppRef::Scaled {
                                            spec: app,
                                            deadline_scale,
                                        },
                                        None => AppRef::Spec(app),
                                    };
                                    units.push(Unit {
                                        index: units.len(),
                                        scenario: scenario.name.clone(),
                                        kind: kind.clone(),
                                        app,
                                        cores,
                                        levels,
                                        budget,
                                        selection,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        units
    }
}

/// Parses a campaign file.
///
/// # Errors
///
/// Returns [`CampaignError::Spec`] with a line-numbered message for any
/// malformed construct, unknown key, duplicate key or missing required
/// key.
pub fn parse_campaign(source: &str) -> Result<Campaign, CampaignError> {
    let mut campaign = Campaign {
        name: "campaign".into(),
        budget: BudgetSpec::Fast,
        base_seed: DEFAULT_BASE_SEED,
        scenarios: Vec::new(),
    };
    let mut section: Option<RawSection> = None;
    let mut header_keys: Vec<String> = Vec::new();

    for (lineno, raw_line) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated section header"))?
                .trim();
            if name != "scenario" {
                return Err(err(
                    lineno,
                    &format!("unknown section `[{name}]` (only `[scenario]` is supported)"),
                ));
            }
            if let Some(done) = section.take() {
                campaign
                    .scenarios
                    .push(done.finish(campaign.scenarios.len())?);
            }
            section = Some(RawSection::new());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                lineno,
                &format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = key.trim();
        let value = unquote(value.trim());
        match &mut section {
            Some(raw) => raw.set(lineno, key, &value)?,
            None => {
                if header_keys.iter().any(|k| k == key) {
                    return Err(err(lineno, &format!("duplicate header key `{key}`")));
                }
                header_keys.push(key.to_string());
                match key {
                    "name" => campaign.name = value,
                    "budget" => {
                        campaign.budget = BudgetSpec::parse(&value).map_err(|e| at(lineno, &e))?;
                    }
                    "seed" => {
                        campaign.base_seed = value
                            .parse()
                            .map_err(|_| err(lineno, &format!("cannot parse seed `{value}`")))?;
                    }
                    other => {
                        return Err(err(
                            lineno,
                            &format!("unknown header key `{other}` (name|budget|seed)"),
                        ));
                    }
                }
            }
        }
    }
    if let Some(done) = section.take() {
        campaign
            .scenarios
            .push(done.finish(campaign.scenarios.len())?);
    }
    if campaign.scenarios.is_empty() {
        return Err(CampaignError::Spec(
            "campaign defines no `[scenario]` section".into(),
        ));
    }
    Ok(campaign)
}

fn err(lineno: usize, msg: &str) -> CampaignError {
    CampaignError::Spec(format!("line {lineno}: {msg}"))
}

fn at(lineno: usize, e: &CampaignError) -> CampaignError {
    CampaignError::Spec(format!("line {lineno}: {e}"))
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(value: &str) -> String {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .unwrap_or(value)
        .to_string()
}

/// A `[scenario]` section while its keys are being collected.
struct RawSection {
    keys: Vec<(usize, String, String)>,
}

impl RawSection {
    fn new() -> Self {
        RawSection { keys: Vec::new() }
    }

    fn set(&mut self, lineno: usize, key: &str, value: &str) -> Result<(), CampaignError> {
        if self.keys.iter().any(|(_, k, _)| k == key) {
            return Err(err(lineno, &format!("duplicate scenario key `{key}`")));
        }
        self.keys.push((lineno, key.to_string(), value.to_string()));
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<(usize, String)> {
        let pos = self.keys.iter().position(|(_, k, _)| k == key)?;
        let (lineno, _, value) = self.keys.remove(pos);
        Some((lineno, value))
    }

    fn finish(mut self, ordinal: usize) -> Result<Scenario, CampaignError> {
        let name = self
            .take("name")
            .map_or_else(|| format!("scenario-{ordinal}"), |(_, v)| v);
        let Some((kind_line, kind)) = self.take("kind") else {
            return Err(CampaignError::Spec(format!(
                "scenario `{name}` is missing `kind` (optimize|baseline|sweep|simulate)"
            )));
        };
        let kind = match kind.as_str() {
            "optimize" => ScenarioKind::Optimize,
            "baseline" => {
                let (lineno, objectives) =
                    self.take_either("objectives", "objective").ok_or_else(|| {
                        CampaignError::Spec(format!(
                            "baseline scenario `{name}` needs `objectives = \"r,tm,tmr\"`"
                        ))
                    })?;
                let objectives = split_list(&objectives)
                    .map(|o| match o {
                        "r" => Ok(Objective::RegisterUsage),
                        "tm" => Ok(Objective::Parallelism),
                        "tmr" => Ok(Objective::RegTimeProduct),
                        other => Err(err(lineno, &format!("unknown objective `{other}`"))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                ScenarioKind::Baseline {
                    objectives: non_empty(lineno, "objectives", objectives)?,
                }
            }
            "sweep" => {
                let count = match self.take("count") {
                    Some((lineno, v)) => v
                        .parse()
                        .map_err(|_| err(lineno, &format!("cannot parse count `{v}`")))?,
                    None => 120,
                };
                let scales = match self.take_either("scales", "scale") {
                    Some((lineno, v)) => parse_u8_list(lineno, &v)?,
                    None => vec![1],
                };
                ScenarioKind::Sweep { count, scales }
            }
            "simulate" => {
                let Some((s_line, scaling)) = self.take("scaling") else {
                    return Err(CampaignError::Spec(format!(
                        "simulate scenario `{name}` needs `scaling = \"2,2,3,2\"`"
                    )));
                };
                let Some((g_line, groups)) = self.take("groups") else {
                    return Err(CampaignError::Spec(format!(
                        "simulate scenario `{name}` needs `groups = \"0,1|2|3\"`"
                    )));
                };
                let ser = match self.take("ser") {
                    Some((lineno, v)) => v
                        .parse()
                        .map_err(|_| err(lineno, &format!("cannot parse SER `{v}`")))?,
                    None => sea_arch::ser::PAPER_SER,
                };
                ScenarioKind::Simulate {
                    scaling: parse_u8_list(s_line, &scaling)?,
                    groups: parse_groups(g_line, &groups)?,
                    ser,
                }
            }
            other => {
                return Err(err(
                    kind_line,
                    &format!("unknown kind `{other}` (optimize|baseline|sweep|simulate)"),
                ));
            }
        };

        let Some((a_line, apps)) = self.take_either("apps", "app") else {
            return Err(CampaignError::Spec(format!(
                "scenario `{name}` is missing `apps` (e.g. \"mpeg2, random:60\")"
            )));
        };
        let apps = split_list(&apps)
            .map(|s| {
                s.parse::<AppSpec>()
                    .map_err(|e| err(a_line, &e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let apps = non_empty(a_line, "apps", apps)?;
        let Some((c_line, cores)) = self.take("cores") else {
            return Err(CampaignError::Spec(format!(
                "scenario `{name}` is missing `cores` (e.g. \"2-6\")"
            )));
        };
        let cores = parse_usize_ranges(c_line, &cores)?;
        if cores.contains(&0) {
            return Err(err(c_line, "core counts must be at least 1"));
        }
        let levels = match self.take("levels") {
            Some((lineno, v)) => {
                let levels = parse_usize_ranges(lineno, &v)?;
                if levels.iter().any(|&l| !(2..=4).contains(&l)) {
                    return Err(err(lineno, "levels must be 2, 3 or 4"));
                }
                levels
            }
            None => vec![3],
        };
        let selections = match self.take_either("selections", "selection") {
            Some((lineno, v)) => {
                // Sweep/simulate units never consult the selection
                // policy; accepting an axis here would silently multiply
                // the grid into byte-identical duplicate units.
                if matches!(
                    kind,
                    ScenarioKind::Sweep { .. } | ScenarioKind::Simulate { .. }
                ) {
                    return Err(err(
                        lineno,
                        &format!(
                            "`selections` is not meaningful for kind `{}` (it would only \
                             duplicate units)",
                            kind_label(&kind)
                        ),
                    ));
                }
                let selections = split_list(&v)
                    .map(|s| match s {
                        "product" => Ok(SelectionPolicy::PowerGammaProduct),
                        "power" => Ok(SelectionPolicy::PowerFirst { tolerance: 0.05 }),
                        "gamma" => Ok(SelectionPolicy::GammaFirst),
                        other => Err(err(
                            lineno,
                            &format!("unknown selection `{other}` (product|power|gamma)"),
                        )),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                non_empty(lineno, "selections", selections)?
            }
            None => vec![SelectionPolicy::PowerGammaProduct],
        };
        let seeds = match self.take("seeds") {
            Some((lineno, v)) => {
                let seeds = split_list(&v)
                    .map(|s| {
                        s.parse::<u64>()
                            .map_err(|_| err(lineno, &format!("cannot parse seed `{s}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Some(non_empty(lineno, "seeds", seeds)?)
            }
            None => None,
        };
        let budget = match self.take("budget") {
            Some((lineno, v)) => Some(BudgetSpec::parse(&v).map_err(|e| at(lineno, &e))?),
            None => None,
        };
        let deadline_scale = match self.take("deadline_scale") {
            Some((lineno, v)) => {
                let f: f64 = v
                    .parse()
                    .map_err(|_| err(lineno, &format!("cannot parse deadline scale `{v}`")))?;
                if !(f.is_finite() && f > 0.0) {
                    return Err(err(lineno, "deadline scale must be finite and positive"));
                }
                Some(f)
            }
            None => None,
        };

        if let Some((lineno, key, _)) = self.keys.first() {
            return Err(err(
                *lineno,
                &format!(
                    "unknown scenario key `{key}` for kind `{}`",
                    kind_label(&kind)
                ),
            ));
        }

        // A simulate design point is fixed-shape; every grid combination
        // it will meet is decidable here. Failing at parse time beats a
        // hard error that aborts the campaign after hours of other units.
        if let ScenarioKind::Simulate {
            scaling, groups, ..
        } = &kind
        {
            for &c in &cores {
                if c != scaling.len() {
                    return Err(err(
                        c_line,
                        &format!(
                            "simulate scenario `{name}`: scaling has {} coefficients but the \
                             cores axis includes {c}",
                            scaling.len()
                        ),
                    ));
                }
                if c != groups.len() {
                    return Err(err(
                        c_line,
                        &format!(
                            "simulate scenario `{name}`: groups defines {} cores but the cores \
                             axis includes {c}",
                            groups.len()
                        ),
                    ));
                }
            }
            let max_coeff = usize::from(*scaling.iter().max().unwrap_or(&1));
            let min_coeff = usize::from(*scaling.iter().min().unwrap_or(&1));
            for &l in &levels {
                if max_coeff > l || min_coeff < 1 {
                    return Err(err(
                        c_line,
                        &format!(
                            "simulate scenario `{name}`: scaling coefficients must lie in 1..={l} \
                             for the {l}-level set"
                        ),
                    ));
                }
            }
        }
        Ok(Scenario {
            name,
            kind,
            apps,
            cores,
            levels,
            selections,
            seeds,
            budget,
            deadline_scale,
        })
    }

    fn take_either(&mut self, plural: &str, singular: &str) -> Option<(usize, String)> {
        self.take(plural).or_else(|| self.take(singular))
    }
}

fn kind_label(kind: &ScenarioKind) -> &'static str {
    match kind {
        ScenarioKind::Optimize => "optimize",
        ScenarioKind::Baseline { .. } => "baseline",
        ScenarioKind::Sweep { .. } => "sweep",
        ScenarioKind::Simulate { .. } => "simulate",
    }
}

fn split_list(value: &str) -> impl Iterator<Item = &str> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty())
}

/// Rejects grid axes that parsed to nothing (`seeds = ""`, `apps = ","`):
/// an empty axis would silently expand the whole scenario to zero units.
fn non_empty<T>(lineno: usize, what: &str, list: Vec<T>) -> Result<Vec<T>, CampaignError> {
    if list.is_empty() {
        return Err(err(lineno, &format!("`{what}` lists no values")));
    }
    Ok(list)
}

fn parse_u8_list(lineno: usize, value: &str) -> Result<Vec<u8>, CampaignError> {
    let list = split_list(value)
        .map(|s| {
            s.parse::<u8>()
                .map_err(|_| err(lineno, &format!("cannot parse `{s}` as a coefficient")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    non_empty(lineno, "coefficient list", list)
}

/// Parses `"2,4-6"` into `[2, 4, 5, 6]`.
fn parse_usize_ranges(lineno: usize, value: &str) -> Result<Vec<usize>, CampaignError> {
    let mut out = Vec::new();
    for item in split_list(value) {
        if let Some((lo, hi)) = item.split_once('-') {
            let lo: usize = lo
                .trim()
                .parse()
                .map_err(|_| err(lineno, &format!("cannot parse `{lo}` in range `{item}`")))?;
            let hi: usize = hi
                .trim()
                .parse()
                .map_err(|_| err(lineno, &format!("cannot parse `{hi}` in range `{item}`")))?;
            if hi < lo {
                return Err(err(lineno, &format!("descending range `{item}`")));
            }
            out.extend(lo..=hi);
        } else {
            out.push(
                item.parse()
                    .map_err(|_| err(lineno, &format!("cannot parse `{item}`")))?,
            );
        }
    }
    if out.is_empty() {
        return Err(err(lineno, "empty list"));
    }
    Ok(out)
}

/// Parses a `|`-separated group list like `0,1,2|3|4,5`.
fn parse_groups(lineno: usize, value: &str) -> Result<Vec<Vec<usize>>, CampaignError> {
    value
        .split('|')
        .map(|group| {
            let group = group.trim();
            if group.is_empty() {
                return Ok(Vec::new());
            }
            group
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .map_err(|_| err(lineno, &format!("cannot parse task index `{t}`")))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICKSTART: &str = r#"
# demo campaign
name = "quickstart"
budget = "fast"
seed = 100

[scenario]
name = "opt"
kind = "optimize"
apps = "mpeg2, fig8"   # two workloads
cores = "3-4"
levels = "3"

[scenario]
kind = "baseline"
objectives = "tm,tmr"
app = "mpeg2"
cores = "4"
seeds = "7,8"
"#;

    #[test]
    fn parses_and_expands_the_grid() {
        let campaign = parse_campaign(QUICKSTART).unwrap();
        assert_eq!(campaign.name, "quickstart");
        assert_eq!(campaign.base_seed, 100);
        assert_eq!(campaign.scenarios.len(), 2);
        let units = campaign.expand();
        // opt: 2 apps x 2 cores; baseline: 1 app x 1 cores x 2 objectives x 2 seeds.
        assert_eq!(units.len(), 4 + 4);
        assert_eq!(units[0].scenario, "opt");
        assert_eq!(units[7].scenario, "scenario-1");
        // Derived seeds: base + global index for the first scenario...
        assert_eq!(units[0].seed, 100);
        assert_eq!(units[3].seed, 103);
        // ...explicit seed axis for the second.
        assert_eq!(units[4].seed, 7);
        assert_eq!(units[5].seed, 8);
        // Global indices are the enumeration positions.
        for (i, unit) in units.iter().enumerate() {
            assert_eq!(unit.index, i);
        }
    }

    #[test]
    fn range_and_list_syntax() {
        assert_eq!(parse_usize_ranges(1, "2,4-6").unwrap(), vec![2, 4, 5, 6]);
        assert_eq!(parse_usize_ranges(1, "3").unwrap(), vec![3]);
        assert!(parse_usize_ranges(1, "6-2").is_err());
        assert!(parse_usize_ranges(1, "").is_err());
        assert!(parse_usize_ranges(1, "x").is_err());
    }

    #[test]
    fn rejects_unknown_and_duplicate_keys() {
        let unknown = "name = \"x\"\n[scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\nfrobnicate = \"1\"\n";
        let e = parse_campaign(unknown).unwrap_err().to_string();
        assert!(e.contains("frobnicate"), "{e}");
        let dup =
            "[scenario]\nkind = \"optimize\"\ncores = \"4\"\ncores = \"2\"\napps = \"mpeg2\"\n";
        let e = parse_campaign(dup).unwrap_err().to_string();
        assert!(e.contains("duplicate") && e.contains("line 4"), "{e}");
        let dup_header = "seed = 1\nseed = 2\n[scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\n";
        assert!(parse_campaign(dup_header).is_err());
    }

    #[test]
    fn rejects_missing_required_keys_and_bad_values() {
        assert!(parse_campaign("name = \"x\"\n").is_err());
        let no_kind = "[scenario]\napps = \"mpeg2\"\ncores = \"4\"\n";
        assert!(parse_campaign(no_kind)
            .unwrap_err()
            .to_string()
            .contains("kind"));
        let bad_app = "[scenario]\nkind = \"optimize\"\napps = \"h264\"\ncores = \"4\"\n";
        assert!(parse_campaign(bad_app).is_err());
        let bad_levels =
            "[scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\nlevels = \"7\"\n";
        assert!(parse_campaign(bad_levels).is_err());
        let bad_sel = "[scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\nselections = \"luck\"\n";
        assert!(parse_campaign(bad_sel).is_err());
    }

    #[test]
    fn empty_grid_axes_are_rejected_not_silently_skipped() {
        // An axis that parses to zero values would expand the scenario to
        // zero units without any signal; every list site must reject it.
        for (key, value) in [
            ("apps", "\",\""),
            ("seeds", "\"\""),
            ("selections", "\" , \""),
        ] {
            let src = format!(
                "[scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\n{key} = {value}\n"
            );
            // `apps` is overridden below when it is the axis under test.
            let src = if key == "apps" {
                format!("[scenario]\nkind = \"optimize\"\ncores = \"4\"\napps = {value}\n")
            } else {
                src
            };
            let e = parse_campaign(&src).unwrap_err().to_string();
            assert!(e.contains("lists no values"), "{key}: {e}");
        }
        let empty_objectives =
            "[scenario]\nkind = \"baseline\"\nobjectives = \"\"\napps = \"mpeg2\"\ncores = \"4\"\n";
        assert!(parse_campaign(empty_objectives).is_err());
        let empty_scales =
            "[scenario]\nkind = \"sweep\"\nscales = \"\"\napps = \"mpeg2\"\ncores = \"4\"\n";
        assert!(parse_campaign(empty_scales).is_err());
    }

    #[test]
    fn simulate_grid_mismatches_fail_at_parse_time() {
        // A fixed 4-core design point with a cores axis spanning 2-4
        // would only explode at run time deep into the campaign.
        let base = |cores: &str, levels: &str| {
            format!(
                "[scenario]\nkind = \"simulate\"\napps = \"mpeg2\"\ncores = \"{cores}\"\n\
                 levels = \"{levels}\"\nscaling = \"2,2,3,2\"\n\
                 groups = \"0,1,2,3,4,5|6,7|8|9,10\"\n"
            )
        };
        assert!(parse_campaign(&base("4", "3")).is_ok());
        let e = parse_campaign(&base("2-4", "3")).unwrap_err().to_string();
        assert!(e.contains("4 coefficients") && e.contains("2"), "{e}");
        // Coefficient 3 does not exist in the 2-level set.
        let e = parse_campaign(&base("4", "2")).unwrap_err().to_string();
        assert!(e.contains("1..=2"), "{e}");
    }

    #[test]
    fn selections_axis_is_rejected_for_non_design_kinds() {
        let sweep = "[scenario]\nkind = \"sweep\"\napps = \"mpeg2\"\ncores = \"4\"\n\
                     selections = \"product,gamma\"\n";
        let e = parse_campaign(sweep).unwrap_err().to_string();
        assert!(e.contains("not meaningful"), "{e}");
        let opt = "[scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\n\
                   selections = \"product,gamma\"\n";
        assert_eq!(parse_campaign(opt).unwrap().expand().len(), 2);
    }

    #[test]
    fn deadline_scale_produces_scaled_app_refs() {
        let src = "[scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\n\
                   deadline_scale = \"0.4\"\n";
        let units = parse_campaign(src).unwrap().expand();
        assert_eq!(units.len(), 1);
        let AppRef::Scaled {
            spec,
            deadline_scale,
        } = &units[0].app
        else {
            panic!("scaled app ref expected, got {:?}", units[0].app);
        };
        assert_eq!(spec.to_string(), "mpeg2");
        assert!((deadline_scale - 0.4).abs() < 1e-12);
        assert_eq!(units[0].app.label(), "mpeg2@d0.4");
        // The built app carries the scaled deadline.
        let app = units[0].app.build().unwrap();
        let base = AppSpec::Mpeg2.build().unwrap();
        assert!((app.deadline_s() - base.deadline_s() * 0.4).abs() < 1e-9);

        for bad in ["0", "-1", "nan", "inf", "x"] {
            let src = format!(
                "[scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\n\
                 deadline_scale = \"{bad}\"\n"
            );
            assert!(parse_campaign(&src).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn simulate_scenario_parses_design_point() {
        let src = "[scenario]\nkind = \"simulate\"\napps = \"mpeg2\"\ncores = \"4\"\nscaling = \"2,2,3,2\"\ngroups = \"0,1,2,3,4,5|6,7|8|9,10\"\nseeds = \"13\"\n";
        let campaign = parse_campaign(src).unwrap();
        let units = campaign.expand();
        assert_eq!(units.len(), 1);
        let UnitKind::Simulate {
            scaling,
            groups,
            ser,
        } = &units[0].kind
        else {
            panic!("simulate kind expected");
        };
        assert_eq!(scaling, &vec![2, 2, 3, 2]);
        assert_eq!(groups.len(), 4);
        assert!((ser - sea_arch::ser::PAPER_SER).abs() < 1e-18);
    }

    #[test]
    fn comments_and_quotes_are_handled() {
        let src = "name = \"has # hash\"  # trailing\n[scenario]\nkind = \"sweep\"\napps = \"mpeg2\"\ncores = \"4\"\ncount = 12\nscales = \"1,2\"\n";
        let campaign = parse_campaign(src).unwrap();
        assert_eq!(campaign.name, "has # hash");
        let units = campaign.expand();
        assert_eq!(units.len(), 2);
        let UnitKind::Sweep { count, scale } = units[1].kind else {
            panic!("sweep kind expected");
        };
        assert_eq!((count, scale), (12, 2));
    }
}
