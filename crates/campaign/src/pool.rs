//! The shared worker pool: executes a flat unit list across scenarios.
//!
//! Workers pull unit indices from a shared atomic counter (work stealing
//! over the enumeration — no per-scenario barriers, so a wide campaign
//! keeps every core busy until the tail) and report `(index, result)`
//! over a channel. The collector streams each completion to the sink in
//! *completion* order and slots the result by *enumeration* index, so the
//! returned list — and every final report rendered from it — is bitwise
//! identical for any worker count. Units are pure functions of their own
//! fields ([`crate::unit`]), which is the whole guarantee: scheduling can
//! only change wall-clock and the interleaving of progress lines.
//!
//! [`run_units_configured`] layers the persistence machinery on top:
//!
//! * **Journal prefills** ([`RunConfig::prefilled`]) — units restored
//!   from a `--resume` journal are never re-executed (unless the caller
//!   [`RunConfig::need_payloads`] and the cache cannot supply the typed
//!   payload); only the missing indices reach the workers.
//! * **Result cache** ([`RunConfig::cache`]) — workers consult the
//!   content-addressed cache *before* evaluating and publish fresh
//!   results back to it. A cache hit counts as a completion (it streams
//!   to the sink and lands in the journal); a prefilled unit does not
//!   (it already completed in a previous process).
//! * **Write-ahead journal** ([`RunConfig::journal`]) — the
//!   single-threaded collector durably appends each newly completed
//!   record before the final report exists, so a killed campaign loses
//!   at most its in-flight units.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use crate::cache::Cache;
use crate::hash::unit_hash;
use crate::journal::JournalWriter;
use crate::sink::Sink;
use crate::unit::{run_unit_cancellable, Unit, UnitRecord, UnitResult};
use crate::CampaignError;

/// How one unit of a configured run completed.
#[derive(Debug)]
pub enum UnitOutcome {
    /// Executed this run (or restored from the cache with its full typed
    /// payload).
    Full(UnitResult),
    /// Restored record-only from a resume journal — the numbers are
    /// final, the typed payload was not rebuilt.
    Restored(UnitRecord),
}

impl UnitOutcome {
    /// The flat record, whichever way the unit completed.
    #[must_use]
    pub fn record(&self) -> &UnitRecord {
        match self {
            UnitOutcome::Full(r) => &r.record,
            UnitOutcome::Restored(r) => r,
        }
    }

    /// The full result, when the payload exists.
    #[must_use]
    pub fn result(&self) -> Option<&UnitResult> {
        match self {
            UnitOutcome::Full(r) => Some(r),
            UnitOutcome::Restored(_) => None,
        }
    }
}

/// The outcome of a configured run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-unit outcomes in enumeration order.
    pub units: Vec<UnitOutcome>,
    /// Units actually evaluated by this process.
    pub executed: usize,
    /// Units restored from the result cache.
    pub cache_hits: usize,
    /// Units restored from the resume journal without re-execution.
    pub resumed: usize,
}

impl RunOutcome {
    /// The flat records in enumeration order (what the sinks render).
    #[must_use]
    pub fn records(&self) -> Vec<UnitRecord> {
        self.units.iter().map(|u| u.record().clone()).collect()
    }

    /// Unwraps every unit into a full result; `None` if any unit was
    /// restored record-only (callers that need payloads must run with
    /// [`RunConfig::need_payloads`]).
    #[must_use]
    pub fn into_results(self) -> Option<Vec<UnitResult>> {
        self.units
            .into_iter()
            .map(|u| match u {
                UnitOutcome::Full(r) => Some(r),
                UnitOutcome::Restored(_) => None,
            })
            .collect()
    }
}

/// Execution options for [`run_units_configured`].
pub struct RunConfig<'a> {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Content-addressed result cache, consulted before evaluating and
    /// published to (best-effort) after.
    pub cache: Option<&'a Cache>,
    /// Records restored from a resume journal, by enumeration index.
    /// Empty = nothing prefilled. Must be empty or `units.len()` long.
    pub prefilled: Vec<Option<UnitRecord>>,
    /// When true (the experiment harnesses), a prefilled record alone
    /// cannot satisfy a unit: the pool restores the typed payload from
    /// the cache or re-executes.
    pub need_payloads: bool,
    /// Write-ahead journal appender; each newly completed unit is durably
    /// recorded in completion order. Owned, so long-lived callers (the
    /// `sea-serve` daemon keeps one `RunState` per active campaign) need
    /// no borrow arena behind their state registry.
    pub journal: Option<JournalWriter>,
}

impl<'a> RunConfig<'a> {
    /// Plain run: no cache, no journal, nothing prefilled.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        RunConfig {
            jobs,
            cache: None,
            prefilled: Vec::new(),
            need_payloads: false,
            journal: None,
        }
    }
}

/// One unit's completion, as produced by [`produce_unit`] (or restored
/// from a cache/network transport) and consumed by [`RunState::complete`].
#[derive(Debug)]
pub struct Completion {
    /// Enumeration position (authoritative for slotting, independent of
    /// `unit.index`).
    pub index: usize,
    /// The result, or the hard error that produced none.
    pub result: Result<UnitResult, CampaignError>,
    /// Whether the result was restored from the result cache rather than
    /// evaluated.
    pub from_cache: bool,
}

/// The order a backend should hand `pending` units to workers: most
/// expensive first ([`Unit::cost_estimate`]), enumeration index as the
/// tiebreak. Starting the straggler early shrinks the tail a
/// work-stealing pool (or a fleet of network workers) idles through —
/// and because completions slot by enumeration index, dispatch order can
/// only change wall-clock and progress-line interleaving, never a
/// report.
#[must_use]
pub fn dispatch_order(units: &[Unit], pending: &[usize]) -> Vec<usize> {
    let mut order: Vec<(u64, usize)> = pending
        .iter()
        .map(|&i| (units[i].cost_estimate(), i))
        .collect();
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    order.into_iter().map(|(_, i)| i).collect()
}

/// Runs one unit the configured way: cache probe, then execution plus
/// best-effort cache publication. `index` is the enumeration position
/// (authoritative for slotting, independent of `unit.index`). This is the
/// single evaluation path shared by the thread-pool workers and the
/// network workers of `sea-dist`.
#[must_use]
pub fn produce_unit(
    index: usize,
    unit: &Unit,
    cache: Option<&Cache>,
    inner_jobs: usize,
) -> Completion {
    produce_unit_cancellable(index, unit, cache, inner_jobs, None)
}

/// [`produce_unit`] with a cooperative cancellation flag threaded into
/// the unit's optimizer. Network workers install one so a lost
/// coordinator (or a daemon-side `Cancel`) stops the in-flight unit at
/// the next scaling-chunk boundary; a cancelled completion carries
/// [`sea_opt::OptError::Cancelled`] and is never published to the cache.
#[must_use]
pub fn produce_unit_cancellable(
    index: usize,
    unit: &Unit,
    cache: Option<&Cache>,
    inner_jobs: usize,
    cancel: Option<&Arc<AtomicBool>>,
) -> Completion {
    if let Some(cache) = cache {
        if let Some(result) = cache.load(unit) {
            return Completion {
                index,
                result: Ok(result),
                from_cache: true,
            };
        }
    }
    let result = run_unit_cancellable(unit, inner_jobs, cancel);
    if let (Some(cache), Ok(r)) = (cache, &result) {
        // Best-effort: a full disk must not fail the campaign.
        let _ = cache.store(r);
    }
    Completion {
        index,
        result,
        from_cache: false,
    }
}

/// The unit-source/result-slot state machine shared by every execution
/// backend: the in-process thread pool ([`run_units_configured`]) and the
/// TCP dispatcher (`sea-dist`) both *drive* a `RunState` instead of
/// re-implementing the prefill/cache/journal discipline.
///
/// [`RunState::plan`] makes the one decision that must never drift
/// between backends — "does this unit need evaluation, and where does its
/// result go" — and [`RunState::complete`] enforces the merge discipline:
/// results slot by enumeration index, stream to the sink in completion
/// order, and append to the write-ahead journal exactly once, so the
/// final report is byte-identical no matter which backend (or how many
/// workers, threads or machines) produced the completions.
#[derive(Debug)]
pub struct RunState {
    slots: Vec<Option<UnitOutcome>>,
    errors: Vec<Option<CampaignError>>,
    pending: Vec<usize>,
    journaled: Vec<bool>,
    journal: Option<JournalWriter>,
    resumed: usize,
    executed: usize,
    cache_hits: usize,
    outstanding: usize,
    journal_error: Option<CampaignError>,
}

impl RunState {
    /// Plans a run: decides, per unit, whether it still needs evaluation.
    ///
    /// A prefilled (journal-restored) record satisfies its unit unless the
    /// caller needs typed payloads, in which case the unit re-enters the
    /// pending list (the cache may still satisfy it without re-execution)
    /// while `journaled` remembers that its record is already durable.
    ///
    /// # Panics
    ///
    /// Panics if `prefilled` is non-empty but not `units.len()` long.
    #[must_use]
    pub fn plan(
        units: &[Unit],
        mut prefilled: Vec<Option<UnitRecord>>,
        need_payloads: bool,
        journal: Option<JournalWriter>,
    ) -> Self {
        if prefilled.is_empty() {
            prefilled = (0..units.len()).map(|_| None).collect();
        }
        assert_eq!(
            prefilled.len(),
            units.len(),
            "prefilled slots must match the unit list"
        );
        let mut slots: Vec<Option<UnitOutcome>> = (0..units.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = Vec::with_capacity(units.len());
        let mut journaled: Vec<bool> = (0..units.len()).map(|_| false).collect();
        let mut resumed = 0usize;
        for (i, slot) in prefilled.into_iter().enumerate() {
            match slot {
                Some(record) if !need_payloads => {
                    resumed += 1;
                    slots[i] = Some(UnitOutcome::Restored(record));
                }
                Some(_) => {
                    resumed += 1;
                    journaled[i] = true;
                    pending.push(i);
                }
                None => pending.push(i),
            }
        }
        let outstanding = pending.len();
        RunState {
            errors: (0..units.len()).map(|_| None).collect(),
            slots,
            pending,
            journaled,
            journal,
            resumed,
            executed: 0,
            cache_hits: 0,
            outstanding,
            journal_error: None,
        }
    }

    /// The enumeration indices that still need a completion, in
    /// enumeration order. This is the work list a backend dispatches.
    #[must_use]
    pub fn pending(&self) -> &[usize] {
        &self.pending
    }

    /// How many pending units have not completed yet.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Units evaluated so far by this backend (fresh executions).
    #[must_use]
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Units restored so far from the result cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Units restored from the resume journal at plan time.
    #[must_use]
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Whether `index` already has a completion (a re-queued unit whose
    /// original worker turned out to be alive produces duplicates; the
    /// first completion wins).
    #[must_use]
    pub fn is_filled(&self, index: usize) -> bool {
        self.slots[index].is_some() || self.errors[index].is_some()
    }

    /// Records one completion: streams it to the sink (completion order),
    /// appends it to the journal (once — prefilled records are already
    /// durable), and slots it by enumeration index.
    ///
    /// Returns `false` when the run must halt because a journal append
    /// failed (the write-ahead guarantee is gone); the error surfaces from
    /// [`RunState::finish`]. Hard unit errors do *not* halt — the rest of
    /// the campaign still runs, and the first error by enumeration index
    /// is raised at the end. Duplicate completions are ignored.
    pub fn complete(&mut self, done: Completion, sink: &mut dyn Sink) -> bool {
        let Completion {
            index,
            result,
            from_cache,
        } = done;
        if self.is_filled(index) {
            return true;
        }
        self.outstanding -= 1;
        if from_cache {
            self.cache_hits += 1;
        } else {
            self.executed += 1;
        }
        match result {
            Ok(r) => {
                sink.unit_completed(&r.record);
                if let (Some(journal), false) = (self.journal.as_mut(), self.journaled[index]) {
                    if let Err(e) = journal.append(index, unit_hash(&r.unit), &r.record) {
                        self.journal_error = Some(CampaignError::Journal(format!(
                            "cannot append unit {index} to the journal: {e} — \
                             aborting so the write-ahead guarantee is not silently lost"
                        )));
                        return false;
                    }
                }
                self.slots[index] = Some(UnitOutcome::Full(r));
            }
            Err(e) => {
                self.errors[index] = Some(e);
            }
        }
        true
    }

    /// Finishes the run: raises a journal failure or the first (by
    /// enumeration index) hard unit error, otherwise renders the final
    /// report through the sink and returns the outcome.
    ///
    /// # Errors
    ///
    /// The stashed journal-append failure, else the first unit error.
    ///
    /// # Panics
    ///
    /// Panics if completions are still outstanding and no error explains
    /// the gap — a backend must drain before finishing.
    pub fn finish(self, sink: &mut dyn Sink) -> Result<RunOutcome, CampaignError> {
        if let Some(e) = self.journal_error {
            return Err(e);
        }
        if let Some(e) = self.errors.into_iter().flatten().next() {
            return Err(e);
        }
        let units_out: Vec<UnitOutcome> = self
            .slots
            .into_iter()
            .map(|slot| slot.expect("every unit reports exactly once"))
            .collect();
        let records: Vec<UnitRecord> = units_out.iter().map(|u| u.record().clone()).collect();
        sink.finish(&records);
        Ok(RunOutcome {
            units: units_out,
            executed: self.executed,
            cache_hits: self.cache_hits,
            resumed: self.resumed,
        })
    }
}

/// Executes `units` under the full persistence configuration, streaming
/// completions to `sink`.
///
/// Outcomes are in enumeration order, so every report rendered from them
/// is byte-identical for any worker count, any cache state and any
/// resume point. The sink's [`Sink::begin`] and
/// [`Sink::unit_completed`] observe only units that complete *in this
/// process* (fresh executions and cache hits — so a resumed run's
/// progress counts to its own total, not the campaign's), in completion
/// order; [`Sink::finish`] always observes every record in enumeration
/// order.
///
/// # Errors
///
/// Propagates the first (by enumeration index) hard unit error after all
/// workers have drained, and journal-append failures immediately —
/// infeasible units are results, not errors.
///
/// # Panics
///
/// Panics if `prefilled` is non-empty but not `units.len()` long.
pub fn run_units_configured(
    units: &[Unit],
    config: RunConfig<'_>,
    sink: &mut dyn Sink,
) -> Result<RunOutcome, CampaignError> {
    let RunConfig {
        jobs,
        cache,
        prefilled,
        need_payloads,
        journal,
    } = config;
    let mut state = RunState::plan(units, prefilled, need_payloads, journal);

    // The progress stream counts what *this process* will complete —
    // on a resume, "[3/3]" (not a never-reached "[3/10]") is what tells
    // an observer the run finished rather than aborted. The final report
    // still covers every unit.
    sink.begin(state.pending().len());

    let pending = state.pending().to_vec();
    let requested = jobs.max(1);
    let jobs = requested.min(pending.len().max(1));
    // Narrow campaigns must not strand capacity: when there are fewer
    // pending units than requested workers, the surplus is handed down to
    // each unit's own scaling enumeration (whose outcome is job-count
    // invariant), so a one-unit campaign on a 16-way host still uses the
    // machine.
    let inner_jobs = (requested / pending.len().max(1)).max(1);

    if jobs <= 1 {
        // Sequential runs keep enumeration order: with one worker there
        // is no straggler tail to shrink, and in-order progress lines
        // are easier to follow.
        for &i in &pending {
            let done = produce_unit(i, &units[i], cache, inner_jobs);
            if !state.complete(done, sink) {
                break;
            }
        }
    } else {
        let pending = dispatch_order(units, &pending);
        let next = AtomicUsize::new(0);
        let pending_ref = &pending;
        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel();
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = pending_ref.get(k) else {
                        break;
                    };
                    if tx
                        .send(produce_unit(i, &units[i], cache, inner_jobs))
                        .is_err()
                    {
                        break;
                    }
                });
            }
            drop(tx);
            for done in rx {
                if !state.complete(done, sink) {
                    // Dropping the receiver makes the workers' next
                    // send fail, winding the pool down.
                    break;
                }
            }
        });
    }

    state.finish(sink)
}

/// Executes `units` on `jobs` workers, streaming completions to `sink`.
///
/// Returns results in enumeration order. The sink's
/// [`Sink::unit_completed`] observes completion order (nondeterministic
/// under `jobs > 1`); its [`Sink::finish`] always observes enumeration
/// order.
///
/// # Errors
///
/// Propagates the first (by enumeration index) hard unit error after all
/// workers have drained — infeasible units are results, not errors.
pub fn run_units(
    units: &[Unit],
    jobs: usize,
    sink: &mut dyn Sink,
) -> Result<Vec<UnitResult>, CampaignError> {
    let outcome = run_units_configured(units, RunConfig::new(jobs), sink)?;
    Ok(outcome
        .into_results()
        .expect("a plain run has no record-only restorations"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use crate::spec::parse_campaign;

    const SMALL: &str = "\
name = \"pool-test\"
budget = \"fast\"
[scenario]
kind = \"optimize\"
apps = \"mpeg2, fig8\"
cores = \"3,4\"
[scenario]
kind = \"sweep\"
apps = \"mpeg2\"
cores = \"4\"
count = 15
";

    #[test]
    fn results_are_identical_across_worker_counts() {
        let units = parse_campaign(SMALL).unwrap().expand();
        let run = |jobs| run_units(&units, jobs, &mut NullSink).unwrap();
        let seq = run(1);
        for jobs in [2, 8] {
            let par = run(jobs);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.record.status, b.record.status, "jobs={jobs}");
                assert_eq!(
                    a.record.gamma.map(f64::to_bits),
                    b.record.gamma.map(f64::to_bits),
                    "jobs={jobs}"
                );
                assert_eq!(
                    a.record.power_mw.map(f64::to_bits),
                    b.record.power_mw.map(f64::to_bits),
                    "jobs={jobs}"
                );
                assert_eq!(a.record.mapping, b.record.mapping, "jobs={jobs}");
                assert_eq!(a.record.evaluations, b.record.evaluations, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn sink_sees_every_unit_and_ordered_finish() {
        struct Counting {
            begun: usize,
            streamed: Vec<usize>,
            finished: Vec<usize>,
        }
        impl Sink for Counting {
            fn begin(&mut self, total: usize) {
                self.begun = total;
            }
            fn unit_completed(&mut self, record: &crate::unit::UnitRecord) {
                self.streamed.push(record.index);
            }
            fn finish(&mut self, records: &[crate::unit::UnitRecord]) {
                self.finished = records.iter().map(|r| r.index).collect();
            }
        }
        let units = parse_campaign(SMALL).unwrap().expand();
        let mut sink = Counting {
            begun: 0,
            streamed: Vec::new(),
            finished: Vec::new(),
        };
        run_units(&units, 4, &mut sink).unwrap();
        assert_eq!(sink.begun, units.len());
        let mut streamed = sink.streamed.clone();
        streamed.sort_unstable();
        assert_eq!(streamed, (0..units.len()).collect::<Vec<_>>());
        // The final report is always in enumeration order.
        assert_eq!(sink.finished, (0..units.len()).collect::<Vec<_>>());
    }

    #[test]
    fn dispatch_order_is_cost_descending_with_index_tiebreak() {
        let units = parse_campaign(SMALL).unwrap().expand();
        let pending: Vec<usize> = (0..units.len()).collect();
        let order = dispatch_order(&units, &pending);
        // A permutation of the pending list...
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, pending);
        // ...in non-increasing cost order, index-ascending within ties.
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (ca, cb) = (units[a].cost_estimate(), units[b].cost_estimate());
            assert!(ca > cb || (ca == cb && a < b), "order violated at {a},{b}");
        }
        // The front of the queue is a surviving-scalings × budget
        // optimize unit, not the 15-mapping sweep (fig8's tight deadline
        // may prune its optimize units below the sweep — that's the cost
        // model working, not a tie to pin).
        let first = &units[order[0]];
        assert!(matches!(first.kind, crate::unit::UnitKind::Optimize));
        assert_eq!(first.app.label(), "mpeg2");
    }

    #[test]
    fn run_state_ignores_duplicate_completions() {
        // A re-queued unit whose original worker turns out to be alive
        // (network dispatch) delivers the same index twice; the first
        // completion must win and the counters must not double.
        let units = parse_campaign(SMALL).unwrap().expand();
        let mut state = RunState::plan(&units, Vec::new(), false, None);
        assert_eq!(state.pending().len(), units.len());
        assert_eq!(state.outstanding(), units.len());
        for &i in &units.iter().map(|u| u.index).collect::<Vec<_>>() {
            let done = produce_unit(i, &units[i], None, 1);
            assert!(state.complete(done, &mut NullSink));
            assert!(state.is_filled(i));
            // The duplicate is dropped on the floor.
            let dup = produce_unit(i, &units[i], None, 1);
            assert!(state.complete(dup, &mut NullSink));
        }
        assert_eq!(state.outstanding(), 0);
        let outcome = state.finish(&mut NullSink).unwrap();
        assert_eq!(outcome.executed, units.len(), "duplicates not counted");
        assert_eq!(outcome.units.len(), units.len());
    }

    #[test]
    fn prefilled_units_are_not_reexecuted_and_reports_match() {
        let units = parse_campaign(SMALL).unwrap().expand();
        let full = run_units(&units, 2, &mut NullSink).unwrap();
        let records: Vec<UnitRecord> = full.iter().map(|r| r.record.clone()).collect();

        // Prefill the first half as a resume journal would.
        let half = units.len() / 2;
        let mut config = RunConfig::new(2);
        config.prefilled = records
            .iter()
            .enumerate()
            .map(|(i, r)| (i < half).then(|| r.clone()))
            .collect();
        let outcome = run_units_configured(&units, config, &mut NullSink).unwrap();
        assert_eq!(outcome.resumed, half);
        assert_eq!(outcome.executed, units.len() - half);
        let resumed_records = outcome.records();
        for (a, b) in records.iter().zip(&resumed_records) {
            assert_eq!(crate::sink::json_record(a), crate::sink::json_record(b));
        }
        // Record-only restorations carry no payload.
        assert!(outcome.units[0].result().is_none());
        assert!(outcome.units[half].result().is_some());
    }
}
