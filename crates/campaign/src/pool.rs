//! The shared worker pool: executes a flat unit list across scenarios.
//!
//! Workers pull unit indices from a shared atomic counter (work stealing
//! over the enumeration — no per-scenario barriers, so a wide campaign
//! keeps every core busy until the tail) and report `(index, result)`
//! over a channel. The collector streams each completion to the sink in
//! *completion* order and slots the result by *enumeration* index, so the
//! returned list — and every final report rendered from it — is bitwise
//! identical for any worker count. Units are pure functions of their own
//! fields ([`crate::unit`]), which is the whole guarantee: scheduling can
//! only change wall-clock and the interleaving of progress lines.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::sink::Sink;
use crate::unit::{run_unit_with_jobs, Unit, UnitResult};
use crate::CampaignError;

/// Executes `units` on `jobs` workers, streaming completions to `sink`.
///
/// Returns results in enumeration order. The sink's
/// [`Sink::unit_completed`] observes completion order (nondeterministic
/// under `jobs > 1`); its [`Sink::finish`] always observes enumeration
/// order.
///
/// # Errors
///
/// Propagates the first (by enumeration index) hard unit error after all
/// workers have drained — infeasible units are results, not errors.
pub fn run_units(
    units: &[Unit],
    jobs: usize,
    sink: &mut dyn Sink,
) -> Result<Vec<UnitResult>, CampaignError> {
    sink.begin(units.len());
    let requested = jobs.max(1);
    let jobs = requested.min(units.len().max(1));
    // Narrow campaigns must not strand capacity: when there are fewer
    // units than requested workers, the surplus is handed down to each
    // unit's own scaling enumeration (whose outcome is job-count
    // invariant), so a one-unit campaign on a 16-way host still uses the
    // machine.
    let inner_jobs = (requested / units.len().max(1)).max(1);
    let mut slots: Vec<Option<Result<UnitResult, CampaignError>>> =
        (0..units.len()).map(|_| None).collect();

    if jobs == 1 {
        for (i, unit) in units.iter().enumerate() {
            let result = run_unit_with_jobs(unit, inner_jobs);
            if let Ok(r) = &result {
                sink.unit_completed(&r.record);
            }
            slots[i] = Some(result);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel();
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    if tx
                        .send((i, run_unit_with_jobs(&units[i], inner_jobs)))
                        .is_err()
                    {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, result) in rx {
                if let Ok(r) = &result {
                    sink.unit_completed(&r.record);
                }
                slots[i] = Some(result);
            }
        });
    }

    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every unit reports exactly once"))
        .collect::<Result<Vec<_>, _>>()?;
    let records: Vec<_> = results.iter().map(|r| r.record.clone()).collect();
    sink.finish(&records);
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use crate::spec::parse_campaign;

    const SMALL: &str = "\
name = \"pool-test\"
budget = \"fast\"
[scenario]
kind = \"optimize\"
apps = \"mpeg2, fig8\"
cores = \"3,4\"
[scenario]
kind = \"sweep\"
apps = \"mpeg2\"
cores = \"4\"
count = 15
";

    #[test]
    fn results_are_identical_across_worker_counts() {
        let units = parse_campaign(SMALL).unwrap().expand();
        let run = |jobs| run_units(&units, jobs, &mut NullSink).unwrap();
        let seq = run(1);
        for jobs in [2, 8] {
            let par = run(jobs);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.record.status, b.record.status, "jobs={jobs}");
                assert_eq!(
                    a.record.gamma.map(f64::to_bits),
                    b.record.gamma.map(f64::to_bits),
                    "jobs={jobs}"
                );
                assert_eq!(
                    a.record.power_mw.map(f64::to_bits),
                    b.record.power_mw.map(f64::to_bits),
                    "jobs={jobs}"
                );
                assert_eq!(a.record.mapping, b.record.mapping, "jobs={jobs}");
                assert_eq!(a.record.evaluations, b.record.evaluations, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn sink_sees_every_unit_and_ordered_finish() {
        struct Counting {
            begun: usize,
            streamed: Vec<usize>,
            finished: Vec<usize>,
        }
        impl Sink for Counting {
            fn begin(&mut self, total: usize) {
                self.begun = total;
            }
            fn unit_completed(&mut self, record: &crate::unit::UnitRecord) {
                self.streamed.push(record.index);
            }
            fn finish(&mut self, records: &[crate::unit::UnitRecord]) {
                self.finished = records.iter().map(|r| r.index).collect();
            }
        }
        let units = parse_campaign(SMALL).unwrap().expand();
        let mut sink = Counting {
            begun: 0,
            streamed: Vec::new(),
            finished: Vec::new(),
        };
        run_units(&units, 4, &mut sink).unwrap();
        assert_eq!(sink.begun, units.len());
        let mut streamed = sink.streamed.clone();
        streamed.sort_unstable();
        assert_eq!(streamed, (0..units.len()).collect::<Vec<_>>());
        // The final report is always in enumeration order.
        assert_eq!(sink.finished, (0..units.len()).collect::<Vec<_>>());
    }
}
