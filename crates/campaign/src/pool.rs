//! The shared worker pool: executes a flat unit list across scenarios.
//!
//! Workers pull unit indices from a shared atomic counter (work stealing
//! over the enumeration — no per-scenario barriers, so a wide campaign
//! keeps every core busy until the tail) and report `(index, result)`
//! over a channel. The collector streams each completion to the sink in
//! *completion* order and slots the result by *enumeration* index, so the
//! returned list — and every final report rendered from it — is bitwise
//! identical for any worker count. Units are pure functions of their own
//! fields ([`crate::unit`]), which is the whole guarantee: scheduling can
//! only change wall-clock and the interleaving of progress lines.
//!
//! [`run_units_configured`] layers the persistence machinery on top:
//!
//! * **Journal prefills** ([`RunConfig::prefilled`]) — units restored
//!   from a `--resume` journal are never re-executed (unless the caller
//!   [`RunConfig::need_payloads`] and the cache cannot supply the typed
//!   payload); only the missing indices reach the workers.
//! * **Result cache** ([`RunConfig::cache`]) — workers consult the
//!   content-addressed cache *before* evaluating and publish fresh
//!   results back to it. A cache hit counts as a completion (it streams
//!   to the sink and lands in the journal); a prefilled unit does not
//!   (it already completed in a previous process).
//! * **Write-ahead journal** ([`RunConfig::journal`]) — the
//!   single-threaded collector durably appends each newly completed
//!   record before the final report exists, so a killed campaign loses
//!   at most its in-flight units.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::cache::Cache;
use crate::hash::unit_hash;
use crate::journal::JournalWriter;
use crate::sink::Sink;
use crate::unit::{run_unit_with_jobs, Unit, UnitRecord, UnitResult};
use crate::CampaignError;

/// How one unit of a configured run completed.
#[derive(Debug)]
pub enum UnitOutcome {
    /// Executed this run (or restored from the cache with its full typed
    /// payload).
    Full(UnitResult),
    /// Restored record-only from a resume journal — the numbers are
    /// final, the typed payload was not rebuilt.
    Restored(UnitRecord),
}

impl UnitOutcome {
    /// The flat record, whichever way the unit completed.
    #[must_use]
    pub fn record(&self) -> &UnitRecord {
        match self {
            UnitOutcome::Full(r) => &r.record,
            UnitOutcome::Restored(r) => r,
        }
    }

    /// The full result, when the payload exists.
    #[must_use]
    pub fn result(&self) -> Option<&UnitResult> {
        match self {
            UnitOutcome::Full(r) => Some(r),
            UnitOutcome::Restored(_) => None,
        }
    }
}

/// The outcome of a configured run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-unit outcomes in enumeration order.
    pub units: Vec<UnitOutcome>,
    /// Units actually evaluated by this process.
    pub executed: usize,
    /// Units restored from the result cache.
    pub cache_hits: usize,
    /// Units restored from the resume journal without re-execution.
    pub resumed: usize,
}

impl RunOutcome {
    /// The flat records in enumeration order (what the sinks render).
    #[must_use]
    pub fn records(&self) -> Vec<UnitRecord> {
        self.units.iter().map(|u| u.record().clone()).collect()
    }

    /// Unwraps every unit into a full result; `None` if any unit was
    /// restored record-only (callers that need payloads must run with
    /// [`RunConfig::need_payloads`]).
    #[must_use]
    pub fn into_results(self) -> Option<Vec<UnitResult>> {
        self.units
            .into_iter()
            .map(|u| match u {
                UnitOutcome::Full(r) => Some(r),
                UnitOutcome::Restored(_) => None,
            })
            .collect()
    }
}

/// Execution options for [`run_units_configured`].
pub struct RunConfig<'a> {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Content-addressed result cache, consulted before evaluating and
    /// published to (best-effort) after.
    pub cache: Option<&'a Cache>,
    /// Records restored from a resume journal, by enumeration index.
    /// Empty = nothing prefilled. Must be empty or `units.len()` long.
    pub prefilled: Vec<Option<UnitRecord>>,
    /// When true (the experiment harnesses), a prefilled record alone
    /// cannot satisfy a unit: the pool restores the typed payload from
    /// the cache or re-executes.
    pub need_payloads: bool,
    /// Write-ahead journal appender; each newly completed unit is durably
    /// recorded in completion order.
    pub journal: Option<&'a mut JournalWriter>,
}

impl<'a> RunConfig<'a> {
    /// Plain run: no cache, no journal, nothing prefilled.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        RunConfig {
            jobs,
            cache: None,
            prefilled: Vec::new(),
            need_payloads: false,
            journal: None,
        }
    }
}

/// What a worker hands the collector for one unit.
struct Done {
    index: usize,
    result: Result<UnitResult, CampaignError>,
    from_cache: bool,
}

/// Runs one unit the configured way: cache probe, then execution plus
/// best-effort cache publication. `index` is the enumeration position
/// (authoritative for slotting, independent of `unit.index`).
fn produce(index: usize, unit: &Unit, cache: Option<&Cache>, inner_jobs: usize) -> Done {
    if let Some(cache) = cache {
        if let Some(result) = cache.load(unit) {
            return Done {
                index,
                result: Ok(result),
                from_cache: true,
            };
        }
    }
    let result = run_unit_with_jobs(unit, inner_jobs);
    if let (Some(cache), Ok(r)) = (cache, &result) {
        // Best-effort: a full disk must not fail the campaign.
        let _ = cache.store(r);
    }
    Done {
        index,
        result,
        from_cache: false,
    }
}

/// Executes `units` under the full persistence configuration, streaming
/// completions to `sink`.
///
/// Outcomes are in enumeration order, so every report rendered from them
/// is byte-identical for any worker count, any cache state and any
/// resume point. The sink's [`Sink::begin`] and
/// [`Sink::unit_completed`] observe only units that complete *in this
/// process* (fresh executions and cache hits — so a resumed run's
/// progress counts to its own total, not the campaign's), in completion
/// order; [`Sink::finish`] always observes every record in enumeration
/// order.
///
/// # Errors
///
/// Propagates the first (by enumeration index) hard unit error after all
/// workers have drained, and journal-append failures immediately —
/// infeasible units are results, not errors.
///
/// # Panics
///
/// Panics if `prefilled` is non-empty but not `units.len()` long.
pub fn run_units_configured(
    units: &[Unit],
    config: RunConfig<'_>,
    sink: &mut dyn Sink,
) -> Result<RunOutcome, CampaignError> {
    let RunConfig {
        jobs,
        cache,
        mut prefilled,
        need_payloads,
        mut journal,
    } = config;
    if prefilled.is_empty() {
        prefilled = (0..units.len()).map(|_| None).collect();
    }
    assert_eq!(
        prefilled.len(),
        units.len(),
        "prefilled slots must match the unit list"
    );

    let mut slots: Vec<Option<UnitOutcome>> = (0..units.len()).map(|_| None).collect();
    let mut errors: Vec<Option<CampaignError>> = (0..units.len()).map(|_| None).collect();
    let mut resumed = 0usize;

    // Which indices still need a worker. A prefilled unit re-enters the
    // work list only when the caller needs payloads (the cache may still
    // satisfy it without re-execution); `journaled` remembers that its
    // record is already durable.
    let mut pending: Vec<usize> = Vec::with_capacity(units.len());
    let mut journaled: Vec<bool> = (0..units.len()).map(|_| false).collect();
    for (i, slot) in prefilled.into_iter().enumerate() {
        match slot {
            Some(record) if !need_payloads => {
                resumed += 1;
                slots[i] = Some(UnitOutcome::Restored(record));
            }
            Some(_) => {
                resumed += 1;
                journaled[i] = true;
                pending.push(i);
            }
            None => pending.push(i),
        }
    }

    // The progress stream counts what *this process* will complete —
    // on a resume, "[3/3]" (not a never-reached "[3/10]") is what tells
    // an observer the run finished rather than aborted. The final report
    // still covers every unit.
    sink.begin(pending.len());

    let requested = jobs.max(1);
    let jobs = requested.min(pending.len().max(1));
    // Narrow campaigns must not strand capacity: when there are fewer
    // pending units than requested workers, the surplus is handed down to
    // each unit's own scaling enumeration (whose outcome is job-count
    // invariant), so a one-unit campaign on a 16-way host still uses the
    // machine.
    let inner_jobs = (requested / pending.len().max(1)).max(1);

    let mut executed = 0usize;
    let mut cache_hits = 0usize;
    let mut journal_error: Option<CampaignError> = None;

    {
        // Collector body shared by the sequential and parallel paths.
        let mut collect = |done: Done,
                           slots: &mut Vec<Option<UnitOutcome>>,
                           errors: &mut Vec<Option<CampaignError>>|
         -> Result<(), ()> {
            let Done {
                index,
                result,
                from_cache,
            } = done;
            if from_cache {
                cache_hits += 1;
            } else {
                executed += 1;
            }
            match result {
                Ok(r) => {
                    sink.unit_completed(&r.record);
                    if let (Some(journal), false) = (journal.as_deref_mut(), journaled[index]) {
                        if let Err(e) = journal.append(index, unit_hash(&r.unit), &r.record) {
                            journal_error = Some(CampaignError::Journal(format!(
                                "cannot append unit {index} to the journal: {e} — \
                                 aborting so the write-ahead guarantee is not silently lost"
                            )));
                            return Err(());
                        }
                    }
                    slots[index] = Some(UnitOutcome::Full(r));
                }
                Err(e) => {
                    errors[index] = Some(e);
                }
            }
            Ok(())
        };

        if jobs <= 1 {
            for &i in &pending {
                let done = produce(i, &units[i], cache, inner_jobs);
                if collect(done, &mut slots, &mut errors).is_err() {
                    break;
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let pending_ref = &pending;
            std::thread::scope(|s| {
                let (tx, rx) = mpsc::channel();
                for _ in 0..jobs {
                    let tx = tx.clone();
                    let next = &next;
                    s.spawn(move || loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = pending_ref.get(k) else {
                            break;
                        };
                        if tx.send(produce(i, &units[i], cache, inner_jobs)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for done in rx {
                    if collect(done, &mut slots, &mut errors).is_err() {
                        // Dropping the receiver makes the workers' next
                        // send fail, winding the pool down.
                        break;
                    }
                }
            });
        }
    }

    if let Some(e) = journal_error {
        return Err(e);
    }
    if let Some(e) = errors.into_iter().flatten().next() {
        return Err(e);
    }
    let units_out: Vec<UnitOutcome> = slots
        .into_iter()
        .map(|slot| slot.expect("every unit reports exactly once"))
        .collect();
    let records: Vec<UnitRecord> = units_out.iter().map(|u| u.record().clone()).collect();
    sink.finish(&records);
    Ok(RunOutcome {
        units: units_out,
        executed,
        cache_hits,
        resumed,
    })
}

/// Executes `units` on `jobs` workers, streaming completions to `sink`.
///
/// Returns results in enumeration order. The sink's
/// [`Sink::unit_completed`] observes completion order (nondeterministic
/// under `jobs > 1`); its [`Sink::finish`] always observes enumeration
/// order.
///
/// # Errors
///
/// Propagates the first (by enumeration index) hard unit error after all
/// workers have drained — infeasible units are results, not errors.
pub fn run_units(
    units: &[Unit],
    jobs: usize,
    sink: &mut dyn Sink,
) -> Result<Vec<UnitResult>, CampaignError> {
    let outcome = run_units_configured(units, RunConfig::new(jobs), sink)?;
    Ok(outcome
        .into_results()
        .expect("a plain run has no record-only restorations"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use crate::spec::parse_campaign;

    const SMALL: &str = "\
name = \"pool-test\"
budget = \"fast\"
[scenario]
kind = \"optimize\"
apps = \"mpeg2, fig8\"
cores = \"3,4\"
[scenario]
kind = \"sweep\"
apps = \"mpeg2\"
cores = \"4\"
count = 15
";

    #[test]
    fn results_are_identical_across_worker_counts() {
        let units = parse_campaign(SMALL).unwrap().expand();
        let run = |jobs| run_units(&units, jobs, &mut NullSink).unwrap();
        let seq = run(1);
        for jobs in [2, 8] {
            let par = run(jobs);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.record.status, b.record.status, "jobs={jobs}");
                assert_eq!(
                    a.record.gamma.map(f64::to_bits),
                    b.record.gamma.map(f64::to_bits),
                    "jobs={jobs}"
                );
                assert_eq!(
                    a.record.power_mw.map(f64::to_bits),
                    b.record.power_mw.map(f64::to_bits),
                    "jobs={jobs}"
                );
                assert_eq!(a.record.mapping, b.record.mapping, "jobs={jobs}");
                assert_eq!(a.record.evaluations, b.record.evaluations, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn sink_sees_every_unit_and_ordered_finish() {
        struct Counting {
            begun: usize,
            streamed: Vec<usize>,
            finished: Vec<usize>,
        }
        impl Sink for Counting {
            fn begin(&mut self, total: usize) {
                self.begun = total;
            }
            fn unit_completed(&mut self, record: &crate::unit::UnitRecord) {
                self.streamed.push(record.index);
            }
            fn finish(&mut self, records: &[crate::unit::UnitRecord]) {
                self.finished = records.iter().map(|r| r.index).collect();
            }
        }
        let units = parse_campaign(SMALL).unwrap().expand();
        let mut sink = Counting {
            begun: 0,
            streamed: Vec::new(),
            finished: Vec::new(),
        };
        run_units(&units, 4, &mut sink).unwrap();
        assert_eq!(sink.begun, units.len());
        let mut streamed = sink.streamed.clone();
        streamed.sort_unstable();
        assert_eq!(streamed, (0..units.len()).collect::<Vec<_>>());
        // The final report is always in enumeration order.
        assert_eq!(sink.finished, (0..units.len()).collect::<Vec<_>>());
    }

    #[test]
    fn prefilled_units_are_not_reexecuted_and_reports_match() {
        let units = parse_campaign(SMALL).unwrap().expand();
        let full = run_units(&units, 2, &mut NullSink).unwrap();
        let records: Vec<UnitRecord> = full.iter().map(|r| r.record.clone()).collect();

        // Prefill the first half as a resume journal would.
        let half = units.len() / 2;
        let mut config = RunConfig::new(2);
        config.prefilled = records
            .iter()
            .enumerate()
            .map(|(i, r)| (i < half).then(|| r.clone()))
            .collect();
        let outcome = run_units_configured(&units, config, &mut NullSink).unwrap();
        assert_eq!(outcome.resumed, half);
        assert_eq!(outcome.executed, units.len() - half);
        let resumed_records = outcome.records();
        for (a, b) in records.iter().zip(&resumed_records) {
            assert_eq!(crate::sink::json_record(a), crate::sink::json_record(b));
        }
        // Record-only restorations carry no payload.
        assert!(outcome.units[0].result().is_none());
        assert!(outcome.units[half].result().is_some());
    }
}
