//! Declarative multi-scenario design-space-exploration campaigns.
//!
//! The paper's evaluation is itself a campaign — Tables II/III and
//! Figs. 9/10/11 sweep applications × core counts × DVS levels ×
//! policies — and this crate makes that shape first class:
//!
//! 1. **Spec** ([`spec`]) — a hand-rolled TOML-lite grammar
//!    (`key = value` lines plus `[scenario]` sections, zero external
//!    dependencies) describing scenario grids, which
//!    [`Campaign::expand`] flattens into globally-indexed [`Unit`]s.
//! 2. **Pool** ([`pool`]) — a `std::thread::scope` worker pool that
//!    work-steals unit indices *across* scenarios. Every unit is a pure
//!    function of its own fields and per-unit seeds derive from the
//!    enumeration (never the worker count), so campaign results are
//!    bitwise identical for every `--jobs` value.
//! 3. **Sinks** ([`sink`]) — pluggable streaming observers (human table,
//!    CSV, JSONL) that emit each unit's result as it completes plus a
//!    deterministic enumeration-order final report.
//!
//! The experiment harnesses in `sea-experiments` define their tables and
//! figures as unit lists over this engine, and the `sea-dse campaign`
//! subcommand runs user-written spec files.
//!
//! # Example
//!
//! ```
//! use sea_campaign::{parse_campaign, run_units, NullSink};
//!
//! let campaign = parse_campaign(
//!     "name = \"demo\"\nbudget = \"fast\"\n\
//!      [scenario]\nkind = \"optimize\"\napps = \"mpeg2\"\ncores = \"4\"\n",
//! )
//! .expect("well-formed spec");
//! let units = campaign.expand();
//! let results = run_units(&units, 2, &mut NullSink).expect("units run");
//! assert_eq!(results.len(), 1);
//! assert_eq!(results[0].record.status, "ok");
//! ```

pub mod analytics;
pub mod arena;
pub mod cache;
pub mod hash;
pub mod journal;
pub mod pool;
pub mod sink;
pub mod spec;
pub mod unit;

pub use analytics::{
    csv_aggregates, gamma_win, human_aggregates, jsonl_aggregates, Aggregates, BestRow, ParetoRow,
    SpreadRow, WinRateRow, WinTally, GAMMA_WIN_TOLERANCE,
};
pub use arena::{Arena, Span};
pub use cache::{
    decode_result, encode_result, validate_entry, Cache, EntryHealth, EntrySurvey, PruneOutcome,
    CACHE_ENV,
};
pub use hash::{campaign_hash, unit_hash, units_hash, ContentHash, ContentHasher};
pub use journal::{
    open_journal, parse_journal, read_journal_records, Journal, JournalPlan, JournalWriter,
};
pub use pool::{
    dispatch_order, produce_unit, produce_unit_cancellable, run_units, run_units_configured,
    Completion, RunConfig, RunOutcome, RunState, UnitOutcome,
};
pub use sink::{
    csv_report, human_report, json_record, jsonl_report, CsvSink, HumanSink, JsonlSink, NullSink,
    Sink,
};
pub use spec::{parse_campaign, Campaign, Scenario, ScenarioKind};
pub use unit::{
    level_set, run_unit, run_unit_cancellable, run_unit_with_jobs, AppRef, BudgetSpec, Unit,
    UnitKind, UnitPayload, UnitRecord, UnitResult,
};

use std::error::Error;
use std::fmt;

use sea_opt::OptError;
use sea_sim::SimError;
use sea_taskgraph::SpecError;

/// Errors produced by campaign parsing and execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// Malformed campaign spec (message carries the line number).
    Spec(String),
    /// An application spec failed to build.
    App(SpecError),
    /// A unit's optimizer failed hard (infeasibility is *not* an error —
    /// it becomes a unit record).
    Opt(OptError),
    /// A simulate unit failed.
    Sim(SimError),
    /// A resume journal could not be created, read, appended or trusted
    /// (spec-hash mismatch, version skew, mid-file corruption).
    Journal(String),
    /// A distributed-execution transport failed (connection, handshake,
    /// frame or wire-codec error). The campaign crate owns the error
    /// vocabulary; the transports themselves live in `sea-dist`.
    Transport(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(msg) => write!(f, "campaign spec error: {msg}"),
            CampaignError::App(e) => write!(f, "application spec error: {e}"),
            CampaignError::Opt(e) => write!(f, "optimization error: {e}"),
            CampaignError::Sim(e) => write!(f, "simulation error: {e}"),
            CampaignError::Journal(msg) => write!(f, "campaign journal error: {msg}"),
            CampaignError::Transport(msg) => write!(f, "campaign transport error: {msg}"),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Spec(_) | CampaignError::Journal(_) | CampaignError::Transport(_) => {
                None
            }
            CampaignError::App(e) => Some(e),
            CampaignError::Opt(e) => Some(e),
            CampaignError::Sim(e) => Some(e),
        }
    }
}

impl From<OptError> for CampaignError {
    fn from(e: OptError) -> Self {
        CampaignError::Opt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<CampaignError>();
        assert!(CampaignError::Spec("line 3: boom".into())
            .to_string()
            .contains("line 3"));
    }
}
