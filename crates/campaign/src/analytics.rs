//! Campaign analytics: aggregate tables over flat unit records.
//!
//! The paper's deliverables are aggregates — win-rate comparisons
//! (Fig. 10), power/reliability trade-off fronts — while the sinks emit
//! flat per-unit records. This module closes that gap with four
//! aggregate families computed from a [`UnitRecord`] list alone:
//!
//! 1. **Win rates** — proposed (`optimize`) vs. each baseline kind, per
//!    app: records pair up positionally within an `(app, cores, levels)`
//!    configuration group (enumeration order), and a pair is a win when
//!    the proposed Γ is at or below the baseline's Γ times
//!    [`GAMMA_WIN_TOLERANCE`] — the exact Fig. 10 rule ([`WinTally`] is
//!    the primitive `sea-experiments`' fig10 folds its matched points
//!    through).
//! 2. **Pareto fronts** over (P, Γ), per app: a design is dominated when
//!    another design of the same app has power and Γ both at-or-below
//!    with at least one strictly below. Dominated rows are explicitly
//!    marked with their first dominator's index.
//! 3. **Best design per app** — minimum P·Γ product (the paper's joint
//!    selection objective), ties broken toward the earliest enumeration
//!    index.
//! 4. **Cross-seed spread** — min/median/max per scenario × app group
//!    and metric. The median is the lower middle element after sorting:
//!    an observed value, never an average of two runs.
//!
//! Only records with `status == "ok"` and finite metrics participate;
//! non-finite values are excluded the same way the CSV/JSONL renderers
//! suppress them. Every aggregate is a pure function of the record list
//! in enumeration order, so the rendered sections are **byte-identical**
//! wherever the records come from: a live run (`sea-dse campaign
//! --report-aggregates`), a `--resume` journal, or a result-cache
//! directory (`sea-dse report <journal|cache-dir>`) — with zero units
//! re-evaluated.

use std::fmt::Write as _;

use crate::sink::{ascii_table, csv_escape, json_escape, json_field_f64};
use crate::unit::UnitRecord;

/// The Fig. 10 win tolerance: the proposed flow wins a comparison when
/// its Γ is at most the baseline's Γ times this factor (ties and
/// sub-0.1 % regressions count as wins — the paper's "at or below").
pub const GAMMA_WIN_TOLERANCE: f64 = 1.001;

/// The Fig. 10 comparison rule: does a proposed Γ beat (or tie within
/// tolerance) a baseline Γ?
#[must_use]
pub fn gamma_win(baseline_gamma: f64, proposed_gamma: f64) -> bool {
    proposed_gamma <= baseline_gamma * GAMMA_WIN_TOLERANCE
}

/// Running win/total tally over [`gamma_win`] comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WinTally {
    /// Comparisons the proposed side won.
    pub wins: usize,
    /// Comparisons observed.
    pub total: usize,
}

impl WinTally {
    /// Folds one baseline-vs-proposed Γ comparison into the tally.
    pub fn observe(&mut self, baseline_gamma: f64, proposed_gamma: f64) {
        self.total += 1;
        if gamma_win(baseline_gamma, proposed_gamma) {
            self.wins += 1;
        }
    }

    /// Win fraction in `0..=1` (`0.0` when nothing was observed).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.wins as f64 / self.total as f64
        }
    }
}

/// One win-rate table row: proposed vs. one baseline kind on one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WinRateRow {
    /// The baseline's record kind (e.g. `baseline:tmr`).
    pub baseline_kind: String,
    /// Application label.
    pub app: String,
    /// The comparison tally.
    pub tally: WinTally,
}

/// One Pareto-table row: a plottable design and its dominance status.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoRow {
    /// Enumeration index of the record.
    pub index: usize,
    /// Application label.
    pub app: String,
    /// Record kind.
    pub kind: String,
    /// Power (mW).
    pub power_mw: f64,
    /// Expected SEUs (Γ).
    pub gamma: f64,
    /// `None` = on the Pareto front; `Some(i)` = dominated, and `i` is
    /// the lowest-index record of the same app that dominates it.
    pub dominated_by: Option<usize>,
}

/// The winning design of one app (minimum P·Γ product).
#[derive(Debug, Clone, PartialEq)]
pub struct BestRow {
    /// Application label.
    pub app: String,
    /// Enumeration index of the winning record.
    pub index: usize,
    /// Record kind.
    pub kind: String,
    /// Scenario the record came from.
    pub scenario: String,
    /// Power (mW).
    pub power_mw: f64,
    /// Expected SEUs (Γ).
    pub gamma: f64,
    /// Mode-period makespan, when the record carries one.
    pub tm_seconds: Option<f64>,
    /// Selected scaling vector, when the record carries one.
    pub scaling: Option<String>,
}

/// Min/median/max of one metric over one scenario × app group.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadRow {
    /// Scenario name.
    pub scenario: String,
    /// Application label.
    pub app: String,
    /// Metric name (`power_mw`, `gamma` or `tm_seconds`).
    pub metric: &'static str,
    /// Finite observations in the group.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// Lower-middle observation after sorting.
    pub median: f64,
    /// Largest observation.
    pub max: f64,
}

/// All four aggregate families over one record list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregates {
    /// Win-rate rows (baseline-kind first-appearance order, then app).
    pub win_rates: Vec<WinRateRow>,
    /// Pareto rows (app first-appearance order, enumeration order
    /// within an app).
    pub pareto: Vec<ParetoRow>,
    /// Best-design rows (app first-appearance order).
    pub best: Vec<BestRow>,
    /// Spread rows (scenario × app first-appearance order; metrics in
    /// `power_mw`, `gamma`, `tm_seconds` order within a group).
    pub spread: Vec<SpreadRow>,
}

impl Aggregates {
    /// Computes every aggregate from a record list. Pure and
    /// deterministic: equal record lists produce equal aggregates.
    #[must_use]
    pub fn compute(records: &[UnitRecord]) -> Aggregates {
        Aggregates {
            win_rates: win_rates(records),
            pareto: pareto(records),
            best: best_designs(records),
            spread: spread(records),
        }
    }
}

/// A record that can sit on a (P, Γ) plot: completed, with both metrics
/// present and finite.
fn plottable(r: &UnitRecord) -> Option<(f64, f64)> {
    if r.status != "ok" {
        return None;
    }
    match (r.power_mw, r.gamma) {
        (Some(p), Some(g)) if p.is_finite() && g.is_finite() => Some((p, g)),
        _ => None,
    }
}

fn config_key(r: &UnitRecord) -> (&str, usize, usize) {
    (r.app.as_str(), r.cores, r.levels)
}

fn win_rates(records: &[UnitRecord]) -> Vec<WinRateRow> {
    let proposed: Vec<&UnitRecord> = records
        .iter()
        .filter(|r| r.kind == "optimize" && plottable(r).is_some())
        .collect();
    let baselines: Vec<&UnitRecord> = records
        .iter()
        .filter(|r| r.kind.starts_with("baseline:") && plottable(r).is_some())
        .collect();
    let mut rows: Vec<WinRateRow> = Vec::new();
    for (bi, b) in baselines.iter().enumerate() {
        // Rows appear in (baseline kind, app) first-appearance order even
        // when a baseline finds no partner, so the table shape never
        // depends on which side of a comparison completed.
        let pos = rows
            .iter()
            .position(|row| row.baseline_kind == b.kind && row.app == b.app);
        let row = match pos {
            Some(i) => &mut rows[i],
            None => {
                rows.push(WinRateRow {
                    baseline_kind: b.kind.clone(),
                    app: b.app.clone(),
                    tally: WinTally::default(),
                });
                rows.last_mut().expect("just pushed")
            }
        };
        // Positional pairing: the k-th baseline of this kind within an
        // (app, cores, levels) configuration compares against the k-th
        // proposed record of the same configuration (enumeration order
        // on both sides — multi-seed scenarios pair seed-for-seed).
        let ordinal = baselines[..bi]
            .iter()
            .filter(|x| x.kind == b.kind && config_key(x) == config_key(b))
            .count();
        let partner = proposed
            .iter()
            .filter(|p| config_key(p) == config_key(b))
            .nth(ordinal);
        if let Some(p) = partner {
            let (_, bg) = plottable(b).expect("filtered plottable");
            let (_, pg) = plottable(p).expect("filtered plottable");
            row.tally.observe(bg, pg);
        }
    }
    rows
}

fn apps_in_order<'a>(plot: &[(&'a UnitRecord, f64, f64)]) -> Vec<&'a str> {
    let mut apps: Vec<&str> = Vec::new();
    for (r, _, _) in plot {
        if !apps.contains(&r.app.as_str()) {
            apps.push(r.app.as_str());
        }
    }
    apps
}

fn pareto(records: &[UnitRecord]) -> Vec<ParetoRow> {
    let plot: Vec<(&UnitRecord, f64, f64)> = records
        .iter()
        .filter_map(|r| plottable(r).map(|(p, g)| (r, p, g)))
        .collect();
    let mut rows = Vec::with_capacity(plot.len());
    for app in apps_in_order(&plot) {
        let group: Vec<&(&UnitRecord, f64, f64)> =
            plot.iter().filter(|(r, _, _)| r.app == app).collect();
        for &&(r, p, g) in &group {
            // First (lowest-index) strict dominator, if any. Designs at
            // identical (P, Γ) do not dominate each other: both stay on
            // the front.
            let dominated_by = group
                .iter()
                .find(|(o, op, og)| {
                    !std::ptr::eq(*o, r) && *op <= p && *og <= g && (*op < p || *og < g)
                })
                .map(|(o, _, _)| o.index);
            rows.push(ParetoRow {
                index: r.index,
                app: r.app.clone(),
                kind: r.kind.clone(),
                power_mw: p,
                gamma: g,
                dominated_by,
            });
        }
    }
    rows
}

fn best_designs(records: &[UnitRecord]) -> Vec<BestRow> {
    let plot: Vec<(&UnitRecord, f64, f64)> = records
        .iter()
        .filter_map(|r| plottable(r).map(|(p, g)| (r, p, g)))
        .collect();
    let mut rows = Vec::new();
    for app in apps_in_order(&plot) {
        let winner = plot
            .iter()
            .filter(|(r, _, _)| r.app == app)
            // Strict `<` keeps the earliest record on a product tie —
            // enumeration order is the deterministic tie-break.
            .reduce(|best, cand| {
                if cand.1 * cand.2 < best.1 * best.2 {
                    cand
                } else {
                    best
                }
            });
        if let Some(&(r, p, g)) = winner {
            rows.push(BestRow {
                app: r.app.clone(),
                index: r.index,
                kind: r.kind.clone(),
                scenario: r.scenario.clone(),
                power_mw: p,
                gamma: g,
                tm_seconds: r.tm_seconds,
                scaling: r.scaling.clone(),
            });
        }
    }
    rows
}

fn spread(records: &[UnitRecord]) -> Vec<SpreadRow> {
    type Get = fn(&UnitRecord) -> Option<f64>;
    let metrics: [(&'static str, Get); 3] = [
        ("power_mw", |r| r.power_mw),
        ("gamma", |r| r.gamma),
        ("tm_seconds", |r| r.tm_seconds),
    ];
    let ok: Vec<&UnitRecord> = records.iter().filter(|r| r.status == "ok").collect();
    let mut groups: Vec<(&str, &str)> = Vec::new();
    for r in &ok {
        let key = (r.scenario.as_str(), r.app.as_str());
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    let mut rows = Vec::new();
    for (scenario, app) in groups {
        for (metric, get) in metrics {
            let mut vals: Vec<f64> = ok
                .iter()
                .filter(|r| r.scenario == scenario && r.app == app)
                .filter_map(|r| get(r))
                .filter(|v| v.is_finite())
                .collect();
            if vals.is_empty() {
                continue;
            }
            vals.sort_by(f64::total_cmp);
            rows.push(SpreadRow {
                scenario: scenario.to_string(),
                app: app.to_string(),
                metric,
                count: vals.len(),
                min: vals[0],
                median: vals[(vals.len() - 1) / 2],
                max: *vals.last().expect("non-empty"),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Renderers — one per sink format, pure functions of the record list.
// ---------------------------------------------------------------------------

fn fmt_human_metric(metric: &str, v: f64) -> String {
    match metric {
        "gamma" => format!("{v:.3e}"),
        "tm_seconds" => format!("{v:.4}"),
        _ => format!("{v:.3}"),
    }
}

fn human_section(out: &mut String, title: &str, header: &[&str], rows: &[Vec<String>]) {
    let _ = writeln!(out, "\n{title}");
    if rows.is_empty() {
        out.push_str("(none)\n");
    } else {
        out.push_str(&ascii_table(header, rows));
    }
}

/// Renders the aggregate sections as aligned human tables (appended
/// after [`crate::sink::human_report`]'s per-unit table).
#[must_use]
pub fn human_aggregates(records: &[UnitRecord]) -> String {
    let a = Aggregates::compute(records);
    let mut out = String::from("\n== campaign aggregates ==\n");
    human_section(
        &mut out,
        "win rate: optimize vs baseline Gamma at matched (app, cores, levels), tolerance +0.1%",
        &["baseline", "app", "wins", "total", "rate"],
        &a.win_rates
            .iter()
            .map(|r| {
                vec![
                    r.baseline_kind.clone(),
                    r.app.clone(),
                    r.tally.wins.to_string(),
                    r.tally.total.to_string(),
                    format!("{:.1}%", r.tally.rate() * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    human_section(
        &mut out,
        "Pareto front over (P, Gamma) per app ('*' = non-dominated)",
        &[
            "app",
            "#",
            "kind",
            "P (mW)",
            "Gamma",
            "front",
            "dominated by",
        ],
        &a.pareto
            .iter()
            .map(|r| {
                vec![
                    r.app.clone(),
                    r.index.to_string(),
                    r.kind.clone(),
                    format!("{:.3}", r.power_mw),
                    format!("{:.3e}", r.gamma),
                    if r.dominated_by.is_none() { "*" } else { "-" }.to_string(),
                    r.dominated_by
                        .map_or_else(|| "-".to_string(), |i| i.to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    human_section(
        &mut out,
        "best design per app (min P*Gamma)",
        &[
            "app", "#", "kind", "scenario", "P (mW)", "Gamma", "TM (s)", "scaling",
        ],
        &a.best
            .iter()
            .map(|r| {
                vec![
                    r.app.clone(),
                    r.index.to_string(),
                    r.kind.clone(),
                    r.scenario.clone(),
                    format!("{:.3}", r.power_mw),
                    format!("{:.3e}", r.gamma),
                    r.tm_seconds
                        .filter(|v| v.is_finite())
                        .map_or_else(|| "-".into(), |v| format!("{v:.4}")),
                    r.scaling.clone().unwrap_or_else(|| "-".into()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    human_section(
        &mut out,
        "cross-seed spread per scenario x app (min/median/max)",
        &["scenario", "app", "metric", "n", "min", "median", "max"],
        &a.spread
            .iter()
            .map(|r| {
                vec![
                    r.scenario.clone(),
                    r.app.clone(),
                    r.metric.to_string(),
                    r.count.to_string(),
                    fmt_human_metric(r.metric, r.min),
                    fmt_human_metric(r.metric, r.median),
                    fmt_human_metric(r.metric, r.max),
                ]
            })
            .collect::<Vec<_>>(),
    );
    out
}

fn csv_f64(v: f64) -> String {
    // Aggregate metrics are finite by construction; rendered in Rust's
    // shortest round-trip form like the per-unit rows.
    format!("{v}")
}

/// Renders the aggregate sections as CSV (appended after
/// [`crate::sink::csv_report`]). Each section carries its own header
/// line whose first column is the literal `section`; data rows name
/// their section in that column, so a reader can split the stream
/// without counting lines.
#[must_use]
pub fn csv_aggregates(records: &[UnitRecord]) -> String {
    let a = Aggregates::compute(records);
    let mut out = String::new();
    out.push_str("section,baseline,app,wins,total,rate\n");
    for r in &a.win_rates {
        let _ = writeln!(
            out,
            "win_rate,{},{},{},{},{}",
            csv_escape(&r.baseline_kind),
            csv_escape(&r.app),
            r.tally.wins,
            r.tally.total,
            csv_f64(r.tally.rate())
        );
    }
    out.push_str("section,app,index,kind,power_mw,gamma,dominated_by\n");
    for r in &a.pareto {
        let _ = writeln!(
            out,
            "pareto,{},{},{},{},{},{}",
            csv_escape(&r.app),
            r.index,
            csv_escape(&r.kind),
            csv_f64(r.power_mw),
            csv_f64(r.gamma),
            r.dominated_by.map_or_else(String::new, |i| i.to_string())
        );
    }
    out.push_str("section,app,index,kind,scenario,power_mw,gamma,tm_seconds,scaling\n");
    for r in &a.best {
        let _ = writeln!(
            out,
            "best,{},{},{},{},{},{},{},{}",
            csv_escape(&r.app),
            r.index,
            csv_escape(&r.kind),
            csv_escape(&r.scenario),
            csv_f64(r.power_mw),
            csv_f64(r.gamma),
            r.tm_seconds
                .filter(|v| v.is_finite())
                .map_or_else(String::new, csv_f64),
            csv_escape(r.scaling.as_deref().unwrap_or(""))
        );
    }
    out.push_str("section,scenario,app,metric,count,min,median,max\n");
    for r in &a.spread {
        let _ = writeln!(
            out,
            "spread,{},{},{},{},{},{},{}",
            csv_escape(&r.scenario),
            csv_escape(&r.app),
            r.metric,
            r.count,
            csv_f64(r.min),
            csv_f64(r.median),
            csv_f64(r.max)
        );
    }
    out
}

/// Renders the aggregate sections as JSONL (appended after
/// [`crate::sink::jsonl_report`]): one object per aggregate row, each
/// with a leading `"aggregate"` discriminator key — per-unit lines lead
/// with `"index"`, so the two row families never collide.
#[must_use]
pub fn jsonl_aggregates(records: &[UnitRecord]) -> String {
    let a = Aggregates::compute(records);
    let mut out = String::new();
    for r in &a.win_rates {
        let _ = write!(
            out,
            "{{\"aggregate\":\"win_rate\",\"baseline\":\"{}\",\"app\":\"{}\",\"wins\":{},\"total\":{}",
            json_escape(&r.baseline_kind),
            json_escape(&r.app),
            r.tally.wins,
            r.tally.total,
        );
        json_field_f64(&mut out, "rate", Some(r.tally.rate()));
        out.push_str("}\n");
    }
    for r in &a.pareto {
        let _ = write!(
            out,
            "{{\"aggregate\":\"pareto\",\"app\":\"{}\",\"index\":{},\"kind\":\"{}\"",
            json_escape(&r.app),
            r.index,
            json_escape(&r.kind),
        );
        json_field_f64(&mut out, "power_mw", Some(r.power_mw));
        json_field_f64(&mut out, "gamma", Some(r.gamma));
        match r.dominated_by {
            Some(i) => {
                let _ = write!(out, ",\"dominated_by\":{i}");
            }
            None => out.push_str(",\"dominated_by\":null"),
        }
        out.push_str("}\n");
    }
    for r in &a.best {
        let _ = write!(
            out,
            "{{\"aggregate\":\"best\",\"app\":\"{}\",\"index\":{},\"kind\":\"{}\",\"scenario\":\"{}\"",
            json_escape(&r.app),
            r.index,
            json_escape(&r.kind),
            json_escape(&r.scenario),
        );
        json_field_f64(&mut out, "power_mw", Some(r.power_mw));
        json_field_f64(&mut out, "gamma", Some(r.gamma));
        json_field_f64(&mut out, "tm_seconds", r.tm_seconds);
        match &r.scaling {
            Some(s) => {
                let _ = write!(out, ",\"scaling\":\"{}\"", json_escape(s));
            }
            None => out.push_str(",\"scaling\":null"),
        }
        out.push_str("}\n");
    }
    for r in &a.spread {
        let _ = write!(
            out,
            "{{\"aggregate\":\"spread\",\"scenario\":\"{}\",\"app\":\"{}\",\"metric\":\"{}\",\"count\":{}",
            json_escape(&r.scenario),
            json_escape(&r.app),
            r.metric,
            r.count,
        );
        json_field_f64(&mut out, "min", Some(r.min));
        json_field_f64(&mut out, "median", Some(r.median));
        json_field_f64(&mut out, "max", Some(r.max));
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, scenario: &str, kind: &str, app: &str) -> UnitRecord {
        UnitRecord {
            index,
            scenario: scenario.into(),
            kind: kind.into(),
            app: app.into(),
            cores: 4,
            levels: 3,
            seed: index as u64,
            status: "ok",
            power_mw: Some(5.0),
            gamma: Some(100.0),
            tm_seconds: Some(10.0),
            r_kbits: None,
            evaluations: Some(100),
            scaling: Some("(2,2,2,2)".into()),
            mapping: None,
            experienced_seus: None,
        }
    }

    #[test]
    fn win_rate_pairs_by_configuration_and_applies_the_tolerance() {
        let mut base = record(0, "b", "baseline:tmr", "mpeg2");
        base.gamma = Some(1000.0);
        let mut exactly_on_tolerance = record(1, "p", "optimize", "mpeg2");
        exactly_on_tolerance.gamma = Some(1000.0 * GAMMA_WIN_TOLERANCE);
        let a = Aggregates::compute(&[base.clone(), exactly_on_tolerance]);
        assert_eq!(a.win_rates.len(), 1);
        assert_eq!(a.win_rates[0].tally, WinTally { wins: 1, total: 1 });

        let mut just_above = record(1, "p", "optimize", "mpeg2");
        just_above.gamma = Some(1000.0 * GAMMA_WIN_TOLERANCE + 1.0);
        let a = Aggregates::compute(&[base.clone(), just_above]);
        assert_eq!(a.win_rates[0].tally, WinTally { wins: 0, total: 1 });

        // A different core count never pairs.
        let mut other_cores = record(1, "p", "optimize", "mpeg2");
        other_cores.cores = 2;
        let a = Aggregates::compute(&[base, other_cores]);
        assert_eq!(a.win_rates[0].tally, WinTally { wins: 0, total: 0 });
    }

    #[test]
    fn win_rate_pairs_multi_seed_groups_positionally() {
        // Two baselines and two proposed runs of the same configuration:
        // k-th pairs with k-th in enumeration order.
        let mut b0 = record(0, "b", "baseline:tmr", "x");
        b0.gamma = Some(100.0);
        let mut b1 = record(1, "b", "baseline:tmr", "x");
        b1.gamma = Some(200.0);
        let mut p0 = record(2, "p", "optimize", "x");
        p0.gamma = Some(150.0); // loses vs b0 (100), would win vs b1
        let mut p1 = record(3, "p", "optimize", "x");
        p1.gamma = Some(150.0); // wins vs b1 (200)
        let a = Aggregates::compute(&[b0, b1, p0, p1]);
        assert_eq!(a.win_rates[0].tally, WinTally { wins: 1, total: 2 });
    }

    #[test]
    fn pareto_marks_dominated_rows_and_keeps_ties_on_the_front() {
        let mut a0 = record(0, "s", "optimize", "x");
        a0.power_mw = Some(1.0);
        a0.gamma = Some(10.0);
        let mut a1 = record(1, "s", "optimize", "x");
        a1.power_mw = Some(2.0);
        a1.gamma = Some(10.0); // dominated by a0 (equal gamma, worse P)
        let mut a2 = record(2, "s", "optimize", "x");
        a2.power_mw = Some(1.0);
        a2.gamma = Some(10.0); // identical to a0: both on the front
        let mut a3 = record(3, "s", "optimize", "x");
        a3.power_mw = Some(0.5);
        a3.gamma = Some(20.0); // trade-off: on the front
        let agg = Aggregates::compute(&[a0, a1, a2, a3]);
        let by_index: Vec<(usize, Option<usize>)> = agg
            .pareto
            .iter()
            .map(|r| (r.index, r.dominated_by))
            .collect();
        assert_eq!(
            by_index,
            vec![(0, None), (1, Some(0)), (2, None), (3, None)]
        );
    }

    #[test]
    fn best_breaks_product_ties_toward_the_earliest_index() {
        let mut a0 = record(0, "s", "optimize", "x");
        a0.power_mw = Some(2.0);
        a0.gamma = Some(5.0); // product 10
        let mut a1 = record(1, "s", "optimize", "x");
        a1.power_mw = Some(5.0);
        a1.gamma = Some(2.0); // product 10 — tie, index 0 wins
        let agg = Aggregates::compute(&[a0, a1]);
        assert_eq!(agg.best.len(), 1);
        assert_eq!(agg.best[0].index, 0);
    }

    #[test]
    fn spread_uses_the_lower_median_and_skips_non_finite() {
        let mut rows = Vec::new();
        for (i, p) in [3.0, 1.0, 2.0, f64::NAN].iter().enumerate() {
            let mut r = record(i, "s", "optimize", "x");
            r.power_mw = Some(*p);
            r.gamma = None;
            r.tm_seconds = None;
            rows.push(r);
        }
        let agg = Aggregates::compute(&rows);
        // gamma/tm rows are absent (no finite values); power spans 3.
        assert_eq!(agg.spread.len(), 1);
        let s = &agg.spread[0];
        assert_eq!((s.metric, s.count), ("power_mw", 3));
        assert_eq!((s.min, s.median, s.max), (1.0, 2.0, 3.0));
    }

    #[test]
    fn non_ok_and_non_finite_records_never_reach_the_plots() {
        let mut infeasible = record(0, "s", "optimize", "x");
        infeasible.status = "infeasible";
        infeasible.power_mw = None;
        infeasible.gamma = None;
        let mut poisoned = record(1, "s", "optimize", "x");
        poisoned.gamma = Some(f64::INFINITY);
        let agg = Aggregates::compute(&[infeasible, poisoned]);
        assert!(agg.pareto.is_empty());
        assert!(agg.best.is_empty());
    }

    #[test]
    fn renderers_are_deterministic_and_well_shaped() {
        let records = vec![
            record(0, "exp3", "baseline:tmr", "mpeg2"),
            record(1, "proposed", "optimize", "mpeg2"),
        ];
        let human = human_aggregates(&records);
        assert!(human.contains("== campaign aggregates =="));
        assert!(human.contains("baseline:tmr"));
        assert_eq!(human, human_aggregates(&records));

        let csv = csv_aggregates(&records);
        assert!(csv.starts_with("section,baseline,app,wins,total,rate\n"));
        assert!(csv.contains("win_rate,baseline:tmr,mpeg2,1,1,1\n"));

        let jsonl = jsonl_aggregates(&records);
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"aggregate\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        // Empty input renders empty tables, not a panic.
        let empty = human_aggregates(&[]);
        assert!(empty.contains("(none)"));
        assert_eq!(jsonl_aggregates(&[]), "");
    }
}
