//! A tiny bump arena for expansion-time temporaries.
//!
//! [`Campaign::expand`](crate::Campaign::expand) walks a multi-axis grid
//! and needs short-lived scratch collections (the per-iteration seed axis)
//! at every innermost step. Cloning a `Vec` there puts one allocator
//! round-trip on every grid point of every campaign; the arena instead
//! bump-allocates into one backing `Vec` whose capacity survives
//! [`Arena::reset`], so after the first iteration the expansion loop runs
//! allocation-free.
//!
//! The design is deliberately the safe, handle-based flavour: allocation
//! returns a [`Span`] (a `Copy` index pair), and [`Arena::get`] turns it
//! back into a slice. No `unsafe`, no lifetime entanglement with the
//! arena's mutation — the borrow checker only sees plain index accesses.

/// A handle to a slice previously allocated in an [`Arena`].
///
/// Spans are plain index pairs: `Copy`, storable in temporaries, and only
/// meaningful for the arena (and reset epoch) that issued them. Resolving
/// a span after [`Arena::reset`] is a logic error the arena catches by
/// range (panicking like an out-of-bounds index) rather than by returning
/// stale data silently: `reset` truncates the backing storage, so every
/// pre-reset span points past the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start: usize,
    len: usize,
}

impl Span {
    /// Number of elements the span covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the span covers no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A bump allocator over a single backing `Vec<T>`.
///
/// See the [module docs](self) for the intended use.
#[derive(Debug, Clone, Default)]
pub struct Arena<T> {
    storage: Vec<T>,
}

impl<T> Arena<T> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Arena {
            storage: Vec::new(),
        }
    }

    /// An empty arena with room for `capacity` elements before the first
    /// grow.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            storage: Vec::with_capacity(capacity),
        }
    }

    /// Copies `items` into the arena, returning a handle to the copy.
    pub fn alloc_slice(&mut self, items: &[T]) -> Span
    where
        T: Clone,
    {
        self.alloc_from(items.iter().cloned())
    }

    /// Collects an iterator into the arena, returning a handle to the run.
    pub fn alloc_from(&mut self, items: impl IntoIterator<Item = T>) -> Span {
        let start = self.storage.len();
        self.storage.extend(items);
        Span {
            start,
            len: self.storage.len() - start,
        }
    }

    /// Resolves a span issued by this arena since the last reset.
    ///
    /// # Panics
    ///
    /// Panics when `span` outlived a [`reset`](Self::reset) (its range no
    /// longer lies inside the storage).
    #[must_use]
    pub fn get(&self, span: Span) -> &[T] {
        &self.storage[span.start..span.start + span.len]
    }

    /// Discards every allocation while keeping the backing capacity, so
    /// the next fill cycle is allocation-free up to the high-water mark.
    pub fn reset(&mut self) {
        self.storage.clear();
    }

    /// Elements currently allocated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// True when nothing is currently allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Capacity of the backing storage (survives [`reset`](Self::reset)).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.storage.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get_round_trip() {
        let mut arena = Arena::new();
        let a = arena.alloc_slice(&[1u64, 2, 3]);
        let b = arena.alloc_from(4..=5);
        assert_eq!(arena.get(a), &[1, 2, 3]);
        assert_eq!(arena.get(b), &[4, 5]);
        assert_eq!(a.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(arena.len(), 5);
    }

    #[test]
    fn reset_keeps_capacity_and_invalidates_spans() {
        let mut arena = Arena::with_capacity(8);
        let span = arena.alloc_slice(&[7u64; 8]);
        let cap = arena.capacity();
        arena.reset();
        assert!(arena.is_empty());
        assert_eq!(arena.capacity(), cap);
        // A span from before the reset is out of range, not stale data.
        assert!(std::panic::catch_unwind(|| arena.get(span).len()).is_err());
    }

    #[test]
    fn refill_after_reset_does_not_grow() {
        let mut arena = Arena::new();
        arena.alloc_slice(&[0u8; 16]);
        let cap = arena.capacity();
        for _ in 0..100 {
            arena.reset();
            arena.alloc_slice(&[1u8; 16]);
        }
        assert_eq!(arena.capacity(), cap);
    }

    #[test]
    fn empty_allocations_are_fine() {
        let mut arena: Arena<u64> = Arena::new();
        let span = arena.alloc_slice(&[]);
        assert!(span.is_empty());
        assert_eq!(arena.get(span), &[] as &[u64]);
    }
}
