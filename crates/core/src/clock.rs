//! Injectable time sources for wall-clock-limited search budgets.
//!
//! The paper's literal protocol time-boxes each per-scaling search ("we
//! impose a time-limit of 40 minutes"). A hard-coded `Instant::now()`
//! makes that budget untestable without real sleeps and nondeterministic
//! under CI load, so the searches take their notion of elapsed time from a
//! [`Clock`]:
//!
//! * [`WallClock`] — real monotonic time, the production default.
//! * [`StepClock`] — advances a fixed step per query; a search that checks
//!   the clock once per evaluation therefore times out after an exact,
//!   reproducible number of evaluations, on any machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic source of elapsed time since some fixed origin.
///
/// `Sync` so a clock can be shared with scoped worker threads.
pub trait Clock: Sync {
    /// Time elapsed since the clock's origin.
    fn elapsed(&self) -> Duration;
}

/// Real wall-clock time since [`WallClock::start`].
#[derive(Debug)]
pub struct WallClock(Instant);

impl WallClock {
    /// Starts a clock at the current instant.
    #[must_use]
    pub fn start() -> Self {
        WallClock(Instant::now())
    }
}

impl Clock for WallClock {
    fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// A deterministic clock that advances by a fixed `step` every time it is
/// queried. With a search that consults the clock once per candidate, a
/// `time_limit` of `step × k` expires after exactly `k` queries —
/// deterministic regardless of machine speed or scheduler noise.
#[derive(Debug)]
pub struct StepClock {
    step: Duration,
    queries: AtomicU64,
}

impl StepClock {
    /// Creates a clock that advances `step` per [`Clock::elapsed`] query.
    #[must_use]
    pub fn new(step: Duration) -> Self {
        StepClock {
            step,
            queries: AtomicU64::new(0),
        }
    }

    /// Number of queries served so far.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

impl Clock for StepClock {
    fn elapsed(&self) -> Duration {
        let n = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
        self.step
            .saturating_mul(u32::try_from(n).unwrap_or(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::start();
        let a = c.elapsed();
        let b = c.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn step_clock_advances_per_query() {
        let c = StepClock::new(Duration::from_millis(10));
        assert_eq!(c.elapsed(), Duration::from_millis(10));
        assert_eq!(c.elapsed(), Duration::from_millis(20));
        assert_eq!(c.queries(), 2);
    }
}
