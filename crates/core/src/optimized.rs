//! `OptimizedMapping` — the search-based mapping refinement of Fig. 7.
//!
//! Starting from the initial soft error-aware mapping, the search list
//! schedules the current mapping (step A), then repeatedly generates
//! neighbouring task movements (step C), list schedules each candidate
//! (step D) and adopts it as the new best when it lowers the number of SEUs
//! experienced while meeting the real-time constraint (steps E–F), until
//! the search budget expires (step B). Each neighbourhood move relocates
//! one task or swaps two — "each iteration generating maximum two task
//! movements" — the neighbourhood is `O(N·C + N²)` moves and the overall
//! search is the paper's `O(N³)`.
//!
//! Movements are accepted under a budget-matched annealing schedule on
//! the deadline-penalized `Γ` score (improvements always; regressions
//! with probability `exp(−Δ/T)` on the relative delta, geometric
//! cooling) — the same metaheuristic strength the soft error-unaware
//! baselines get, so comparisons between the flows isolate the paper's
//! actual variable: the mapping *objective*, soft error-aware or not.
//! Greedy full-neighbourhood descent (the literal Fig. 7 loop) spends an
//! entire `O(N²)` scan per step and starves small budgets; one
//! evaluation per generated movement keeps the cost per accepted move
//! `O(1)`.
//!
//! The best design seen is tracked separately under the Fig. 7 E–F
//! ordering — feasible beats infeasible, feasible points compare on `Γ`,
//! infeasible ones on `TM` — and is the one returned, so the relaxed
//! acceptance never worsens the outcome and a never-feasible run still
//! returns its tightest design.
//!
//! # Allocation-free engine
//!
//! The engine underneath, [`optimized_mapping_scratch`], performs **zero
//! steady-state heap allocation**: candidates are produced by applying a
//! move in place and undone via the inverse [`Move`] when rejected
//! (never by cloning the mapping), moves are drawn by index through
//! [`Mapping::nth_neighbourhood_move`] (never by materializing a
//! `Vec<Move>`), evaluation goes through the delta-based
//! [`IncrementalEvaluator`] (accepting a move commits its cached
//! schedule; rejecting discards it), and scores travel as the `Copy`
//! [`EvalSummary`]. Its decision sequence — RNG draws, acceptance tests,
//! best tracking — is identical to the original clone-per-candidate
//! implementation, so it returns the same design for the same seed, just
//! faster; `SEA_INCREMENTAL=0` routes evaluation through the full
//! scratch path for end-to-end diffing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sea_arch::ScalingVector;
use sea_sched::metrics::{EvalContext, EvalSummary, MappingEvaluation};
use sea_sched::{IncrementalEvaluator, Mapping, Move};

use crate::clock::{Clock, WallClock};
use crate::OptError;

/// Search budget for one `OptimizedMapping` run.
///
/// The primary budget is the deterministic evaluation count; an optional
/// wall-clock limit mirrors the paper's literal protocol ("we impose a
/// time-limit of 40 minutes to search the design space for each voltage
/// scaling") for users who prefer time-boxed runs. Elapsed time is read
/// from an injectable [`Clock`], so time-boxed budgets are testable
/// without real sleeps (see [`crate::clock::StepClock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Maximum number of candidate evaluations (list schedules).
    pub max_evaluations: usize,
    /// Post-cooldown patience: once the annealing schedule has cooled
    /// (temperature ≤ 2 % of initial), stop after
    /// `(max_stale_sweeps + 1) × |neighbourhood|` evaluated movements
    /// without a new best design. Early high-temperature exploration is
    /// never counted. This is a *secondary* bound: the schedule only
    /// cools in the final ~15 % of `max_evaluations`, so on large
    /// neighbourhoods the evaluation budget usually runs out first and
    /// this cap binds mainly for small problems or generous budgets.
    pub max_stale_sweeps: usize,
    /// Optional wall-clock cap per search (checked between evaluations).
    pub time_limit: Option<std::time::Duration>,
}

impl SearchBudget {
    /// A small budget for unit tests and examples.
    #[must_use]
    pub fn fast() -> Self {
        SearchBudget {
            max_evaluations: 2_000,
            max_stale_sweeps: 2,
            time_limit: None,
        }
    }

    /// The default experiment budget (a deterministic stand-in for the
    /// paper's 40-minute wall-clock limit; results stop improving well
    /// before it on the published workloads).
    #[must_use]
    pub fn thorough() -> Self {
        SearchBudget {
            max_evaluations: 60_000,
            max_stale_sweeps: 6,
            time_limit: None,
        }
    }

    /// Adds a wall-clock cap (non-consuming builder).
    #[must_use]
    pub fn with_time_limit(mut self, limit: std::time::Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// True if either budget dimension is exhausted. The clock is only
    /// queried when a time limit is set.
    #[must_use]
    pub fn exhausted(&self, evaluations: usize, clock: &dyn Clock) -> bool {
        evaluations >= self.max_evaluations
            || self
                .time_limit
                .is_some_and(|limit| clock.elapsed() >= limit)
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::thorough()
    }
}

/// Outcome of one `OptimizedMapping` search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Evaluation of the best mapping.
    pub evaluation: MappingEvaluation,
    /// Candidate evaluations spent.
    pub evaluations: usize,
    /// True if the best mapping meets the deadline.
    pub feasible: bool,
}

/// Runs the Fig. 7 neighbourhood search from `initial`.
///
/// Convenience wrapper over [`optimized_mapping_scratch`] that builds a
/// one-shot [`IncrementalEvaluator`] and uses the real [`WallClock`].
///
/// # Errors
///
/// Propagates evaluation errors ([`OptError::Sched`]).
pub fn optimized_mapping(
    ctx: &EvalContext<'_>,
    scaling: &ScalingVector,
    initial: Mapping,
    budget: SearchBudget,
    seed: u64,
) -> Result<SearchOutcome, OptError> {
    let mut ev = IncrementalEvaluator::new(ctx.clone());
    let initial_summary = ev.evaluate_fresh(&initial, scaling)?;
    optimized_mapping_scratch(
        &mut ev,
        scaling,
        initial,
        initial_summary,
        budget,
        seed,
        &WallClock::start(),
    )
}

/// [`optimized_mapping`] for callers that already evaluated the starting
/// mapping (e.g. while choosing between warm starts) — the evaluation is
/// reused instead of being recomputed, and is not charged to the budget
/// again.
///
/// # Errors
///
/// Propagates evaluation errors ([`OptError::Sched`]).
pub fn optimized_mapping_from(
    ctx: &EvalContext<'_>,
    scaling: &ScalingVector,
    initial: Mapping,
    initial_eval: MappingEvaluation,
    budget: SearchBudget,
    seed: u64,
) -> Result<SearchOutcome, OptError> {
    let mut ev = IncrementalEvaluator::new(ctx.clone());
    optimized_mapping_scratch(
        &mut ev,
        scaling,
        initial,
        initial_eval.summary(),
        budget,
        seed,
        &WallClock::start(),
    )
}

/// The allocation-free search engine (see the module docs). `ev` supplies
/// the reusable scratch buffers and committed-schedule cache and is
/// typically shared across the scalings of one enumeration chunk;
/// `initial_summary` must be an evaluation of `initial` under `scaling`
/// (it counts as the one initial evaluation; the priming pass that seeds
/// the incremental cache is off-budget and bitwise-identical to it).
///
/// # Errors
///
/// Propagates evaluation errors ([`OptError::Sched`]).
#[allow(clippy::too_many_arguments)]
pub fn optimized_mapping_scratch(
    ev: &mut IncrementalEvaluator<'_>,
    scaling: &ScalingVector,
    initial: Mapping,
    initial_summary: EvalSummary,
    budget: SearchBudget,
    seed: u64,
    clock: &dyn Clock,
) -> Result<SearchOutcome, OptError> {
    let require_all_cores = ev.ctx().app().graph().len() >= ev.ctx().arch().n_cores();
    let deadline = ev.ctx().app().deadline_s();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluations = 1usize; // the initial evaluation

    let mut current = initial;
    // Seed the incremental cache with the starting design; the primed
    // summary is bitwise-identical to `initial_summary`, so reusing the
    // caller's value keeps the decision sequence byte-for-byte stable.
    let primed = ev.prime(&current, scaling)?;
    debug_assert!(
        sea_sched::summaries_bitwise_eq(&primed, &initial_summary),
        "caller-supplied initial summary diverges from the evaluator: {initial_summary:?} vs {primed:?}"
    );
    let mut current_summary = initial_summary;

    // `best` tracks the incumbent under the search ordering: feasible
    // beats infeasible, feasible points compare on Γ, infeasible points on
    // TM — so even a never-feasible run returns its tightest design.
    let mut best = current.clone();
    let mut best_summary = current_summary;

    let mut current_score = penalized_gamma(&current_summary, deadline);

    // Annealing schedule sized to the evaluation budget: the temperature
    // decays geometrically to 1 % of its initial value by the time the
    // budget runs out (the same schedule `sea_baselines::SaConfig` derives
    // from the same budget, so the two flows stay metaheuristic-matched).
    const INITIAL_TEMPERATURE: f64 = 0.1;
    let mut temperature = INITIAL_TEMPERATURE;
    let cooling = geometric_cooling(budget.max_evaluations);
    // `max_stale_sweeps` bounds how long the *converged* search may go
    // without improving `best`, measured in neighbourhood-sized batches of
    // movements (mirroring its meaning under sweep-based descent). The
    // counter only runs once the schedule has cooled — counting the early
    // high-temperature walk, where new bests are rare by design, would cut
    // the anneal off before its exploitation phase.
    let cold = INITIAL_TEMPERATURE * 0.02;
    let mut since_best = 0usize;
    let stale_limit = |n_moves: usize| {
        budget
            .max_stale_sweeps
            .saturating_add(1)
            .saturating_mul(n_moves.max(1))
    };

    // Per-core occupancy, kept in sync with `current` so both the
    // all-cores-stay-occupied validity check and the neighbourhood size
    // are O(C) per proposal/acceptance.
    let mut counts: Vec<usize> = Vec::new();
    current.count_per_core_into(&mut counts);
    let n_tasks = current.n_tasks();
    let mut n_moves = neighbourhood_len_from_counts(n_tasks, &counts);
    debug_assert_eq!(n_moves, current.neighbourhood_len());

    let mut consecutive_skips = 0usize;
    while !budget.exhausted(evaluations, clock) && n_moves > 0 && since_best <= stale_limit(n_moves)
    {
        let mv = current
            .nth_neighbourhood_move(rng.gen_range(0..n_moves))
            .expect("index drawn within the neighbourhood");
        // Structurally-invalid moves consume no evaluation budget, so
        // they must not advance the schedule either: cooling (and stale
        // counting) on skips would quench the anneal with budget unspent
        // on workloads where many relocations would empty a core. The
        // skip cap guards the degenerate all-invalid neighbourhood, which
        // would otherwise spin without ever touching the budget.
        if require_all_cores && !move_keeps_all_cores(&counts, &current, mv) {
            consecutive_skips += 1;
            if consecutive_skips > n_moves.saturating_mul(50) {
                break;
            }
            continue;
        }
        consecutive_skips = 0;
        let inverse = apply_counted(&mut current, &mut counts, mv);
        let summary = ev.evaluate_move(&current, scaling, mv)?;
        evaluations += 1;
        let score = penalized_gamma(&summary, deadline);

        let accept = if score <= current_score {
            true
        } else {
            let delta = (score - current_score) / current_score.abs().max(f64::MIN_POSITIVE);
            rng.gen_range(0.0..1.0f64) < (-delta / temperature.max(1e-12)).exp()
        };
        if accept {
            ev.accept();
            current_summary = summary;
            current_score = score;
            n_moves = neighbourhood_len_from_counts(n_tasks, &counts);
            debug_assert_eq!(n_moves, current.neighbourhood_len());
            if better(&current_summary, &best_summary, deadline) {
                best.clone_from(&current);
                best_summary = current_summary;
                since_best = 0;
            } else if temperature <= cold {
                since_best += 1;
            }
        } else {
            ev.reject();
            apply_counted(&mut current, &mut counts, inverse);
            if temperature <= cold {
                since_best += 1;
            }
        }
        temperature *= cooling;
    }

    // One off-budget full evaluation of the (already-evaluated) best
    // design materializes the per-core breakdown for the caller.
    let evaluation = ev.evaluate_full(&best, scaling)?;
    let feasible = evaluation.meets_deadline;
    Ok(SearchOutcome {
        mapping: best,
        evaluation,
        evaluations,
        feasible,
    })
}

/// Would `mv` leave every core occupied? Exactly
/// `current.with_move(mv).uses_all_cores()`, computed in O(C) from the
/// occupancy cache (`counts` as maintained by [`apply_counted`], seeded
/// from [`Mapping::count_per_core_into`]) instead of cloning the mapping.
/// Shared with `sea_baselines`' annealer, which runs the same in-place
/// proposal loop.
#[must_use]
pub fn move_keeps_all_cores(counts: &[usize], current: &Mapping, mv: Move) -> bool {
    match mv {
        // The neighbourhood only contains cross-core swaps, which never
        // change per-core occupancy.
        Move::Swap { .. } => counts.iter().all(|&k| k > 0),
        Move::Relocate { task, to } => {
            let from = current.core_of(task).index();
            counts.iter().enumerate().all(|(c, &k)| {
                let k = if c == from {
                    k - 1
                } else if c == to.index() {
                    k + 1
                } else {
                    k
                };
                k > 0
            })
        }
    }
}

/// Applies `mv` in place, keeping the occupancy cache in sync; returns the
/// inverse move for backtracking. Shared with `sea_baselines`' annealer.
pub fn apply_counted(mapping: &mut Mapping, counts: &mut [usize], mv: Move) -> Move {
    if let Move::Relocate { task, to } = mv {
        let from = mapping.core_of(task);
        counts[from.index()] -= 1;
        counts[to.index()] += 1;
    }
    mapping.apply(mv)
}

/// `|neighbourhood|` in O(C) from the occupancy cache — equal to
/// [`Mapping::neighbourhood_len`] (cross-core pairs are all pairs minus
/// the same-core ones), without its O(N²) pair scan. Shared with
/// `sea_baselines`' annealer, which maintains the same cache.
#[must_use]
pub fn neighbourhood_len_from_counts(n_tasks: usize, counts: &[usize]) -> usize {
    let pairs = n_tasks * n_tasks.saturating_sub(1) / 2;
    let same_core: usize = counts.iter().map(|&k| k * k.saturating_sub(1) / 2).sum();
    n_tasks * (counts.len() - 1) + pairs - same_core
}

/// Geometric cooling factor that reaches 1 % of the initial temperature
/// after `schedule_len` steps. The length is clamped to `[100, 1_000_000]`:
/// the lower bound keeps tiny budgets from quenching instantly, the upper
/// bound keeps wall-clock-limited budgets (`max_evaluations == usize::MAX`,
/// where `0.01^(1/len)` would round to exactly `1.0`) actually cooling.
/// Shared with `sea_baselines`' annealer so both flows run the same
/// schedule for the same budget.
#[must_use]
pub fn geometric_cooling(schedule_len: usize) -> f64 {
    let len = schedule_len.clamp(100, 1_000_000);
    (0.01f64).powf(1.0 / len as f64)
}

/// Multiplier that ranks deadline-violating designs above every feasible
/// one, ordered by how badly they overshoot — `1.0` for feasible designs.
/// Keeps annealing acceptance gradients usable on both sides of the
/// constraint; shared with `sea_baselines::Objective::penalized_score` so
/// both flows penalize infeasibility identically.
#[must_use]
pub fn deadline_penalty_factor(eval: &EvalSummary, deadline_s: f64) -> f64 {
    if eval.meets_deadline {
        1.0
    } else {
        let overshoot = (eval.tm_seconds - deadline_s).max(0.0) / deadline_s;
        10.0 + overshoot * 100.0
    }
}

/// Deadline-penalized `Γ` score for the annealing acceptance.
fn penalized_gamma(eval: &EvalSummary, deadline_s: f64) -> f64 {
    eval.gamma * deadline_penalty_factor(eval, deadline_s)
}

/// Public form of the search ordering for callers choosing between warm
/// starts: `true` if `a` is a strictly better starting point than `b`.
#[must_use]
pub fn prefer_start(a: &EvalSummary, b: &EvalSummary, deadline: f64) -> bool {
    better(a, b, deadline)
}

/// Search ordering (Fig. 7 steps E–F): infeasible points descend on `TM`;
/// feasible points descend on `Γ`; feasible always beats infeasible.
fn better(candidate: &EvalSummary, incumbent: &EvalSummary, _deadline: f64) -> bool {
    match (candidate.meets_deadline, incumbent.meets_deadline) {
        (true, false) => true,
        (false, true) => false,
        (true, true) => candidate.gamma < incumbent.gamma,
        (false, false) => candidate.tm_seconds < incumbent.tm_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::StepClock;
    use crate::initial::initial_sea_mapping;
    use sea_arch::{Architecture, LevelSet};
    use sea_taskgraph::{fig8, mpeg2};

    #[test]
    fn search_never_worsens_a_feasible_initial_mapping() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let initial_eval = ctx.evaluate(&initial, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 42).unwrap();
        if initial_eval.meets_deadline {
            assert!(out.feasible);
            assert!(out.evaluation.gamma <= initial_eval.gamma);
        }
    }

    #[test]
    fn search_improves_a_deliberately_bad_seed() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![1, 1, 1, 1], &arch).unwrap();
        // Adversarial seed: maximum distribution of the heavy tail tasks.
        let bad = Mapping::from_groups(&[&[0, 4, 8], &[1, 5, 9], &[2, 6, 10], &[3, 7]], 4).unwrap();
        let bad_eval = ctx.evaluate(&bad, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, bad, SearchBudget::fast(), 1).unwrap();
        assert!(out.feasible, "nominal voltage easily meets the deadline");
        assert!(
            out.evaluation.gamma < bad_eval.gamma,
            "search must reduce SEUs: {} -> {}",
            bad_eval.gamma,
            out.evaluation.gamma
        );
    }

    #[test]
    fn fig8_walkthrough_finds_feasible_low_gamma_design() {
        let app = fig8::application();
        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![1, 2, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 7).unwrap();
        // Under our Fig. 8 reconstruction the 75 ms constraint is tight;
        // the search must at least reach the best TM it can and report
        // feasibility honestly.
        assert!(out.evaluations > 0);
        if out.feasible {
            assert!(out.evaluation.tm_seconds <= 0.075 + 1e-12);
        }
    }

    #[test]
    fn all_cores_stay_occupied() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 2, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 3).unwrap();
        assert!(out.mapping.uses_all_cores());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let a = optimized_mapping(&ctx, &s, initial.clone(), SearchBudget::fast(), 5).unwrap();
        let b = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 5).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn reusing_one_evaluator_matches_fresh_evaluators() {
        // The driver shares one Evaluator across the scalings of a chunk;
        // scratch reuse must not leak state between searches.
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s1 = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let s2 = ScalingVector::try_new(vec![1, 1, 2, 2], &arch).unwrap();
        let mut shared = IncrementalEvaluator::new(ctx.clone());
        let clock = WallClock::start();
        let mut run_shared = |s: &ScalingVector, seed| {
            let initial = initial_sea_mapping(&ctx, s).unwrap();
            let summary = shared.evaluate_fresh(&initial, s).unwrap();
            optimized_mapping_scratch(
                &mut shared,
                s,
                initial,
                summary,
                SearchBudget::fast(),
                seed,
                &clock,
            )
            .unwrap()
        };
        let a1 = run_shared(&s1, 9);
        let a2 = run_shared(&s2, 10);
        let fresh = |s: &ScalingVector, seed| {
            let initial = initial_sea_mapping(&ctx, s).unwrap();
            optimized_mapping(&ctx, s, initial, SearchBudget::fast(), seed).unwrap()
        };
        let b1 = fresh(&s1, 9);
        let b2 = fresh(&s2, 10);
        assert_eq!(a1.mapping, b1.mapping);
        assert_eq!(a1.evaluations, b1.evaluations);
        assert_eq!(a2.mapping, b2.mapping);
        assert_eq!(a2.evaluations, b2.evaluations);
    }

    #[test]
    fn time_limit_stops_the_search() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let budget = SearchBudget {
            max_evaluations: usize::MAX,
            max_stale_sweeps: usize::MAX,
            time_limit: Some(std::time::Duration::from_millis(50)),
        };
        let t0 = std::time::Instant::now();
        let out = optimized_mapping(&ctx, &s, initial, budget, 5).unwrap();
        // Generous envelope: the limit is checked between evaluations, and
        // a single evaluation is microseconds.
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        assert!(out.evaluations > 0);
    }

    #[test]
    fn step_clock_makes_time_limited_budgets_deterministic() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let step = std::time::Duration::from_millis(1);
        let budget = SearchBudget {
            max_evaluations: usize::MAX,
            max_stale_sweeps: usize::MAX,
            time_limit: Some(step * 40),
        };
        let run = || {
            let initial = initial_sea_mapping(&ctx, &s).unwrap();
            let mut ev = IncrementalEvaluator::new(ctx.clone());
            let summary = ev.evaluate_fresh(&initial, &s).unwrap();
            let clock = StepClock::new(step);
            optimized_mapping_scratch(&mut ev, &s, initial, summary, budget, 5, &clock).unwrap()
        };
        let a = run();
        let b = run();
        // The clock expires after exactly 40 queries, independent of
        // machine speed: both runs stop at the same evaluation count.
        assert_eq!(a.evaluations, b.evaluations);
        assert!(a.evaluations <= 41);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn budget_caps_evaluations() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let budget = SearchBudget {
            max_evaluations: 50,
            max_stale_sweeps: 99,
            time_limit: None,
        };
        let out = optimized_mapping(&ctx, &s, initial, budget, 5).unwrap();
        assert!(out.evaluations <= 50);
    }
}
