//! `OptimizedMapping` — the search-based mapping refinement of Fig. 7.
//!
//! Starting from the initial soft error-aware mapping, the search list
//! schedules the current mapping (step A), then repeatedly generates
//! neighbouring task movements (step C), list schedules each candidate
//! (step D) and adopts it as the new best when it lowers the number of SEUs
//! experienced while meeting the real-time constraint (steps E–F), until
//! the search budget expires (step B). Each neighbourhood move relocates
//! one task or swaps two — "each iteration generating maximum two task
//! movements" — the neighbourhood is `O(N·C + N²)` moves and the overall
//! search is the paper's `O(N³)`.
//!
//! Movements are accepted under a budget-matched annealing schedule on
//! the deadline-penalized `Γ` score (improvements always; regressions
//! with probability `exp(−Δ/T)` on the relative delta, geometric
//! cooling) — the same metaheuristic strength the soft error-unaware
//! baselines get, so comparisons between the flows isolate the paper's
//! actual variable: the mapping *objective*, soft error-aware or not.
//! Greedy full-neighbourhood descent (the literal Fig. 7 loop) spends an
//! entire `O(N²)` scan per step and starves small budgets; one
//! evaluation per generated movement keeps the cost per accepted move
//! `O(1)`.
//!
//! The best design seen is tracked separately under the Fig. 7 E–F
//! ordering — feasible beats infeasible, feasible points compare on `Γ`,
//! infeasible ones on `TM` — and is the one returned, so the relaxed
//! acceptance never worsens the outcome and a never-feasible run still
//! returns its tightest design.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sea_arch::ScalingVector;
use sea_sched::metrics::{EvalContext, MappingEvaluation};
use sea_sched::{Mapping, Move};

use crate::OptError;

/// Search budget for one `OptimizedMapping` run.
///
/// The primary budget is the deterministic evaluation count; an optional
/// wall-clock limit mirrors the paper's literal protocol ("we impose a
/// time-limit of 40 minutes to search the design space for each voltage
/// scaling") for users who prefer time-boxed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Maximum number of candidate evaluations (list schedules).
    pub max_evaluations: usize,
    /// Post-cooldown patience: once the annealing schedule has cooled
    /// (temperature ≤ 2 % of initial), stop after
    /// `(max_stale_sweeps + 1) × |neighbourhood|` evaluated movements
    /// without a new best design. Early high-temperature exploration is
    /// never counted. This is a *secondary* bound: the schedule only
    /// cools in the final ~15 % of `max_evaluations`, so on large
    /// neighbourhoods the evaluation budget usually runs out first and
    /// this cap binds mainly for small problems or generous budgets.
    pub max_stale_sweeps: usize,
    /// Optional wall-clock cap per search (checked between evaluations).
    pub time_limit: Option<std::time::Duration>,
}

impl SearchBudget {
    /// A small budget for unit tests and examples.
    #[must_use]
    pub fn fast() -> Self {
        SearchBudget {
            max_evaluations: 2_000,
            max_stale_sweeps: 2,
            time_limit: None,
        }
    }

    /// The default experiment budget (a deterministic stand-in for the
    /// paper's 40-minute wall-clock limit; results stop improving well
    /// before it on the published workloads).
    #[must_use]
    pub fn thorough() -> Self {
        SearchBudget {
            max_evaluations: 60_000,
            max_stale_sweeps: 6,
            time_limit: None,
        }
    }

    /// Adds a wall-clock cap (non-consuming builder).
    #[must_use]
    pub fn with_time_limit(mut self, limit: std::time::Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// True if either budget dimension is exhausted.
    #[must_use]
    pub fn exhausted(&self, evaluations: usize, started: std::time::Instant) -> bool {
        evaluations >= self.max_evaluations
            || self
                .time_limit
                .is_some_and(|limit| started.elapsed() >= limit)
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::thorough()
    }
}

/// Outcome of one `OptimizedMapping` search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Evaluation of the best mapping.
    pub evaluation: MappingEvaluation,
    /// Candidate evaluations spent.
    pub evaluations: usize,
    /// True if the best mapping meets the deadline.
    pub feasible: bool,
}

/// Runs the Fig. 7 neighbourhood search from `initial`.
///
/// # Errors
///
/// Propagates evaluation errors ([`OptError::Sched`]).
pub fn optimized_mapping(
    ctx: &EvalContext<'_>,
    scaling: &ScalingVector,
    initial: Mapping,
    budget: SearchBudget,
    seed: u64,
) -> Result<SearchOutcome, OptError> {
    let initial_eval = ctx.evaluate(&initial, scaling)?;
    optimized_mapping_from(ctx, scaling, initial, initial_eval, budget, seed)
}

/// [`optimized_mapping`] for callers that already evaluated the starting
/// mapping (e.g. while choosing between warm starts) — the evaluation is
/// reused instead of being recomputed, and is not charged to the budget
/// again.
///
/// # Errors
///
/// Propagates evaluation errors ([`OptError::Sched`]).
pub fn optimized_mapping_from(
    ctx: &EvalContext<'_>,
    scaling: &ScalingVector,
    initial: Mapping,
    initial_eval: MappingEvaluation,
    budget: SearchBudget,
    seed: u64,
) -> Result<SearchOutcome, OptError> {
    let require_all_cores = ctx.app().graph().len() >= ctx.arch().n_cores();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluations = 1usize; // the initial evaluation

    let mut current = initial;
    let mut current_eval = initial_eval;

    // `best` tracks the incumbent under the search ordering: feasible
    // beats infeasible, feasible points compare on Γ, infeasible points on
    // TM — so even a never-feasible run returns its tightest design.
    let mut best = current.clone();
    let mut best_eval = current_eval.clone();

    let deadline = ctx.app().deadline_s();
    let mut current_score = penalized_gamma(&current_eval, deadline);

    // Annealing schedule sized to the evaluation budget: the temperature
    // decays geometrically to 1 % of its initial value by the time the
    // budget runs out (the same schedule `sea_baselines::SaConfig` derives
    // from the same budget, so the two flows stay metaheuristic-matched).
    const INITIAL_TEMPERATURE: f64 = 0.1;
    let mut temperature = INITIAL_TEMPERATURE;
    let cooling = geometric_cooling(budget.max_evaluations);
    // `max_stale_sweeps` bounds how long the *converged* search may go
    // without improving `best`, measured in neighbourhood-sized batches of
    // movements (mirroring its meaning under sweep-based descent). The
    // counter only runs once the schedule has cooled — counting the early
    // high-temperature walk, where new bests are rare by design, would cut
    // the anneal off before its exploitation phase.
    let cold = INITIAL_TEMPERATURE * 0.02;
    let mut since_best = 0usize;
    let mut moves: Vec<Move> = current.neighbourhood();
    let stale_limit = |n_moves: usize| {
        budget
            .max_stale_sweeps
            .saturating_add(1)
            .saturating_mul(n_moves.max(1))
    };

    let started = std::time::Instant::now();
    let mut consecutive_skips = 0usize;
    while !budget.exhausted(evaluations, started)
        && !moves.is_empty()
        && since_best <= stale_limit(moves.len())
    {
        let mv = moves[rng.gen_range(0..moves.len())];
        let candidate = current.with_move(mv);
        // Structurally-invalid moves consume no evaluation budget, so
        // they must not advance the schedule either: cooling (and stale
        // counting) on skips would quench the anneal with budget unspent
        // on workloads where many relocations would empty a core. The
        // skip cap guards the degenerate all-invalid neighbourhood, which
        // would otherwise spin without ever touching the budget.
        if require_all_cores && !candidate.uses_all_cores() {
            consecutive_skips += 1;
            if consecutive_skips > moves.len().saturating_mul(50) {
                break;
            }
            continue;
        }
        consecutive_skips = 0;
        let eval = ctx.evaluate(&candidate, scaling)?;
        evaluations += 1;
        let score = penalized_gamma(&eval, deadline);

        let accept = if score <= current_score {
            true
        } else {
            let delta = (score - current_score) / current_score.abs().max(f64::MIN_POSITIVE);
            rng.gen_range(0.0..1.0f64) < (-delta / temperature.max(1e-12)).exp()
        };
        if accept {
            current = candidate;
            current_eval = eval;
            current_score = score;
            moves = current.neighbourhood();
            if better(&current_eval, &best_eval, deadline) {
                best = current.clone();
                best_eval = current_eval.clone();
                since_best = 0;
            } else if temperature <= cold {
                since_best += 1;
            }
        } else if temperature <= cold {
            since_best += 1;
        }
        temperature *= cooling;
    }

    let feasible = best_eval.meets_deadline;
    Ok(SearchOutcome {
        mapping: best,
        evaluation: best_eval,
        evaluations,
        feasible,
    })
}

/// Geometric cooling factor that reaches 1 % of the initial temperature
/// after `schedule_len` steps. The length is clamped to `[100, 1_000_000]`:
/// the lower bound keeps tiny budgets from quenching instantly, the upper
/// bound keeps wall-clock-limited budgets (`max_evaluations == usize::MAX`,
/// where `0.01^(1/len)` would round to exactly `1.0`) actually cooling.
/// Shared with `sea_baselines`' annealer so both flows run the same
/// schedule for the same budget.
#[must_use]
pub fn geometric_cooling(schedule_len: usize) -> f64 {
    let len = schedule_len.clamp(100, 1_000_000);
    (0.01f64).powf(1.0 / len as f64)
}

/// Multiplier that ranks deadline-violating designs above every feasible
/// one, ordered by how badly they overshoot — `1.0` for feasible designs.
/// Keeps annealing acceptance gradients usable on both sides of the
/// constraint; shared with `sea_baselines::Objective::penalized_score` so
/// both flows penalize infeasibility identically.
#[must_use]
pub fn deadline_penalty_factor(eval: &MappingEvaluation, deadline_s: f64) -> f64 {
    if eval.meets_deadline {
        1.0
    } else {
        let overshoot = (eval.tm_seconds - deadline_s).max(0.0) / deadline_s;
        10.0 + overshoot * 100.0
    }
}

/// Deadline-penalized `Γ` score for the annealing acceptance.
fn penalized_gamma(eval: &MappingEvaluation, deadline_s: f64) -> f64 {
    eval.gamma * deadline_penalty_factor(eval, deadline_s)
}

/// Public form of the search ordering for callers choosing between warm
/// starts: `true` if `a` is a strictly better starting point than `b`.
#[must_use]
pub fn prefer_start(a: &MappingEvaluation, b: &MappingEvaluation, deadline: f64) -> bool {
    better(a, b, deadline)
}

/// Search ordering (Fig. 7 steps E–F): infeasible points descend on `TM`;
/// feasible points descend on `Γ`; feasible always beats infeasible.
fn better(candidate: &MappingEvaluation, incumbent: &MappingEvaluation, _deadline: f64) -> bool {
    match (candidate.meets_deadline, incumbent.meets_deadline) {
        (true, false) => true,
        (false, true) => false,
        (true, true) => candidate.gamma < incumbent.gamma,
        (false, false) => candidate.tm_seconds < incumbent.tm_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::initial_sea_mapping;
    use sea_arch::{Architecture, LevelSet};
    use sea_taskgraph::{fig8, mpeg2};

    #[test]
    fn search_never_worsens_a_feasible_initial_mapping() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let initial_eval = ctx.evaluate(&initial, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 42).unwrap();
        if initial_eval.meets_deadline {
            assert!(out.feasible);
            assert!(out.evaluation.gamma <= initial_eval.gamma);
        }
    }

    #[test]
    fn search_improves_a_deliberately_bad_seed() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![1, 1, 1, 1], &arch).unwrap();
        // Adversarial seed: maximum distribution of the heavy tail tasks.
        let bad = Mapping::from_groups(&[&[0, 4, 8], &[1, 5, 9], &[2, 6, 10], &[3, 7]], 4).unwrap();
        let bad_eval = ctx.evaluate(&bad, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, bad, SearchBudget::fast(), 1).unwrap();
        assert!(out.feasible, "nominal voltage easily meets the deadline");
        assert!(
            out.evaluation.gamma < bad_eval.gamma,
            "search must reduce SEUs: {} -> {}",
            bad_eval.gamma,
            out.evaluation.gamma
        );
    }

    #[test]
    fn fig8_walkthrough_finds_feasible_low_gamma_design() {
        let app = fig8::application();
        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![1, 2, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 7).unwrap();
        // Under our Fig. 8 reconstruction the 75 ms constraint is tight;
        // the search must at least reach the best TM it can and report
        // feasibility honestly.
        assert!(out.evaluations > 0);
        if out.feasible {
            assert!(out.evaluation.tm_seconds <= 0.075 + 1e-12);
        }
    }

    #[test]
    fn all_cores_stay_occupied() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 2, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 3).unwrap();
        assert!(out.mapping.uses_all_cores());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let a = optimized_mapping(&ctx, &s, initial.clone(), SearchBudget::fast(), 5).unwrap();
        let b = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 5).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn time_limit_stops_the_search() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let budget = SearchBudget {
            max_evaluations: usize::MAX,
            max_stale_sweeps: usize::MAX,
            time_limit: Some(std::time::Duration::from_millis(50)),
        };
        let t0 = std::time::Instant::now();
        let out = optimized_mapping(&ctx, &s, initial, budget, 5).unwrap();
        // Generous envelope: the limit is checked between evaluations, and
        // a single evaluation is microseconds.
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        assert!(out.evaluations > 0);
    }

    #[test]
    fn budget_caps_evaluations() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let budget = SearchBudget {
            max_evaluations: 50,
            max_stale_sweeps: 99,
            time_limit: None,
        };
        let out = optimized_mapping(&ctx, &s, initial, budget, 5).unwrap();
        assert!(out.evaluations <= 50);
    }
}
