//! `OptimizedMapping` — the search-based mapping refinement of Fig. 7.
//!
//! Starting from the initial soft error-aware mapping, the search list
//! schedules the current mapping (step A), then repeatedly generates
//! neighbouring task movements (step C), list schedules each candidate
//! (step D) and adopts it as the new best when it lowers the number of SEUs
//! experienced while meeting the real-time constraint (steps E–F), until
//! the search budget expires (step B). Each neighbourhood move relocates
//! one task or swaps two — "each iteration generating maximum two task
//! movements" — so one sweep costs `O(N·C + N²)` evaluations and the
//! overall search is the paper's `O(N³)`.
//!
//! Infeasible regions are escaped by descending on `TM` first; once
//! feasible, the search descends on `Γ`. Local optima trigger seeded random
//! perturbations (3 random moves) so a larger budget keeps exploring, as
//! the paper's wall-clock-bounded search does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sea_arch::ScalingVector;
use sea_sched::metrics::{EvalContext, MappingEvaluation};
use sea_sched::{Mapping, Move};

use crate::OptError;

/// Search budget for one `OptimizedMapping` run.
///
/// The primary budget is the deterministic evaluation count; an optional
/// wall-clock limit mirrors the paper's literal protocol ("we impose a
/// time-limit of 40 minutes to search the design space for each voltage
/// scaling") for users who prefer time-boxed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Maximum number of candidate evaluations (list schedules).
    pub max_evaluations: usize,
    /// Stop after this many consecutive sweeps without improvement.
    pub max_stale_sweeps: usize,
    /// Optional wall-clock cap per search (checked between evaluations).
    pub time_limit: Option<std::time::Duration>,
}

impl SearchBudget {
    /// A small budget for unit tests and examples.
    #[must_use]
    pub fn fast() -> Self {
        SearchBudget {
            max_evaluations: 2_000,
            max_stale_sweeps: 2,
            time_limit: None,
        }
    }

    /// The default experiment budget (a deterministic stand-in for the
    /// paper's 40-minute wall-clock limit; results stop improving well
    /// before it on the published workloads).
    #[must_use]
    pub fn thorough() -> Self {
        SearchBudget {
            max_evaluations: 60_000,
            max_stale_sweeps: 6,
            time_limit: None,
        }
    }

    /// Adds a wall-clock cap (non-consuming builder).
    #[must_use]
    pub fn with_time_limit(mut self, limit: std::time::Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// True if either budget dimension is exhausted.
    #[must_use]
    pub fn exhausted(&self, evaluations: usize, started: std::time::Instant) -> bool {
        evaluations >= self.max_evaluations
            || self
                .time_limit
                .is_some_and(|limit| started.elapsed() >= limit)
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::thorough()
    }
}

/// Outcome of one `OptimizedMapping` search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Evaluation of the best mapping.
    pub evaluation: MappingEvaluation,
    /// Candidate evaluations spent.
    pub evaluations: usize,
    /// True if the best mapping meets the deadline.
    pub feasible: bool,
}

/// Runs the Fig. 7 neighbourhood search from `initial`.
///
/// # Errors
///
/// Propagates evaluation errors ([`OptError::Sched`]).
pub fn optimized_mapping(
    ctx: &EvalContext<'_>,
    scaling: &ScalingVector,
    initial: Mapping,
    budget: SearchBudget,
    seed: u64,
) -> Result<SearchOutcome, OptError> {
    let require_all_cores = ctx.app().graph().len() >= ctx.arch().n_cores();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluations = 0usize;

    let mut current = initial.clone();
    let mut current_eval = ctx.evaluate(&current, scaling)?;
    evaluations += 1;

    // `best` tracks the incumbent under the search ordering: feasible
    // beats infeasible, feasible points compare on Γ, infeasible points on
    // TM — so even a never-feasible run returns its tightest design.
    let mut best = current.clone();
    let mut best_eval = current_eval.clone();

    let deadline = ctx.app().deadline_s();
    let mut stale = 0usize;

    let started = std::time::Instant::now();
    while !budget.exhausted(evaluations, started) && stale <= budget.max_stale_sweeps {
        // One steepest-descent sweep over the task-movement neighbourhood.
        let mut best_move: Option<(Move, MappingEvaluation)> = None;
        for mv in current.neighbourhood() {
            if budget.exhausted(evaluations, started) {
                break;
            }
            let candidate = current.with_move(mv);
            if require_all_cores && !candidate.uses_all_cores() {
                continue;
            }
            let eval = ctx.evaluate(&candidate, scaling)?;
            evaluations += 1;
            let better_than_sweep_best = match &best_move {
                None => better(&eval, &current_eval, deadline),
                Some((_, sweep_best)) => better(&eval, sweep_best, deadline),
            };
            if better_than_sweep_best {
                best_move = Some((mv, eval));
            }
        }

        match best_move {
            Some((mv, eval)) => {
                current.apply(mv);
                current_eval = eval;
                stale = 0;
                if better(&current_eval, &best_eval, deadline) {
                    best = current.clone();
                    best_eval = current_eval.clone();
                }
            }
            None => {
                // Local optimum: perturb around the incumbent (Fig. 7 keeps
                // searching until the time budget runs out).
                stale += 1;
                current = best.clone();
                for _ in 0..3 {
                    let moves = current.neighbourhood();
                    if moves.is_empty() {
                        break;
                    }
                    let mv = moves[rng.gen_range(0..moves.len())];
                    let next = current.with_move(mv);
                    if !require_all_cores || next.uses_all_cores() {
                        current = next;
                    }
                }
                current_eval = ctx.evaluate(&current, scaling)?;
                evaluations += 1;
                if better(&current_eval, &best_eval, deadline) {
                    best = current.clone();
                    best_eval = current_eval.clone();
                }
            }
        }
    }

    let feasible = best_eval.meets_deadline;
    Ok(SearchOutcome {
        mapping: best,
        evaluation: best_eval,
        evaluations,
        feasible,
    })
}

/// Search ordering (Fig. 7 steps E–F): infeasible points descend on `TM`;
/// feasible points descend on `Γ`; feasible always beats infeasible.
fn better(candidate: &MappingEvaluation, incumbent: &MappingEvaluation, _deadline: f64) -> bool {
    match (candidate.meets_deadline, incumbent.meets_deadline) {
        (true, false) => true,
        (false, true) => false,
        (true, true) => candidate.gamma < incumbent.gamma,
        (false, false) => candidate.tm_seconds < incumbent.tm_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::initial_sea_mapping;
    use sea_arch::{Architecture, LevelSet};
    use sea_taskgraph::{fig8, mpeg2};

    #[test]
    fn search_never_worsens_a_feasible_initial_mapping() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let initial_eval = ctx.evaluate(&initial, &s).unwrap();
        let out =
            optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 42).unwrap();
        if initial_eval.meets_deadline {
            assert!(out.feasible);
            assert!(out.evaluation.gamma <= initial_eval.gamma);
        }
    }

    #[test]
    fn search_improves_a_deliberately_bad_seed() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![1, 1, 1, 1], &arch).unwrap();
        // Adversarial seed: maximum distribution of the heavy tail tasks.
        let bad = Mapping::from_groups(&[&[0, 4, 8], &[1, 5, 9], &[2, 6, 10], &[3, 7]], 4)
            .unwrap();
        let bad_eval = ctx.evaluate(&bad, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, bad, SearchBudget::fast(), 1).unwrap();
        assert!(out.feasible, "nominal voltage easily meets the deadline");
        assert!(
            out.evaluation.gamma < bad_eval.gamma,
            "search must reduce SEUs: {} -> {}",
            bad_eval.gamma,
            out.evaluation.gamma
        );
    }

    #[test]
    fn fig8_walkthrough_finds_feasible_low_gamma_design() {
        let app = fig8::application();
        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![1, 2, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 7).unwrap();
        // Under our Fig. 8 reconstruction the 75 ms constraint is tight;
        // the search must at least reach the best TM it can and report
        // feasibility honestly.
        assert!(out.evaluations > 0);
        if out.feasible {
            assert!(out.evaluation.tm_seconds <= 0.075 + 1e-12);
        }
    }

    #[test]
    fn all_cores_stay_occupied() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 2, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let out = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 3).unwrap();
        assert!(out.mapping.uses_all_cores());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let a = optimized_mapping(&ctx, &s, initial.clone(), SearchBudget::fast(), 5)
            .unwrap();
        let b = optimized_mapping(&ctx, &s, initial, SearchBudget::fast(), 5).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn time_limit_stops_the_search() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let budget = SearchBudget {
            max_evaluations: usize::MAX,
            max_stale_sweeps: usize::MAX,
            time_limit: Some(std::time::Duration::from_millis(50)),
        };
        let t0 = std::time::Instant::now();
        let out = optimized_mapping(&ctx, &s, initial, budget, 5).unwrap();
        // Generous envelope: the limit is checked between evaluations, and
        // a single evaluation is microseconds.
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        assert!(out.evaluations > 0);
    }

    #[test]
    fn budget_caps_evaluations() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let initial = initial_sea_mapping(&ctx, &s).unwrap();
        let budget = SearchBudget {
            max_evaluations: 50,
            max_stale_sweeps: 99,
            time_limit: None,
        };
        let out = optimized_mapping(&ctx, &s, initial, budget, 5).unwrap();
        assert!(out.evaluations <= 50);
    }
}
