//! Voltage-scaling enumeration — the paper's `nextScaling` algorithm
//! (Fig. 5(a)) and the combination table of Fig. 5(b).
//!
//! The enumeration walks all *non-increasing* coefficient vectors
//! `(s_1 ≥ s_2 ≥ … ≥ s_C)` from the all-lowest-voltage combination
//! `(L, …, L)` down to nominal `(1, …, 1)`. Since the cores are identical,
//! permutations of a vector are equivalent designs; restricting to sorted
//! vectors is what makes the combinations "non-repetitive" — for C = 4
//! cores and L = 3 levels this yields the 15 rows of Fig. 5(b) instead of
//! 3⁴ = 81 raw combinations (multiset count `C(L+C−1, C)`).
//!
//! The successor rule (derived from the Fig. 5(b) table; the printed
//! pseudocode's reset uses `prevS[k]+1`, which only coincides with the
//! table when decrementing from the level directly above — the table is
//! authoritative): find the *rightmost* coefficient greater than 1; all
//! entries to its right are 1 by construction; decrement it and reset every
//! entry to its right to the decremented value.

use sea_arch::{Architecture, ScalingVector};

/// Iterator over the paper's non-repetitive voltage-scaling combinations.
///
/// ```
/// use sea_opt::scaling::ScalingIter;
///
/// // C = 2 cores, L = 2 levels: (2,2), (2,1), (1,1).
/// let combos: Vec<Vec<u8>> = ScalingIter::new(2, 2).collect();
/// assert_eq!(combos, vec![vec![2, 2], vec![2, 1], vec![1, 1]]);
/// ```
#[derive(Debug, Clone)]
pub struct ScalingIter {
    current: Option<Vec<u8>>,
}

impl ScalingIter {
    /// Starts the enumeration for `cores` cores and `levels` scaling levels.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `levels` is zero, or `levels > u8::MAX`.
    #[must_use]
    pub fn new(cores: usize, levels: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(levels > 0, "need at least one level");
        let l = u8::try_from(levels).expect("level counts are tiny");
        ScalingIter {
            current: Some(vec![l; cores]),
        }
    }

    /// Starts the enumeration matching an architecture's shape.
    #[must_use]
    pub fn for_architecture(arch: &Architecture) -> Self {
        ScalingIter::new(arch.n_cores(), arch.levels().len())
    }

    /// Total number of combinations the enumeration will yield:
    /// `C(levels + cores − 1, cores)`.
    #[must_use]
    pub fn count_combinations(cores: usize, levels: usize) -> u64 {
        // Multisets of size `cores` from `levels` symbols.
        let n = (levels + cores - 1) as u64;
        let k = cores as u64;
        let mut num = 1u64;
        let mut den = 1u64;
        for i in 0..k {
            num *= n - i;
            den *= i + 1;
        }
        num / den
    }
}

impl Iterator for ScalingIter {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        let out = self.current.clone()?;
        // Successor: rightmost coefficient > 1 decrements; everything to
        // its right resets to the decremented value.
        let next = {
            let mut v = out.clone();
            match v.iter().rposition(|&s| s > 1) {
                None => None, // (1, …, 1) was the last combination
                Some(p) => {
                    let nv = v[p] - 1;
                    for slot in v.iter_mut().skip(p) {
                        *slot = nv;
                    }
                    Some(v)
                }
            }
        };
        self.current = next;
        Some(out)
    }
}

/// Validates a raw coefficient vector against an architecture, converting
/// it into a [`ScalingVector`].
///
/// # Errors
///
/// Propagates [`sea_arch::ArchError`] for invalid coefficients.
pub fn to_scaling_vector(
    raw: &[u8],
    arch: &Architecture,
) -> Result<ScalingVector, sea_arch::ArchError> {
    ScalingVector::try_new(raw.to_vec(), arch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::LevelSet;

    /// The 15 rows of Fig. 5(b), verbatim (columns s1..s4).
    const FIG5B: [[u8; 4]; 15] = [
        [3, 3, 3, 3],
        [3, 3, 3, 2],
        [3, 3, 3, 1],
        [3, 3, 2, 2],
        [3, 3, 2, 1],
        [3, 3, 1, 1],
        [3, 2, 2, 2],
        [3, 2, 2, 1],
        [3, 2, 1, 1],
        [3, 1, 1, 1],
        [2, 2, 2, 2],
        [2, 2, 2, 1],
        [2, 2, 1, 1],
        [2, 1, 1, 1],
        [1, 1, 1, 1],
    ];

    #[test]
    fn fig5b_table_reproduced_exactly() {
        let combos: Vec<Vec<u8>> = ScalingIter::new(4, 3).collect();
        assert_eq!(combos.len(), 15);
        for (got, want) in combos.iter().zip(FIG5B.iter()) {
            assert_eq!(got.as_slice(), want.as_slice());
        }
    }

    #[test]
    fn combination_count_formula() {
        assert_eq!(ScalingIter::count_combinations(4, 3), 15);
        assert_eq!(ScalingIter::count_combinations(2, 2), 3);
        assert_eq!(ScalingIter::count_combinations(6, 3), 28);
        assert_eq!(ScalingIter::count_combinations(1, 5), 5);
        for (c, l) in [(2, 2), (3, 3), (5, 2), (6, 4)] {
            let n = ScalingIter::new(c, l).count() as u64;
            assert_eq!(n, ScalingIter::count_combinations(c, l), "C={c} L={l}");
        }
    }

    #[test]
    fn all_vectors_non_increasing_and_unique() {
        let combos: Vec<Vec<u8>> = ScalingIter::new(5, 4).collect();
        for v in &combos {
            for w in v.windows(2) {
                assert!(w[0] >= w[1], "non-increasing: {v:?}");
            }
        }
        let mut dedup = combos.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), combos.len(), "no repeats");
    }

    #[test]
    fn starts_lowest_voltage_ends_nominal() {
        let combos: Vec<Vec<u8>> = ScalingIter::new(3, 3).collect();
        assert_eq!(combos.first().unwrap(), &vec![3, 3, 3]);
        assert_eq!(combos.last().unwrap(), &vec![1, 1, 1]);
    }

    #[test]
    fn single_level_yields_single_combination() {
        let combos: Vec<Vec<u8>> = ScalingIter::new(4, 1).collect();
        assert_eq!(combos, vec![vec![1, 1, 1, 1]]);
    }

    #[test]
    fn for_architecture_matches_shape() {
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let combos: Vec<Vec<u8>> = ScalingIter::for_architecture(&arch).collect();
        assert_eq!(combos.len(), 15);
        for raw in &combos {
            assert!(to_scaling_vector(raw, &arch).is_ok());
        }
    }
}
