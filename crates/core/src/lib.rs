//! The proposed soft error-aware design optimization (paper §IV).
//!
//! This crate is the paper's primary contribution: a joint
//! power-minimization / reliability-improvement flow for low-power,
//! time-constrained MPSoCs (Fig. 4). It iterates three steps:
//!
//! 1. **Power minimization** — walk the discrete voltage-scaling space with
//!    the non-repetitive [`scaling::ScalingIter`] enumeration (Fig. 5),
//!    starting from the lowest-voltage combination.
//! 2. **Soft error-aware task mapping** — for each scaling, build an
//!    [`initial::initial_sea_mapping`] greedy seed (Fig. 6) and refine it
//!    with the [`optimized::optimized_mapping`] neighbourhood search under
//!    list scheduling (Fig. 7), minimizing the expected SEUs `Γ` subject to
//!    the real-time constraint `TM ≤ TMref`.
//! 3. **Iterative assessment** — keep the best feasible design by the
//!    configured [`driver::SelectionPolicy`] (joint `P·Γ` by default, as in
//!    the paper's Table II outcome).
//!
//! The entry point is [`driver::DesignOptimizer`].
//!
//! The scaling enumeration runs on a chunked `std::thread::scope` worker
//! pool ([`OptimizerConfig::jobs`]); the chunk partition and search seeds
//! are functions of the enumeration alone, so **the outcome is bitwise
//! identical for every job count** — see [`driver`] for the scheme. The
//! per-candidate objective runs through the allocation-free
//! [`sea_sched::Evaluator`] ([`optimized`]), and wall-clock-limited
//! budgets read time from an injectable [`clock::Clock`].
//!
//! # Example
//!
//! ```
//! use sea_opt::{DesignOptimizer, OptimizerConfig};
//! use sea_taskgraph::fig8;
//!
//! let app = fig8::application();
//! let outcome = DesignOptimizer::new(OptimizerConfig::fast(3))
//!     .optimize(&app)
//!     .expect("the Fig. 8 walkthrough has feasible designs");
//! assert!(outcome.best.evaluation.meets_deadline);
//! ```

pub mod clock;
pub mod codec;
pub mod driver;
pub mod initial;
pub mod optimized;
pub mod scaling;

pub use clock::{Clock, StepClock, WallClock};
pub use codec::{decode_outcome, encode_outcome, CodecError};
pub use driver::{
    default_jobs, DesignOptimizer, DesignPoint, OptimizationOutcome, OptimizerConfig,
    ScalingOutcome, SelectionPolicy, SCALING_CHUNK,
};
pub use optimized::{SearchBudget, SearchOutcome};
pub use scaling::ScalingIter;

use std::error::Error;
use std::fmt;

use sea_arch::ArchError;
use sea_sched::SchedError;

/// Errors produced by the optimization flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// The application has fewer tasks than the architecture has cores, so
    /// no mapping can keep every core busy.
    TooFewTasks {
        /// Tasks available.
        tasks: usize,
        /// Cores to fill.
        cores: usize,
    },
    /// No voltage scaling and mapping meets the real-time constraint.
    Infeasible {
        /// Tightest multiprocessor execution time found, in seconds.
        best_tm_seconds: f64,
        /// The deadline that could not be met.
        deadline_s: f64,
    },
    /// Underlying scheduling error.
    Sched(SchedError),
    /// Underlying architecture error.
    Arch(ArchError),
    /// The run was interrupted by a cooperative cancellation request
    /// ([`OptimizerConfig::with_cancel`]) before the enumeration finished.
    Cancelled,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::TooFewTasks { tasks, cores } => {
                write!(f, "{tasks} tasks cannot occupy {cores} cores")
            }
            OptError::Infeasible {
                best_tm_seconds,
                deadline_s,
            } => write!(
                f,
                "no design meets the deadline: best TM {best_tm_seconds:.4} s vs {deadline_s:.4} s"
            ),
            OptError::Sched(e) => write!(f, "scheduling error: {e}"),
            OptError::Arch(e) => write!(f, "architecture error: {e}"),
            OptError::Cancelled => write!(f, "optimization cancelled"),
        }
    }
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Sched(e) => Some(e),
            OptError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for OptError {
    fn from(e: SchedError) -> Self {
        OptError::Sched(e)
    }
}

impl From<ArchError> for OptError {
    fn from(e: ArchError) -> Self {
        OptError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<OptError>();
        let e = OptError::Infeasible {
            best_tm_seconds: 2.0,
            deadline_s: 1.0,
        };
        assert!(e.to_string().contains("deadline"));
    }
}
