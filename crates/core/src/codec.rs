//! Bitwise-exact text serialization of optimization results.
//!
//! The campaign layer's content-addressed result cache stores completed
//! unit results on disk and restores them in later processes; restored
//! results must be *indistinguishable* from freshly computed ones, down
//! to the last float bit, or cached campaigns would stop being
//! byte-identical to uncached ones. This module provides that round trip
//! for the optimizer's result types ([`OptimizationOutcome`],
//! [`DesignPoint`], [`MappingEvaluation`]) with zero dependencies:
//!
//! * floats are encoded as 16-hex-digit IEEE-754 bit patterns (exact by
//!   construction — no shortest-representation or locale concerns),
//! * integers in decimal, coefficient/assignment vectors as comma lists,
//! * everything whitespace-separated, so encoded values compose freely
//!   into larger records (the campaign cache embeds these streams).
//!
//! Decoding rebuilds real [`Mapping`]/`ScalingVector` values against the
//! caller's [`Architecture`], so shape errors (a cache entry written for
//! a different core count) surface as [`CodecError`]s, never as panics.

use std::fmt;
use std::fmt::Write as _;

use sea_arch::{Architecture, CoreId, ScalingVector};
use sea_sched::metrics::{CoreEval, MappingEvaluation};
use sea_sched::Mapping;
use sea_taskgraph::units::Bits;

use crate::driver::{DesignPoint, OptimizationOutcome, ScalingOutcome};

/// A malformed or shape-incompatible encoded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err(msg: impl Into<String>) -> CodecError {
    CodecError(msg.into())
}

/// Cursor over a whitespace-separated token stream.
#[derive(Debug, Clone)]
pub struct Tokens<'a> {
    iter: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    /// Wraps a token stream.
    #[must_use]
    pub fn new(source: &'a str) -> Self {
        Tokens {
            iter: source.split_whitespace(),
        }
    }

    /// The next raw token.
    ///
    /// # Errors
    ///
    /// Fails at end of input.
    pub fn next_tok(&mut self) -> Result<&'a str, CodecError> {
        self.iter
            .next()
            .ok_or_else(|| err("unexpected end of input"))
    }

    /// Consumes one token and requires it to equal `tag`.
    ///
    /// # Errors
    ///
    /// Fails on mismatch or end of input.
    pub fn expect(&mut self, tag: &str) -> Result<(), CodecError> {
        let t = self.next_tok()?;
        if t == tag {
            Ok(())
        } else {
            Err(err(format!("expected `{tag}`, got `{t}`")))
        }
    }

    /// Parses the next token as a decimal integer.
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn next_u64(&mut self) -> Result<u64, CodecError> {
        let t = self.next_tok()?;
        t.parse().map_err(|_| err(format!("bad integer `{t}`")))
    }

    /// Parses the next token as a `usize`.
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn next_usize(&mut self) -> Result<usize, CodecError> {
        let t = self.next_tok()?;
        t.parse().map_err(|_| err(format!("bad integer `{t}`")))
    }

    /// Parses the next token as a `u32`.
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn next_u32(&mut self) -> Result<u32, CodecError> {
        let t = self.next_tok()?;
        t.parse().map_err(|_| err(format!("bad integer `{t}`")))
    }

    /// Parses the next token as a `u8`.
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn next_u8(&mut self) -> Result<u8, CodecError> {
        let t = self.next_tok()?;
        t.parse().map_err(|_| err(format!("bad integer `{t}`")))
    }

    /// Parses the next token as a `0`/`1` boolean.
    ///
    /// # Errors
    ///
    /// Fails on anything else.
    pub fn next_bool(&mut self) -> Result<bool, CodecError> {
        match self.next_tok()? {
            "0" => Ok(false),
            "1" => Ok(true),
            t => Err(err(format!("bad bool `{t}`"))),
        }
    }

    /// Parses the next token as a 16-hex-digit IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn next_f64(&mut self) -> Result<f64, CodecError> {
        let t = self.next_tok()?;
        if t.len() != 16 {
            return Err(err(format!("bad float bits `{t}`")));
        }
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|_| err(format!("bad float bits `{t}`")))
    }

    /// Parses the next token as a comma-separated `u8` list.
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn next_csv_u8(&mut self) -> Result<Vec<u8>, CodecError> {
        let t = self.next_tok()?;
        t.split(',')
            .map(|x| x.parse().map_err(|_| err(format!("bad list `{t}`"))))
            .collect()
    }

    /// Parses the next token as a comma-separated `usize` list.
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn next_csv_usize(&mut self) -> Result<Vec<usize>, CodecError> {
        let t = self.next_tok()?;
        t.split(',')
            .map(|x| x.parse().map_err(|_| err(format!("bad list `{t}`"))))
            .collect()
    }

    /// Requires the stream to be exhausted.
    ///
    /// # Errors
    ///
    /// Fails if tokens remain.
    pub fn finish(mut self) -> Result<(), CodecError> {
        match self.iter.next() {
            None => Ok(()),
            Some(t) => Err(err(format!("trailing token `{t}`"))),
        }
    }
}

fn sep(out: &mut String) {
    if !out.is_empty() && !out.ends_with([' ', '\n']) {
        out.push(' ');
    }
}

/// Appends one raw token (must contain no whitespace).
pub fn push_tok(out: &mut String, tok: &str) {
    debug_assert!(!tok.contains(char::is_whitespace), "token `{tok}`");
    sep(out);
    out.push_str(tok);
}

/// Appends a decimal integer token.
pub fn push_u64(out: &mut String, v: u64) {
    sep(out);
    let _ = write!(out, "{v}");
}

/// Appends an exact float token (IEEE-754 bits as 16 hex digits).
pub fn push_f64(out: &mut String, v: f64) {
    sep(out);
    let _ = write!(out, "{:016x}", v.to_bits());
}

/// Appends a `0`/`1` boolean token.
pub fn push_bool(out: &mut String, v: bool) {
    push_u64(out, u64::from(v));
}

/// Appends a comma-list token from integer-like items.
pub fn push_csv<I: IntoIterator<Item = u64>>(out: &mut String, items: I) {
    sep(out);
    let mut first = true;
    for v in items {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{v}");
    }
}

/// Encodes a mapping as the per-task core-index comma list.
pub fn push_mapping(out: &mut String, mapping: &Mapping) {
    push_csv(
        out,
        (0..mapping.n_tasks())
            .map(|t| mapping.core_of(sea_taskgraph::TaskId::new(t)).index() as u64),
    );
}

/// Decodes a mapping against `n_cores`.
///
/// # Errors
///
/// Fails on malformed lists or assignments outside `0..n_cores`.
pub fn decode_mapping(t: &mut Tokens<'_>, n_cores: usize) -> Result<Mapping, CodecError> {
    let assign = t.next_csv_usize()?;
    Mapping::try_new(assign.into_iter().map(CoreId::new).collect(), n_cores)
        .map_err(|e| err(format!("bad mapping: {e}")))
}

/// Decodes a scaling vector against `arch`.
///
/// # Errors
///
/// Fails on malformed lists or coefficients outside the level set.
pub fn decode_scaling(
    t: &mut Tokens<'_>,
    arch: &Architecture,
) -> Result<ScalingVector, CodecError> {
    let coeffs = t.next_csv_u8()?;
    ScalingVector::try_new(coeffs, arch).map_err(|e| err(format!("bad scaling: {e}")))
}

/// Encodes a full [`MappingEvaluation`] including the per-core breakdown.
pub fn encode_evaluation(out: &mut String, e: &MappingEvaluation) {
    push_f64(out, e.tm_seconds);
    push_f64(out, e.tm_nominal_cycles);
    push_bool(out, e.meets_deadline);
    push_f64(out, e.power_mw);
    push_f64(out, e.gamma);
    push_u64(out, e.r_total.as_u64());
    push_u64(out, e.per_core.len() as u64);
    for c in &e.per_core {
        push_u64(out, c.core.index() as u64);
        push_u64(out, u64::from(c.coefficient));
        push_f64(out, c.f_hz);
        push_f64(out, c.vdd);
        push_f64(out, c.busy_s);
        push_f64(out, c.alpha);
        push_u64(out, c.r_bits.as_u64());
        push_f64(out, c.exposure_cycles);
        push_f64(out, c.lambda);
        push_f64(out, c.gamma);
    }
}

/// Decodes a [`MappingEvaluation`].
///
/// # Errors
///
/// Fails on malformed input.
pub fn decode_evaluation(t: &mut Tokens<'_>) -> Result<MappingEvaluation, CodecError> {
    let tm_seconds = t.next_f64()?;
    let tm_nominal_cycles = t.next_f64()?;
    let meets_deadline = t.next_bool()?;
    let power_mw = t.next_f64()?;
    let gamma = t.next_f64()?;
    let r_total = Bits::new(t.next_u64()?);
    let n = t.next_usize()?;
    let mut per_core = Vec::with_capacity(n);
    for _ in 0..n {
        per_core.push(CoreEval {
            core: CoreId::new(t.next_usize()?),
            coefficient: t.next_u8()?,
            f_hz: t.next_f64()?,
            vdd: t.next_f64()?,
            busy_s: t.next_f64()?,
            alpha: t.next_f64()?,
            r_bits: Bits::new(t.next_u64()?),
            exposure_cycles: t.next_f64()?,
            lambda: t.next_f64()?,
            gamma: t.next_f64()?,
        });
    }
    Ok(MappingEvaluation {
        tm_seconds,
        tm_nominal_cycles,
        meets_deadline,
        power_mw,
        gamma,
        r_total,
        per_core,
    })
}

/// Encodes a [`DesignPoint`] (scaling, mapping, evaluation).
pub fn encode_design(out: &mut String, d: &DesignPoint) {
    push_csv(out, d.scaling.coefficients().iter().map(|&c| u64::from(c)));
    push_mapping(out, &d.mapping);
    encode_evaluation(out, &d.evaluation);
}

/// Decodes a [`DesignPoint`] against `arch`.
///
/// # Errors
///
/// Fails on malformed input or shape mismatches with `arch`.
pub fn decode_design(t: &mut Tokens<'_>, arch: &Architecture) -> Result<DesignPoint, CodecError> {
    let scaling = decode_scaling(t, arch)?;
    let mapping = decode_mapping(t, arch.n_cores())?;
    let evaluation = decode_evaluation(t)?;
    Ok(DesignPoint {
        scaling,
        mapping,
        evaluation,
    })
}

/// Encodes a full [`OptimizationOutcome`] — winning design, the complete
/// explored-scalings record (Figs. 9/10 consume `at_scaling`), and the
/// evaluation totals.
#[must_use]
pub fn encode_outcome(out: &OptimizationOutcome) -> String {
    let mut s = String::with_capacity(1024);
    push_tok(&mut s, "outcome");
    push_u64(&mut s, out.total_evaluations as u64);
    push_u64(&mut s, out.explored.len() as u64);
    encode_design(&mut s, &out.best);
    for x in &out.explored {
        s.push('\n');
        push_csv(
            &mut s,
            x.scaling.coefficients().iter().map(|&c| u64::from(c)),
        );
        push_bool(&mut s, x.feasible);
        push_u64(&mut s, x.evaluations as u64);
        match &x.best {
            Some(d) => {
                push_tok(&mut s, "D");
                encode_design(&mut s, d);
            }
            None => push_tok(&mut s, "-"),
        }
    }
    s
}

/// Decodes an [`OptimizationOutcome`] against `arch`.
///
/// # Errors
///
/// Fails on malformed input or shape mismatches with `arch`.
pub fn decode_outcome(
    source: &str,
    arch: &Architecture,
) -> Result<OptimizationOutcome, CodecError> {
    let mut t = Tokens::new(source);
    t.expect("outcome")?;
    let total_evaluations = t.next_usize()?;
    let n_explored = t.next_usize()?;
    let best = decode_design(&mut t, arch)?;
    let mut explored = Vec::with_capacity(n_explored);
    for _ in 0..n_explored {
        let scaling = decode_scaling(&mut t, arch)?;
        let feasible = t.next_bool()?;
        let evaluations = t.next_usize()?;
        let best = match t.next_tok()? {
            "D" => Some(decode_design(&mut t, arch)?),
            "-" => None,
            other => return Err(err(format!("expected `D` or `-`, got `{other}`"))),
        };
        explored.push(ScalingOutcome {
            scaling,
            best,
            feasible,
            evaluations,
        });
    }
    t.finish()?;
    Ok(OptimizationOutcome {
        best,
        explored,
        total_evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DesignOptimizer, OptimizerConfig};
    use sea_taskgraph::fig8;

    fn assert_designs_equal(a: &DesignPoint, b: &DesignPoint, what: &str) {
        assert_eq!(a.scaling, b.scaling, "{what}: scaling");
        assert_eq!(a.mapping, b.mapping, "{what}: mapping");
        assert_eq!(a.evaluation, b.evaluation, "{what}: evaluation");
    }

    #[test]
    fn outcome_round_trips_bitwise() {
        let config = OptimizerConfig::fast(3);
        let arch = config.arch.clone();
        let out = DesignOptimizer::new(config)
            .optimize(&fig8::application())
            .expect("fig8 is feasible");
        let encoded = encode_outcome(&out);
        let back = decode_outcome(&encoded, &arch).expect("round trip");
        assert_designs_equal(&out.best, &back.best, "best");
        assert_eq!(out.total_evaluations, back.total_evaluations);
        assert_eq!(out.explored.len(), back.explored.len());
        for (i, (x, y)) in out.explored.iter().zip(&back.explored).enumerate() {
            assert_eq!(x.scaling, y.scaling, "explored[{i}]");
            assert_eq!(x.feasible, y.feasible, "explored[{i}]");
            assert_eq!(x.evaluations, y.evaluations, "explored[{i}]");
            match (&x.best, &y.best) {
                (Some(a), Some(b)) => assert_designs_equal(a, b, &format!("explored[{i}]")),
                (None, None) => {}
                _ => panic!("explored[{i}]: best presence differs"),
            }
        }
        // And the re-encoding is byte-identical (stable golden form).
        assert_eq!(encoded, encode_outcome(&back));
    }

    #[test]
    fn floats_survive_exactly_including_edge_values() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            6.626e-34,
            -1.25e300,
        ] {
            let mut s = String::new();
            push_f64(&mut s, v);
            let got = Tokens::new(&s).next_f64().unwrap();
            assert_eq!(v.to_bits(), got.to_bits(), "{v}");
        }
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        let arch = OptimizerConfig::fast(3).arch;
        for bad in [
            "",
            "outcome",
            "outcome 5",
            "outcome 5 0 9,9,9 0,0 deadbeef",
            "wrong 1 0",
        ] {
            assert!(decode_outcome(bad, &arch).is_err(), "`{bad}`");
        }
        // Trailing garbage is rejected.
        let out = DesignOptimizer::new(OptimizerConfig::fast(3))
            .optimize(&fig8::application())
            .unwrap();
        let mut enc = encode_outcome(&out);
        enc.push_str(" extra");
        assert!(decode_outcome(&enc, &arch).is_err());
    }

    #[test]
    fn mapping_and_scaling_decode_validate_shape() {
        let arch = OptimizerConfig::fast(3).arch;
        // 9 is not a coefficient of the 3-level set.
        let mut t = Tokens::new("9,1,1");
        assert!(decode_scaling(&mut t, &arch).is_err());
        // Core index 7 does not exist on a 3-core architecture.
        let mut t = Tokens::new("0,1,7");
        assert!(decode_mapping(&mut t, 3).is_err());
    }
}
