//! The iterative design-optimization driver (Fig. 4).
//!
//! For each voltage-scaling combination of [`crate::scaling::ScalingIter`]
//! (step 1, power minimization), the driver runs the two-stage soft
//! error-aware task mapping (step 2: [`crate::initial`] then
//! [`crate::optimized`]) and assesses the resulting design (step 3). The
//! best feasible design under the configured [`SelectionPolicy`] wins.
//!
//! # Parallelism and determinism
//!
//! The scaling enumeration is embarrassingly parallel, so the driver
//! partitions it into fixed, index-based chunks of [`SCALING_CHUNK`]
//! combinations and fans the chunks out over a `std::thread::scope` worker
//! pool of [`OptimizerConfig::jobs`] threads (std-only; no external
//! runtime). The partition is a function of the enumeration alone — never
//! of the job count — the per-scaling search seeds derive from the global
//! enumeration index, the continuation warm-start chain lives *within* a
//! chunk, and chunk results are merged back in enumeration order.
//! **Consequently [`DesignOptimizer::optimize`] returns a bitwise
//! identical [`OptimizationOutcome`] (best design, explored order,
//! evaluation counts) for every `jobs` value, including 1**; `jobs` trades
//! wall-clock time only. `tests/determinism.rs` pins this guarantee.
//!
//! One caveat: the guarantee covers evaluation-count budgets (the
//! default). A [`SearchBudget::time_limit`] ties each search to real
//! elapsed time, which no engine — sequential included — reproduces
//! exactly across runs, machines, or load levels; under a wall-clock cap
//! the job count additionally shifts where each search's limit lands.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sea_arch::{Architecture, LevelSet, ScalingVector, SerModel};
use sea_sched::metrics::{EvalContext, ExposurePolicy, MappingEvaluation};
use sea_sched::{
    incremental_default, prune_default, tm_lower_bound, IncrementalEvaluator, Mapping,
};
use sea_taskgraph::{Application, TaskGraphSoa};

use crate::clock::WallClock;
use crate::initial::initial_sea_mapping;
use crate::optimized::{optimized_mapping_scratch, prefer_start, SearchBudget};
use crate::scaling::ScalingIter;
use crate::OptError;

/// Scaling combinations per enumeration chunk. A chunk is the unit of
/// parallel work *and* the span of one continuation warm-start chain; the
/// value is a fixed property of the algorithm (never derived from the job
/// count) so that outcomes are identical for every `jobs` setting. Three
/// combinations per chunk keeps most of the warm-start benefit (two of
/// every three scalings start from a neighbouring winner) while leaving
/// enough chunks (5 for the paper's 15-combination four-core space, 10 for
/// the 4-level space) to keep a worker pool busy.
pub const SCALING_CHUNK: usize = 3;

/// Default worker count for [`OptimizerConfig::jobs`]: the `SEA_JOBS`
/// environment variable when set (parse failures fall back), else the
/// machine's available parallelism. Results do not depend on the value —
/// see the [module docs](self) — so the default favours speed.
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("SEA_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// How the iterative assessment ranks feasible designs (the paper jointly
/// minimizes power and SEUs).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Minimize the product `P · Γ` — a scale-free, parameterless joint
    /// objective, the default. Pure min-power selection drives the flow to
    /// the deepest feasible scaling, where forced parallelism inflates both
    /// register usage and `Γ`; the product instead lands on Table II-shaped
    /// designs that pay a few percent of power for a large reliability
    /// gain (the paper's "small power cost", Fig. 10).
    #[default]
    PowerGammaProduct,
    /// Among feasible designs, power within `(1 + tolerance)` of the
    /// minimum competes on `Γ`; outside the band, lower power wins.
    PowerFirst {
        /// Relative power tolerance (e.g. `0.05` = 5 %).
        tolerance: f64,
    },
    /// Weighted sum of normalized power and `Γ` (ablation).
    Weighted {
        /// Weight on power (the `Γ` weight is `1 − w_power`).
        w_power: f64,
    },
    /// Minimize `Γ` outright; power only breaks ties (ablation).
    GammaFirst,
}

/// Configuration of the full optimization flow.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Target architecture.
    pub arch: Architecture,
    /// SER model (paper-calibrated 10⁻⁹ by default).
    pub ser: SerModel,
    /// Register-exposure policy.
    pub exposure: ExposurePolicy,
    /// Per-scaling search budget.
    pub budget: SearchBudget,
    /// Selection policy of the iterative assessment.
    pub selection: SelectionPolicy,
    /// Seed for the search's perturbation RNG.
    pub seed: u64,
    /// Worker threads for the chunked scaling enumeration. Outcomes are
    /// bitwise identical for every value (see the [module docs](self));
    /// defaults to [`default_jobs`].
    pub jobs: usize,
    /// Whether the annealer evaluates candidates through the delta-based
    /// incremental path. Outcomes are bitwise identical either way (the
    /// incremental evaluator is pinned to the full path in debug builds
    /// and by CI's `incremental-equivalence` job); disabling trades speed
    /// for the simpler code path. Defaults to
    /// [`sea_sched::incremental_default`] (`SEA_INCREMENTAL=0` disables).
    pub incremental: bool,
    /// Whether provably-doomed scaling chunks (every scaling's
    /// [`tm_lower_bound`] beyond the deadline) are *skipped*. The skip
    /// set is a pure function of (application, architecture) — never of
    /// this flag — so outcomes are bitwise identical either way:
    /// `prune = false` is a verification mode that searches the doomed
    /// chunks anyway, asserts the bound told the truth, and then
    /// discards the results (debug builds always verify, and CI's
    /// `pruning-equivalence` job pins the release-mode equivalence).
    /// Defaults to [`sea_sched::prune_default`] (`SEA_PRUNE=0`
    /// disables).
    pub prune: bool,
    /// Cooperative cancellation flag. When set, the driver checks it
    /// between scaling chunks (the unit of parallel work) and aborts the
    /// run with [`OptError::Cancelled`] once it reads `true` — a doomed
    /// unit stops within one chunk instead of finishing the whole
    /// enumeration. `None` (the default) never cancels; the flag cannot
    /// change a completed run's outcome, only whether it completes.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl OptimizerConfig {
    /// Default configuration for `n_cores` ARM7 cores with the Table I
    /// three-level set, the SystemC-calibrated platform overhead
    /// (`sea_arch::mpsoc::ARM7_SYSTEMC_CPI_OVERHEAD`) and the thorough
    /// search budget. This is the configuration the experiment harnesses
    /// use.
    #[must_use]
    pub fn paper(n_cores: usize) -> Self {
        OptimizerConfig {
            arch: Architecture::arm7_calibrated(n_cores, LevelSet::arm7_three_level()),
            ser: SerModel::default(),
            exposure: ExposurePolicy::default(),
            budget: SearchBudget::thorough(),
            selection: SelectionPolicy::default(),
            seed: 0x5EA,
            jobs: default_jobs(),
            incremental: incremental_default(),
            prune: prune_default(),
            cancel: None,
        }
    }

    /// Small search budget on the *ideal* (uncalibrated) timing model —
    /// suited to tests, examples and algorithm walkthroughs like Fig. 8,
    /// where the paper's platform overhead is not part of the exercise.
    #[must_use]
    pub fn fast(n_cores: usize) -> Self {
        OptimizerConfig {
            arch: Architecture::homogeneous(n_cores, LevelSet::arm7_three_level()),
            budget: SearchBudget::fast(),
            ..OptimizerConfig::paper(n_cores)
        }
    }

    /// Replaces the DVS level set (Fig. 11 studies 2/3/4 levels), keeping
    /// the architecture's core count and platform calibration.
    #[must_use]
    pub fn with_levels(mut self, levels: LevelSet) -> Self {
        let n = self.arch.n_cores();
        let overhead = self.arch.cpi_overhead();
        self.arch = Architecture::homogeneous(n, levels)
            .with_cpi_overhead(overhead)
            .expect("existing overhead is valid");
        self
    }

    /// Sets the worker-thread count (non-consuming builder).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables or disables delta-based candidate evaluation
    /// (non-consuming builder); outcomes are identical either way.
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Enables or disables skipping provably-doomed scaling chunks
    /// (non-consuming builder); outcomes are identical either way —
    /// `false` verifies the bound instead of trusting it.
    #[must_use]
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Installs a cooperative cancellation flag (non-consuming builder).
    /// Setting the flag makes the run abort with [`OptError::Cancelled`]
    /// at the next chunk boundary.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// One fully-specified design: scaling vector + mapping + its evaluation.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Per-core scaling coefficients.
    pub scaling: ScalingVector,
    /// Task mapping.
    pub mapping: Mapping,
    /// Analytic evaluation (TM, P, R, Γ).
    pub evaluation: MappingEvaluation,
}

/// Per-scaling record of the exploration.
#[derive(Debug, Clone)]
pub struct ScalingOutcome {
    /// The scaling combination explored.
    pub scaling: ScalingVector,
    /// Best design found for this scaling. `None` when the scaling was
    /// pruned: [`tm_lower_bound`] proved no mapping can meet the
    /// deadline, so no search ran and no design exists to record.
    pub best: Option<DesignPoint>,
    /// Whether that design meets the deadline (always `false` for
    /// pruned scalings — that is exactly what the bound proved).
    pub feasible: bool,
    /// Evaluations spent on this scaling (0 for pruned scalings).
    pub evaluations: usize,
}

/// Result of the full optimization.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The winning design.
    pub best: DesignPoint,
    /// Every scaling combination explored, in `nextScaling` order.
    pub explored: Vec<ScalingOutcome>,
    /// Total candidate evaluations.
    pub total_evaluations: usize,
}

impl OptimizationOutcome {
    /// The exploration record for one specific scaling vector, if that
    /// combination was explored. Used for matched-scaling comparisons
    /// against other flows (Figs. 9 and 10).
    #[must_use]
    pub fn at_scaling(&self, scaling: &ScalingVector) -> Option<&ScalingOutcome> {
        self.explored.iter().find(|o| &o.scaling == scaling)
    }

    /// Scalings skipped because [`tm_lower_bound`] proved them
    /// infeasible for every mapping (observability; derived from the
    /// exploration records, so it costs nothing in the encoding).
    #[must_use]
    pub fn scalings_pruned(&self) -> usize {
        self.explored.iter().filter(|o| o.best.is_none()).count()
    }

    /// Scalings actually searched.
    #[must_use]
    pub fn scalings_searched(&self) -> usize {
        self.explored.len() - self.scalings_pruned()
    }
}

/// Everything one chunk of the enumeration reports back to the merger.
struct ChunkOutcome {
    outcomes: Vec<ScalingOutcome>,
    /// Warm-start comparison evaluations, charged to the run total but not
    /// to any single scaling (mirroring the sequential accounting).
    extra_evaluations: usize,
}

/// The proposed soft error-aware design optimizer (paper Fig. 4).
#[derive(Debug, Clone)]
pub struct DesignOptimizer {
    config: OptimizerConfig,
}

impl DesignOptimizer {
    /// Creates an optimizer from a configuration.
    #[must_use]
    pub fn new(config: OptimizerConfig) -> Self {
        DesignOptimizer { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs the full flow on `app`, fanning the scaling enumeration out
    /// over [`OptimizerConfig::jobs`] worker threads. The outcome is
    /// bitwise identical for every `jobs` value (see the
    /// [module docs](self) for the chunking scheme behind the guarantee).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::TooFewTasks`] when the application cannot occupy
    /// every core and [`OptError::Infeasible`] when no explored design meets
    /// the real-time constraint.
    pub fn optimize(&self, app: &Application) -> Result<OptimizationOutcome, OptError> {
        self.optimize_with_jobs(app, self.config.jobs)
    }

    /// Per-unit entry point for external schedulers (the `sea-campaign`
    /// cross-scenario pool): runs the whole flow sequentially on the
    /// calling thread, spawning nothing, regardless of
    /// [`OptimizerConfig::jobs`]. Because the engine's outcome is
    /// job-count-invariant, this returns exactly what [`Self::optimize`]
    /// would — an outer scheduler can fan units out without paying for,
    /// or reasoning about, nested pools.
    ///
    /// # Errors
    ///
    /// As [`Self::optimize`].
    pub fn optimize_unit(&self, app: &Application) -> Result<OptimizationOutcome, OptError> {
        self.optimize_with_jobs(app, 1)
    }

    /// As [`Self::optimize_unit`], but schedules from a caller-supplied
    /// structure-of-arrays view instead of rebuilding one. Campaign runners
    /// that optimize the same [`Application`] under many configurations
    /// obtain the view once via [`TaskGraphSoa::shared`] and amortize the
    /// graph traversals (bottom levels, static schedule order) across units.
    ///
    /// # Errors
    ///
    /// As [`Self::optimize`].
    pub fn optimize_unit_with(
        &self,
        app: &Application,
        soa: &Arc<TaskGraphSoa>,
    ) -> Result<OptimizationOutcome, OptError> {
        self.optimize_shared(app, soa, 1)
    }

    fn optimize_with_jobs(
        &self,
        app: &Application,
        jobs: usize,
    ) -> Result<OptimizationOutcome, OptError> {
        // Built once per run; every chunk (on every worker) schedules from
        // this shared read-only view.
        let soa = Arc::new(TaskGraphSoa::new(app));
        self.optimize_shared(app, &soa, jobs)
    }

    fn optimize_shared(
        &self,
        app: &Application,
        soa: &Arc<TaskGraphSoa>,
        jobs: usize,
    ) -> Result<OptimizationOutcome, OptError> {
        let arch = &self.config.arch;
        let scalings = ScalingIter::for_architecture(arch)
            .map(|raw| ScalingVector::try_new(raw, arch))
            .collect::<Result<Vec<_>, _>>()?;
        let n_chunks = scalings.len().div_ceil(SCALING_CHUNK);

        // Bound-and-prune: a chunk whose every scaling has a
        // mapping-independent TM lower bound beyond the deadline cannot
        // contribute a feasible design, and — because warm-start chains
        // are confined to chunks — skipping it cannot perturb any other
        // chunk's search. The skip set depends only on the problem
        // (never on `config.prune` or the job count), so pruned runs
        // stay bitwise identical to verification runs.
        let deadline = app.deadline_s();
        let doomed = chunk_doomed(soa, app, arch, &scalings);
        let live: Vec<usize> = (0..n_chunks).filter(|&k| !doomed[k]).collect();
        let dead: Vec<usize> = (0..n_chunks).filter(|&k| doomed[k]).collect();

        let live_results = self.explore_chunks(app, soa, &scalings, &live, jobs);

        // Verification mode (`SEA_PRUNE=0`, and every debug build):
        // search the doomed chunks anyway and let the merge below assert
        // that none of them holds a feasible design.
        let verify = !self.config.prune || cfg!(debug_assertions);
        let mut dead_results: Option<Vec<Result<ChunkOutcome, OptError>>> =
            if verify && !dead.is_empty() {
                Some(self.explore_chunks(app, soa, &scalings, &dead, jobs))
            } else {
                None
            };

        // Merge in enumeration order; the fold below then reproduces the
        // sequential selection exactly. Pruned chunks contribute
        // placeholder records (no design, zero evaluations) in *both*
        // modes; verification results are checked and discarded.
        let mut explored = Vec::with_capacity(scalings.len());
        let mut total_evaluations = 0usize;
        let mut doomed_designs: Vec<DesignPoint> = Vec::new();
        let mut live_iter = live_results.into_iter();
        let mut dead_iter = dead_results.take().map(Vec::into_iter);
        for (k, &chunk_doomed) in doomed.iter().enumerate() {
            if chunk_doomed {
                if let Some(iter) = dead_iter.as_mut() {
                    let chunk = iter.next().expect("one result per doomed chunk")?;
                    check_doomed_chunk(&chunk, deadline);
                    doomed_designs.extend(chunk.outcomes.into_iter().filter_map(|o| o.best));
                }
                explored.extend(
                    scalings
                        .iter()
                        .enumerate()
                        .skip(k * SCALING_CHUNK)
                        .take(SCALING_CHUNK)
                        .map(|(_, s)| ScalingOutcome {
                            scaling: s.clone(),
                            best: None,
                            feasible: false,
                            evaluations: 0,
                        }),
                );
            } else {
                let chunk = live_iter.next().expect("one result per live chunk")?;
                total_evaluations += chunk.extra_evaluations;
                explored.extend(chunk.outcomes);
            }
        }

        let mut best: Option<DesignPoint> = None;
        let mut best_tm = f64::INFINITY;
        for outcome in &explored {
            total_evaluations += outcome.evaluations;
            let Some(point) = outcome.best.as_ref() else {
                continue; // pruned — provably infeasible, nothing to rank
            };
            best_tm = best_tm.min(point.evaluation.tm_seconds);
            if outcome.feasible {
                let replace = match &best {
                    None => true,
                    Some(incumbent) => self.prefer(point, incumbent),
                };
                if replace {
                    best = Some(point.clone());
                }
            }
        }

        match best {
            Some(best) => Ok(OptimizationOutcome {
                best,
                explored,
                total_evaluations,
            }),
            None => {
                // The closest-design diagnostic quantifies over the
                // *whole* enumeration. Runs that skipped doomed chunks
                // search them now (verification runs already did); the
                // rerun is chunk-local and globally seeded, so the
                // reported TM is byte-exact across modes.
                if doomed_designs.is_empty() && !dead.is_empty() {
                    for result in self.explore_chunks(app, soa, &scalings, &dead, jobs) {
                        let chunk = result?;
                        check_doomed_chunk(&chunk, deadline);
                        doomed_designs.extend(chunk.outcomes.into_iter().filter_map(|o| o.best));
                    }
                }
                for point in &doomed_designs {
                    best_tm = best_tm.min(point.evaluation.tm_seconds);
                }
                Err(OptError::Infeasible {
                    best_tm_seconds: best_tm,
                    deadline_s: deadline,
                })
            }
        }
    }

    /// Runs `chunks` (a list of chunk indices) and returns one result
    /// per entry, in order. Fans out over up to `jobs` workers when it
    /// pays.
    fn explore_chunks(
        &self,
        app: &Application,
        soa: &Arc<TaskGraphSoa>,
        scalings: &[ScalingVector],
        chunks: &[usize],
        jobs: usize,
    ) -> Vec<Result<ChunkOutcome, OptError>> {
        let jobs = jobs.clamp(1, chunks.len().max(1));
        if jobs == 1 {
            chunks
                .iter()
                .map(|&k| self.explore_chunk(app, soa, scalings, k))
                .collect()
        } else {
            self.explore_parallel(app, soa, scalings, chunks, jobs)
        }
    }

    /// Fans chunks out over a scoped worker pool. Workers pull slots of
    /// the `chunks` list from a shared counter (dynamic load balancing)
    /// and report `(slot, result)` over a channel; the results land in
    /// list order regardless of completion order.
    fn explore_parallel(
        &self,
        app: &Application,
        soa: &Arc<TaskGraphSoa>,
        scalings: &[ScalingVector],
        chunks: &[usize],
        jobs: usize,
    ) -> Vec<Result<ChunkOutcome, OptError>> {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<ChunkOutcome, OptError>>> =
            chunks.iter().map(|_| None).collect();
        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel();
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= chunks.len() {
                        break;
                    }
                    let result = self.explore_chunk(app, soa, scalings, chunks[slot]);
                    if tx.send((slot, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (slot, result) in rx {
                slots[slot] = Some(result);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every chunk reports exactly once"))
            .collect()
    }

    /// Explores chunk `chunk_index` of the enumeration sequentially with
    /// one delta-based [`IncrementalEvaluator`]. The continuation warm
    /// start — the Γ
    /// landscape changes smoothly between neighbouring scalings, so each
    /// search also considers the previous scaling's winner and starts from
    /// whichever of {greedy SEA seed, previous winner} scores better —
    /// chains *within* the chunk only, which is what keeps chunks
    /// independent and the overall outcome job-count-invariant.
    fn explore_chunk(
        &self,
        app: &Application,
        soa: &Arc<TaskGraphSoa>,
        scalings: &[ScalingVector],
        chunk_index: usize,
    ) -> Result<ChunkOutcome, OptError> {
        // Cooperative cancellation: one cheap check per chunk, the unit
        // of parallel work, so cancelled runs stop within ~one chunk's
        // worth of search on every worker.
        if let Some(cancel) = &self.config.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(OptError::Cancelled);
            }
        }
        let ctx = EvalContext::new(app, &self.config.arch)
            .with_ser(self.config.ser)
            .with_exposure(self.config.exposure);
        let mut ev = IncrementalEvaluator::with_soa(ctx, Arc::clone(soa))
            .with_enabled(self.config.incremental);
        let mut warm: Option<Mapping> = None;
        let mut outcomes = Vec::with_capacity(SCALING_CHUNK);
        let mut extra_evaluations = 0usize;

        for (i, scaling) in scalings
            .iter()
            .enumerate()
            .skip(chunk_index * SCALING_CHUNK)
            .take(SCALING_CHUNK)
        {
            let initial = initial_sea_mapping(ev.ctx(), scaling)?;
            let init_summary = ev.evaluate_fresh(&initial, scaling)?;
            let (start, start_summary) = match &warm {
                None => (initial, init_summary),
                Some(w) => {
                    let warm_summary = ev.evaluate_fresh(w, scaling)?;
                    // The losing start's evaluation is charged here; the
                    // winner's is charged inside the search.
                    extra_evaluations += 1;
                    if prefer_start(&warm_summary, &init_summary, app.deadline_s()) {
                        (w.clone(), warm_summary)
                    } else {
                        (initial, init_summary)
                    }
                }
            };
            let out = optimized_mapping_scratch(
                &mut ev,
                scaling,
                start,
                start_summary,
                self.config.budget,
                // Decorrelate the perturbation streams across scalings;
                // the seed depends on the global enumeration index only.
                self.config.seed.wrapping_add(i as u64),
                &WallClock::start(),
            )?;
            warm = Some(out.mapping.clone());
            let feasible = out.feasible;
            outcomes.push(ScalingOutcome {
                scaling: scaling.clone(),
                best: Some(DesignPoint {
                    scaling: scaling.clone(),
                    mapping: out.mapping,
                    evaluation: out.evaluation,
                }),
                feasible,
                evaluations: out.evaluations,
            });
        }
        Ok(ChunkOutcome {
            outcomes,
            extra_evaluations,
        })
    }

    /// The number of scalings this optimizer would actually search for
    /// `app` — the enumeration size minus the scalings in pruned chunks.
    /// The basis of the campaign/dist per-unit cost model (expected work
    /// ≈ surviving scalings × per-scaling budget); completion-order
    /// scheduling built on it never changes any report, so an estimate
    /// is all that is needed.
    #[must_use]
    pub fn surviving_scalings(&self, app: &Application, soa: &TaskGraphSoa) -> usize {
        let arch = &self.config.arch;
        let Ok(scalings) = ScalingIter::for_architecture(arch)
            .map(|raw| ScalingVector::try_new(raw, arch))
            .collect::<Result<Vec<_>, _>>()
        else {
            return 0;
        };
        let doomed = chunk_doomed(soa, app, arch, &scalings);
        scalings
            .iter()
            .enumerate()
            .filter(|(i, _)| !doomed[i / SCALING_CHUNK])
            .count()
    }

    /// True if `candidate` should replace `incumbent` under the selection
    /// policy (both are feasible).
    fn prefer(&self, candidate: &DesignPoint, incumbent: &DesignPoint) -> bool {
        let (cp, cg) = (candidate.evaluation.power_mw, candidate.evaluation.gamma);
        let (ip, ig) = (incumbent.evaluation.power_mw, incumbent.evaluation.gamma);
        match self.config.selection {
            SelectionPolicy::PowerGammaProduct => {
                let cand = cp * cg;
                let inc = ip * ig;
                cand < inc || (cand == inc && cp < ip)
            }
            SelectionPolicy::PowerFirst { tolerance } => {
                let band = 1.0 + tolerance.max(0.0);
                if cp <= ip * band && ip <= cp * band {
                    // Comparable power: lower Γ wins.
                    cg < ig || (cg == ig && cp < ip)
                } else {
                    cp < ip
                }
            }
            SelectionPolicy::Weighted { w_power } => {
                let w = w_power.clamp(0.0, 1.0);
                // Normalize by the incumbent so the scale is dimensionless.
                let cand = w * cp / ip + (1.0 - w) * cg / ig;
                cand < 1.0
            }
            SelectionPolicy::GammaFirst => cg < ig || (cg == ig && cp < ip),
        }
    }
}

/// Per-chunk doom flags: chunk `k` is doomed when **every** scaling in
/// it has a [`tm_lower_bound`] beyond the deadline, i.e. provably no
/// mapping at any of its scalings meets the constraint. A pure function
/// of the problem — the spine of the prune/verify equivalence.
fn chunk_doomed(
    soa: &TaskGraphSoa,
    app: &Application,
    arch: &Architecture,
    scalings: &[ScalingVector],
) -> Vec<bool> {
    let deadline = app.deadline_s();
    let mode = app.mode();
    scalings
        .chunks(SCALING_CHUNK)
        .map(|chunk| {
            chunk
                .iter()
                .all(|s| tm_lower_bound(soa, mode, arch, s) > deadline)
        })
        .collect()
}

/// Verification backstop for a searched doomed chunk: the bound claimed
/// no feasible design exists, so finding one means the bound (or the
/// scheduler) is broken — fail loudly rather than silently returning a
/// worse design than an unpruned run would.
fn check_doomed_chunk(chunk: &ChunkOutcome, deadline_s: f64) {
    for o in &chunk.outcomes {
        assert!(
            !o.feasible,
            "TM lower bound is unsound: scaling {} was pruned but a mapping \
             meets the {deadline_s} s deadline",
            o.scaling
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_taskgraph::{fig8, mpeg2};

    #[test]
    fn mpeg2_four_core_optimization_succeeds() {
        let app = mpeg2::application();
        let out = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        assert!(out.best.evaluation.meets_deadline);
        assert_eq!(out.explored.len(), 15, "Fig. 5(b): 15 combinations");
        assert!(out.best.mapping.uses_all_cores());
        assert!(out.total_evaluations > 0);
    }

    #[test]
    fn optimizer_scales_down_voltage_when_deadline_allows() {
        let app = mpeg2::application();
        let out = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        // The nominal all-(1,1,1,1) design burns the most power; the
        // optimizer must find something strictly cheaper that still meets
        // the 14.58 s deadline.
        let nominal = out
            .explored
            .iter()
            .find(|o| o.scaling.coefficients() == [1, 1, 1, 1])
            .and_then(|o| o.best.as_ref())
            .expect("nominal scaling explored");
        assert!(out.best.evaluation.power_mw < nominal.evaluation.power_mw);
        assert_ne!(out.best.scaling.coefficients(), [1, 1, 1, 1]);
    }

    #[test]
    fn infeasible_deadline_reported() {
        let app = mpeg2::application().with_deadline(0.5).unwrap();
        let err = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap_err();
        assert!(matches!(err, OptError::Infeasible { .. }));
    }

    #[test]
    fn fig8_three_core_flow_runs() {
        let app = fig8::application();
        let result = DesignOptimizer::new(OptimizerConfig::fast(3)).optimize(&app);
        // Under our Fig. 8 reconstruction the 75 ms deadline may or may not
        // admit a design; both outcomes are legitimate, crashing is not.
        match result {
            Ok(out) => assert!(out.best.evaluation.meets_deadline),
            Err(OptError::Infeasible {
                best_tm_seconds, ..
            }) => {
                assert!(best_tm_seconds > 0.075);
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn gamma_first_selection_trades_power_for_reliability() {
        let app = mpeg2::application();
        let power_first = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        let mut cfg = OptimizerConfig::fast(4);
        cfg.selection = SelectionPolicy::GammaFirst;
        let gamma_first = DesignOptimizer::new(cfg).optimize(&app).unwrap();
        assert!(gamma_first.best.evaluation.gamma <= power_first.best.evaluation.gamma);
        assert!(gamma_first.best.evaluation.power_mw >= power_first.best.evaluation.power_mw);
    }

    #[test]
    fn deterministic_outcome() {
        let app = mpeg2::application();
        let a = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        let b = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        assert_eq!(a.best.mapping, b.best.mapping);
        assert_eq!(a.best.scaling, b.best.scaling);
    }

    #[test]
    fn jobs_do_not_change_the_outcome() {
        let app = mpeg2::application();
        let run = |jobs: usize| {
            DesignOptimizer::new(OptimizerConfig::fast(4).with_jobs(jobs))
                .optimize(&app)
                .unwrap()
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.best.mapping, par.best.mapping);
        assert_eq!(seq.best.scaling, par.best.scaling);
        assert_eq!(seq.best.evaluation, par.best.evaluation);
        assert_eq!(seq.total_evaluations, par.total_evaluations);
    }

    #[test]
    fn cancel_flag_aborts_between_chunks() {
        let app = mpeg2::application();
        let flag = Arc::new(AtomicBool::new(true));
        let err = DesignOptimizer::new(OptimizerConfig::fast(4).with_cancel(flag))
            .optimize(&app)
            .unwrap_err();
        assert_eq!(err, OptError::Cancelled);
        // An installed-but-unset flag changes nothing.
        let out = DesignOptimizer::new(
            OptimizerConfig::fast(4).with_cancel(Arc::new(AtomicBool::new(false))),
        )
        .optimize(&app)
        .unwrap();
        let baseline = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        assert_eq!(out.best.mapping, baseline.best.mapping);
        assert_eq!(out.total_evaluations, baseline.total_evaluations);
    }

    /// Paper-calibrated architecture, fast budget, deadline tightened so
    /// the slowest chunk(s) are provably doomed while the problem stays
    /// feasible — the configuration where pruning actually fires.
    fn tight_config() -> (sea_taskgraph::Application, OptimizerConfig) {
        let app = mpeg2::application();
        let app = app.with_deadline(app.deadline_s() * 0.5).unwrap();
        let mut cfg = OptimizerConfig::paper(4);
        cfg.budget = SearchBudget::fast();
        cfg.jobs = 1;
        (app, cfg)
    }

    #[test]
    fn pruned_chunks_leave_placeholder_outcomes() {
        let (app, cfg) = tight_config();
        let out = DesignOptimizer::new(cfg).optimize(&app).unwrap();
        // The all-slowest chunk is doomed at half the mpeg2 deadline
        // (pinned by the bound; a change here means the timing model or
        // the chunk size moved).
        assert_eq!(out.scalings_pruned(), SCALING_CHUNK);
        assert_eq!(out.scalings_searched(), 15 - SCALING_CHUNK);
        for o in &out.explored[..SCALING_CHUNK] {
            assert!(o.best.is_none());
            assert!(!o.feasible);
            assert_eq!(o.evaluations, 0);
        }
        for o in &out.explored[SCALING_CHUNK..] {
            assert!(o.best.is_some());
        }
        assert!(out.best.evaluation.meets_deadline);
    }

    #[test]
    fn prune_flag_never_changes_the_outcome() {
        let (app, cfg) = tight_config();
        let pruned = DesignOptimizer::new(cfg.clone().with_prune(true))
            .optimize(&app)
            .unwrap();
        let verified = DesignOptimizer::new(cfg.with_prune(false))
            .optimize(&app)
            .unwrap();
        assert_eq!(pruned.best.mapping, verified.best.mapping);
        assert_eq!(pruned.best.scaling, verified.best.scaling);
        assert_eq!(pruned.best.evaluation, verified.best.evaluation);
        assert_eq!(pruned.total_evaluations, verified.total_evaluations);
        assert_eq!(pruned.explored.len(), verified.explored.len());
        for (a, b) in pruned.explored.iter().zip(&verified.explored) {
            assert_eq!(a.scaling, b.scaling);
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.best.is_some(), b.best.is_some());
        }
    }

    #[test]
    fn jobs_do_not_change_the_outcome_under_pruning() {
        let (app, cfg) = tight_config();
        let run = |jobs: usize| {
            DesignOptimizer::new(cfg.clone().with_jobs(jobs))
                .optimize(&app)
                .unwrap()
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.best.mapping, par.best.mapping);
        assert_eq!(seq.best.scaling, par.best.scaling);
        assert_eq!(seq.total_evaluations, par.total_evaluations);
        assert_eq!(seq.scalings_pruned(), par.scalings_pruned());
    }

    #[test]
    fn infeasible_diagnostic_is_prune_invariant() {
        // 0.2 × deadline dooms every chunk: the fallback reruns them so
        // the closest-design diagnostic matches a verification run
        // byte-for-byte.
        let (app, cfg) = tight_config();
        let app = app.with_deadline(app.deadline_s() * 0.4).unwrap();
        let run = |prune: bool| {
            DesignOptimizer::new(cfg.clone().with_prune(prune))
                .optimize(&app)
                .unwrap_err()
        };
        let (a, b) = (run(true), run(false));
        match (a, b) {
            (
                OptError::Infeasible {
                    best_tm_seconds: ta,
                    deadline_s: da,
                },
                OptError::Infeasible {
                    best_tm_seconds: tb,
                    deadline_s: db,
                },
            ) => {
                assert_eq!(ta.to_bits(), tb.to_bits());
                assert_eq!(da.to_bits(), db.to_bits());
            }
            other => panic!("expected Infeasible on both, got {other:?}"),
        }
    }

    #[test]
    fn surviving_scalings_matches_exploration() {
        let (app, cfg) = tight_config();
        let optimizer = DesignOptimizer::new(cfg);
        let soa = TaskGraphSoa::new(&app);
        let out = optimizer.optimize(&app).unwrap();
        assert_eq!(
            optimizer.surviving_scalings(&app, &soa),
            out.scalings_searched()
        );
        // Loose deadlines: nothing survives pruning's scrutiny... i.e.
        // everything survives — the bound cannot fire.
        let loose = mpeg2::application();
        assert_eq!(
            optimizer.surviving_scalings(&loose, &TaskGraphSoa::new(&loose)),
            15
        );
    }

    #[test]
    fn four_level_set_explores_more_combinations() {
        let app = mpeg2::application();
        let cfg = OptimizerConfig::fast(4).with_levels(LevelSet::arm7_four_level());
        let out = DesignOptimizer::new(cfg).optimize(&app).unwrap();
        // C(4+4-1, 4) = 35 combinations for 4 cores, 4 levels.
        assert_eq!(out.explored.len(), 35);
    }
}
