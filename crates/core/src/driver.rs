//! The iterative design-optimization driver (Fig. 4).
//!
//! For each voltage-scaling combination of [`crate::scaling::ScalingIter`]
//! (step 1, power minimization), the driver runs the two-stage soft
//! error-aware task mapping (step 2: [`crate::initial`] then
//! [`crate::optimized`]) and assesses the resulting design (step 3). The
//! best feasible design under the configured [`SelectionPolicy`] wins.

use serde::{Deserialize, Serialize};

use sea_arch::{Architecture, LevelSet, ScalingVector, SerModel};
use sea_sched::metrics::{EvalContext, ExposurePolicy, MappingEvaluation};
use sea_sched::Mapping;
use sea_taskgraph::Application;

use crate::initial::initial_sea_mapping;
use crate::optimized::{optimized_mapping_from, prefer_start, SearchBudget};
use crate::scaling::ScalingIter;
use crate::OptError;

/// How the iterative assessment ranks feasible designs (the paper jointly
/// minimizes power and SEUs).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Minimize the product `P · Γ` — a scale-free, parameterless joint
    /// objective, the default. Pure min-power selection drives the flow to
    /// the deepest feasible scaling, where forced parallelism inflates both
    /// register usage and `Γ`; the product instead lands on Table II-shaped
    /// designs that pay a few percent of power for a large reliability
    /// gain (the paper's "small power cost", Fig. 10).
    #[default]
    PowerGammaProduct,
    /// Among feasible designs, power within `(1 + tolerance)` of the
    /// minimum competes on `Γ`; outside the band, lower power wins.
    PowerFirst {
        /// Relative power tolerance (e.g. `0.05` = 5 %).
        tolerance: f64,
    },
    /// Weighted sum of normalized power and `Γ` (ablation).
    Weighted {
        /// Weight on power (the `Γ` weight is `1 − w_power`).
        w_power: f64,
    },
    /// Minimize `Γ` outright; power only breaks ties (ablation).
    GammaFirst,
}

/// Configuration of the full optimization flow.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Target architecture.
    pub arch: Architecture,
    /// SER model (paper-calibrated 10⁻⁹ by default).
    pub ser: SerModel,
    /// Register-exposure policy.
    pub exposure: ExposurePolicy,
    /// Per-scaling search budget.
    pub budget: SearchBudget,
    /// Selection policy of the iterative assessment.
    pub selection: SelectionPolicy,
    /// Seed for the search's perturbation RNG.
    pub seed: u64,
}

impl OptimizerConfig {
    /// Default configuration for `n_cores` ARM7 cores with the Table I
    /// three-level set, the SystemC-calibrated platform overhead
    /// (`sea_arch::mpsoc::ARM7_SYSTEMC_CPI_OVERHEAD`) and the thorough
    /// search budget. This is the configuration the experiment harnesses
    /// use.
    #[must_use]
    pub fn paper(n_cores: usize) -> Self {
        OptimizerConfig {
            arch: Architecture::arm7_calibrated(n_cores, LevelSet::arm7_three_level()),
            ser: SerModel::default(),
            exposure: ExposurePolicy::default(),
            budget: SearchBudget::thorough(),
            selection: SelectionPolicy::default(),
            seed: 0x5EA,
        }
    }

    /// Small search budget on the *ideal* (uncalibrated) timing model —
    /// suited to tests, examples and algorithm walkthroughs like Fig. 8,
    /// where the paper's platform overhead is not part of the exercise.
    #[must_use]
    pub fn fast(n_cores: usize) -> Self {
        OptimizerConfig {
            arch: Architecture::homogeneous(n_cores, LevelSet::arm7_three_level()),
            budget: SearchBudget::fast(),
            ..OptimizerConfig::paper(n_cores)
        }
    }

    /// Replaces the DVS level set (Fig. 11 studies 2/3/4 levels), keeping
    /// the architecture's core count and platform calibration.
    #[must_use]
    pub fn with_levels(mut self, levels: LevelSet) -> Self {
        let n = self.arch.n_cores();
        let overhead = self.arch.cpi_overhead();
        self.arch = Architecture::homogeneous(n, levels)
            .with_cpi_overhead(overhead)
            .expect("existing overhead is valid");
        self
    }
}

/// One fully-specified design: scaling vector + mapping + its evaluation.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Per-core scaling coefficients.
    pub scaling: ScalingVector,
    /// Task mapping.
    pub mapping: Mapping,
    /// Analytic evaluation (TM, P, R, Γ).
    pub evaluation: MappingEvaluation,
}

/// Per-scaling record of the exploration.
#[derive(Debug, Clone)]
pub struct ScalingOutcome {
    /// The scaling combination explored.
    pub scaling: ScalingVector,
    /// Best design found for this scaling.
    pub best: Option<DesignPoint>,
    /// Whether that design meets the deadline.
    pub feasible: bool,
    /// Evaluations spent on this scaling.
    pub evaluations: usize,
}

/// Result of the full optimization.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The winning design.
    pub best: DesignPoint,
    /// Every scaling combination explored, in `nextScaling` order.
    pub explored: Vec<ScalingOutcome>,
    /// Total candidate evaluations.
    pub total_evaluations: usize,
}

impl OptimizationOutcome {
    /// The exploration record for one specific scaling vector, if that
    /// combination was explored. Used for matched-scaling comparisons
    /// against other flows (Figs. 9 and 10).
    #[must_use]
    pub fn at_scaling(&self, scaling: &ScalingVector) -> Option<&ScalingOutcome> {
        self.explored.iter().find(|o| &o.scaling == scaling)
    }
}

/// The proposed soft error-aware design optimizer (paper Fig. 4).
#[derive(Debug, Clone)]
pub struct DesignOptimizer {
    config: OptimizerConfig,
}

impl DesignOptimizer {
    /// Creates an optimizer from a configuration.
    #[must_use]
    pub fn new(config: OptimizerConfig) -> Self {
        DesignOptimizer { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs the full flow on `app`.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::TooFewTasks`] when the application cannot occupy
    /// every core and [`OptError::Infeasible`] when no explored design meets
    /// the real-time constraint.
    pub fn optimize(&self, app: &Application) -> Result<OptimizationOutcome, OptError> {
        let arch = &self.config.arch;
        let ctx = EvalContext::new(app, arch)
            .with_ser(self.config.ser)
            .with_exposure(self.config.exposure);

        let mut explored = Vec::new();
        let mut total_evaluations = 0usize;
        let mut best: Option<DesignPoint> = None;
        let mut best_tm = f64::INFINITY;
        // Continuation warm start: the Γ landscape changes smoothly between
        // neighbouring scaling combinations, so each search also considers
        // the previous scaling's winner and starts from whichever of
        // {greedy SEA seed, previous winner} scores better here. Search
        // progress accumulates across the enumeration instead of being
        // rebuilt from scratch per scaling.
        let mut warm: Option<Mapping> = None;

        for (i, raw) in ScalingIter::for_architecture(arch).enumerate() {
            let scaling = ScalingVector::try_new(raw, arch)?;
            let initial = initial_sea_mapping(&ctx, &scaling)?;
            let init_eval = ctx.evaluate(&initial, &scaling)?;
            let (start, start_eval) = match &warm {
                None => (initial, init_eval),
                Some(w) => {
                    let warm_eval = ctx.evaluate(w, &scaling)?;
                    // The losing start's evaluation is charged here; the
                    // winner's is charged inside the search.
                    total_evaluations += 1;
                    if prefer_start(&warm_eval, &init_eval, app.deadline_s()) {
                        (w.clone(), warm_eval)
                    } else {
                        (initial, init_eval)
                    }
                }
            };
            let out = optimized_mapping_from(
                &ctx,
                &scaling,
                start,
                start_eval,
                self.config.budget,
                // Decorrelate the perturbation streams across scalings.
                self.config.seed.wrapping_add(i as u64),
            )?;
            warm = Some(out.mapping.clone());
            total_evaluations += out.evaluations;
            best_tm = best_tm.min(out.evaluation.tm_seconds);

            let point = DesignPoint {
                scaling: scaling.clone(),
                mapping: out.mapping,
                evaluation: out.evaluation,
            };
            let feasible = point.evaluation.meets_deadline;
            if feasible {
                let replace = match &best {
                    None => true,
                    Some(incumbent) => self.prefer(&point, incumbent),
                };
                if replace {
                    best = Some(point.clone());
                }
            }
            explored.push(ScalingOutcome {
                scaling,
                best: Some(point),
                feasible,
                evaluations: out.evaluations,
            });
        }

        match best {
            Some(best) => Ok(OptimizationOutcome {
                best,
                explored,
                total_evaluations,
            }),
            None => Err(OptError::Infeasible {
                best_tm_seconds: best_tm,
                deadline_s: app.deadline_s(),
            }),
        }
    }

    /// True if `candidate` should replace `incumbent` under the selection
    /// policy (both are feasible).
    fn prefer(&self, candidate: &DesignPoint, incumbent: &DesignPoint) -> bool {
        let (cp, cg) = (candidate.evaluation.power_mw, candidate.evaluation.gamma);
        let (ip, ig) = (incumbent.evaluation.power_mw, incumbent.evaluation.gamma);
        match self.config.selection {
            SelectionPolicy::PowerGammaProduct => {
                let cand = cp * cg;
                let inc = ip * ig;
                cand < inc || (cand == inc && cp < ip)
            }
            SelectionPolicy::PowerFirst { tolerance } => {
                let band = 1.0 + tolerance.max(0.0);
                if cp <= ip * band && ip <= cp * band {
                    // Comparable power: lower Γ wins.
                    cg < ig || (cg == ig && cp < ip)
                } else {
                    cp < ip
                }
            }
            SelectionPolicy::Weighted { w_power } => {
                let w = w_power.clamp(0.0, 1.0);
                // Normalize by the incumbent so the scale is dimensionless.
                let cand = w * cp / ip + (1.0 - w) * cg / ig;
                cand < 1.0
            }
            SelectionPolicy::GammaFirst => cg < ig || (cg == ig && cp < ip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_taskgraph::{fig8, mpeg2};

    #[test]
    fn mpeg2_four_core_optimization_succeeds() {
        let app = mpeg2::application();
        let out = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        assert!(out.best.evaluation.meets_deadline);
        assert_eq!(out.explored.len(), 15, "Fig. 5(b): 15 combinations");
        assert!(out.best.mapping.uses_all_cores());
        assert!(out.total_evaluations > 0);
    }

    #[test]
    fn optimizer_scales_down_voltage_when_deadline_allows() {
        let app = mpeg2::application();
        let out = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        // The nominal all-(1,1,1,1) design burns the most power; the
        // optimizer must find something strictly cheaper that still meets
        // the 14.58 s deadline.
        let nominal = out
            .explored
            .iter()
            .find(|o| o.scaling.coefficients() == [1, 1, 1, 1])
            .and_then(|o| o.best.as_ref())
            .expect("nominal scaling explored");
        assert!(out.best.evaluation.power_mw < nominal.evaluation.power_mw);
        assert_ne!(out.best.scaling.coefficients(), [1, 1, 1, 1]);
    }

    #[test]
    fn infeasible_deadline_reported() {
        let app = mpeg2::application().with_deadline(0.5).unwrap();
        let err = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap_err();
        assert!(matches!(err, OptError::Infeasible { .. }));
    }

    #[test]
    fn fig8_three_core_flow_runs() {
        let app = fig8::application();
        let result = DesignOptimizer::new(OptimizerConfig::fast(3)).optimize(&app);
        // Under our Fig. 8 reconstruction the 75 ms deadline may or may not
        // admit a design; both outcomes are legitimate, crashing is not.
        match result {
            Ok(out) => assert!(out.best.evaluation.meets_deadline),
            Err(OptError::Infeasible {
                best_tm_seconds, ..
            }) => {
                assert!(best_tm_seconds > 0.075);
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn gamma_first_selection_trades_power_for_reliability() {
        let app = mpeg2::application();
        let power_first = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        let mut cfg = OptimizerConfig::fast(4);
        cfg.selection = SelectionPolicy::GammaFirst;
        let gamma_first = DesignOptimizer::new(cfg).optimize(&app).unwrap();
        assert!(gamma_first.best.evaluation.gamma <= power_first.best.evaluation.gamma);
        assert!(gamma_first.best.evaluation.power_mw >= power_first.best.evaluation.power_mw);
    }

    #[test]
    fn deterministic_outcome() {
        let app = mpeg2::application();
        let a = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        let b = DesignOptimizer::new(OptimizerConfig::fast(4))
            .optimize(&app)
            .unwrap();
        assert_eq!(a.best.mapping, b.best.mapping);
        assert_eq!(a.best.scaling, b.best.scaling);
    }

    #[test]
    fn four_level_set_explores_more_combinations() {
        let app = mpeg2::application();
        let cfg = OptimizerConfig::fast(4).with_levels(LevelSet::arm7_four_level());
        let out = DesignOptimizer::new(cfg).optimize(&app).unwrap();
        // C(4+4-1, 4) = 35 combinations for 4 cores, 4 levels.
        assert_eq!(out.explored.len(), 35);
    }
}
