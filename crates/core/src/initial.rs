//! `InitialSEAMapping` — the greedy soft error-aware initial mapping of
//! Fig. 6.
//!
//! The algorithm fills cores one at a time. Starting from the task graph's
//! first root, it repeatedly extends the current core with the *dependent*
//! (ready successor) whose addition incurs the fewest additional expected
//! SEUs on that core — i.e. it exploits register sharing to keep related
//! tasks together — until the core's load would endanger the real-time
//! constraint or too few tasks would remain for the other cores. Remaining
//! candidates spill into a queue `Q` that seeds the following cores; the
//! last core absorbs whatever is left.
//!
//! Two pseudocode details are implemented as documented refinements
//! (DESIGN.md §6): the "swap last two elements in Q" nudge is kept verbatim,
//! and Fig. 6's loose `T_i < TMref` guard is realized as an optimistic
//! feasibility bound so the greedy seed reproduces the paper's behaviour on
//! the Fig. 8 walkthrough ("after allocating t1, t3 and t5 on core 1, the
//! deadline constraint cannot be satisfied with further allocation").

use std::collections::VecDeque;

use sea_arch::{CoreId, ScalingVector};
use sea_sched::metrics::EvalContext;
use sea_sched::Mapping;
use sea_taskgraph::units::Bits;
use sea_taskgraph::{ExecutionMode, TaskId};

use crate::OptError;

/// Builds the initial soft error-aware mapping (Fig. 6).
///
/// # Errors
///
/// Returns [`OptError::TooFewTasks`] if the graph has fewer tasks than the
/// architecture has cores.
pub fn initial_sea_mapping(
    ctx: &EvalContext<'_>,
    scaling: &ScalingVector,
) -> Result<Mapping, OptError> {
    let g = ctx.app().graph();
    let n = g.len();
    let n_cores = ctx.arch().n_cores();
    if n < n_cores {
        return Err(OptError::TooFewTasks {
            tasks: n,
            cores: n_cores,
        });
    }

    let registers = ctx.app().registers();
    let n_blocks = registers.blocks().len();
    let deadline = ctx.app().deadline_s();
    let iterations = f64::from(ctx.app().mode().iterations());
    let ser = ctx.ser();

    // Effective throughput per core (consistent with the list scheduler).
    let freq: Vec<f64> = ctx
        .arch()
        .cores()
        .map(|c| ctx.arch().effective_frequency(c, scaling))
        .collect();
    let lambda: Vec<f64> = ctx
        .arch()
        .cores()
        .map(|c| ser.lambda(ctx.arch().operating_point(c, scaling).vdd))
        .collect();

    let mut assigned: Vec<Option<CoreId>> = vec![None; n];
    let mut unmapped = n;
    // Per-core state: allocated block mask, usage bits, busy cycles.
    let mut core_blocks: Vec<Vec<bool>> = vec![vec![false; n_blocks]; n_cores];
    let mut core_bits = vec![Bits::ZERO; n_cores];
    let mut core_cycles = vec![0.0f64; n_cores];

    // Q seeds cores with spilled candidates; start from the roots in id
    // order (the paper pushes G[0], the first task without predecessors).
    let mut queue: VecDeque<TaskId> = g.roots().into_iter().collect();

    // Fastest remaining-core frequency, used by the optimistic bound.
    let fastest_remaining = |current: usize| -> f64 {
        freq[current..]
            .iter()
            .copied()
            .fold(f64::MIN_POSITIVE, f64::max)
    };

    for core_idx in 0..n_cores {
        let core = CoreId::new(core_idx);
        let last_core = core_idx == n_cores - 1;

        // Seed the core from the queue (or, if the queue ran dry, from the
        // lowest-id unmapped ready task).
        let seed = pop_ready(&mut queue, &assigned, g).or_else(|| {
            g.task_ids()
                .find(|&t| assigned[t.index()].is_none() && is_ready(g, t, &assigned))
        });
        let Some(seed) = seed else { break };
        map_task(
            seed,
            core,
            g,
            registers,
            &mut assigned,
            &mut core_blocks,
            &mut core_bits,
            &mut core_cycles,
            &mut unmapped,
        );
        let mut current = seed;

        if last_core {
            // The last core absorbs every remaining task.
            while let Some(t) = next_any_ready(g, &assigned) {
                map_task(
                    t,
                    core,
                    g,
                    registers,
                    &mut assigned,
                    &mut core_blocks,
                    &mut core_bits,
                    &mut core_cycles,
                    &mut unmapped,
                );
            }
            break;
        }

        // Fig. 6 line 4: keep filling while enough tasks remain for the
        // other cores and the load stays feasible.
        loop {
            let remaining_cores = n_cores - core_idx - 1;
            if unmapped <= remaining_cores {
                break;
            }

            // L := ready dependents of the current task, sorted by the SEUs
            // the core would experience if they joined it (Fig. 6 line 5);
            // ties break on the candidate's own footprint, then id.
            let mut l: Vec<TaskId> = g
                .successors(current)
                .iter()
                .map(|&(s, _)| s)
                .filter(|&s| assigned[s.index()].is_none() && is_ready(g, s, &assigned))
                .collect();
            let candidate = if l.is_empty() {
                // Fig. 6 lines 6-7: nudge the queue, then fall back to it.
                if queue.len() >= 2 {
                    let len = queue.len();
                    queue.swap(len - 1, len - 2);
                }
                match pop_ready(&mut queue, &assigned, g) {
                    Some(t) => t,
                    None => break,
                }
            } else {
                l.sort_by(|&a, &b| {
                    let key = |t: TaskId| {
                        // Incremental register usage if `t` joined the core,
                        // computed read-only against the occupancy mask (no
                        // per-comparison mask clone on this hot path).
                        let mask = &core_blocks[core_idx];
                        let added: Bits = registers
                            .task_blocks(t)
                            .iter()
                            .filter(|b| !mask[b.index()])
                            .map(|&b| registers.block(b).bits())
                            .sum();
                        let r_new = core_bits[core_idx] + added;
                        let t_new = core_cycles[core_idx] + g.task(t).computation().as_f64();
                        let gamma = lambda[core_idx] * r_new.as_f64() * t_new;
                        (gamma, registers.task_footprint(t).as_f64(), t.index())
                    };
                    let (ga, fa, ia) = key(a);
                    let (gb, fb, ib) = key(b);
                    ga.total_cmp(&gb).then(fa.total_cmp(&fb)).then(ia.cmp(&ib))
                });
                // Spill the non-chosen dependents into Q (Fig. 6 line 10).
                let chosen = l[0];
                for &rest in &l[1..] {
                    if !queue.contains(&rest) {
                        queue.push_back(rest);
                    }
                }
                chosen
            };

            // Optimistic feasibility bound (refinement of `T_i < TMref`).
            // Unmapped tasks may still land on any core from the current
            // one onward, so the bound runs them at the fastest of those.
            let feasible = candidate_feasible(
                ctx,
                candidate,
                core_idx,
                &core_cycles,
                &freq,
                fastest_remaining(core_idx),
                deadline,
                iterations,
                g,
                &assigned,
            );
            if !feasible {
                break;
            }
            map_task(
                candidate,
                core,
                g,
                registers,
                &mut assigned,
                &mut core_blocks,
                &mut core_bits,
                &mut core_cycles,
                &mut unmapped,
            );
            current = candidate;
        }
    }

    // Repair pass: any stragglers go to the least-loaded core (possible if
    // the queue ran dry on a disconnected graph region).
    while let Some(t) = next_any_ready(g, &assigned) {
        let (best, _) = core_cycles
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("at least one core");
        map_task(
            t,
            CoreId::new(best),
            g,
            registers,
            &mut assigned,
            &mut core_blocks,
            &mut core_bits,
            &mut core_cycles,
            &mut unmapped,
        );
    }
    // Ensure every core is non-empty by pulling from the most loaded core
    // (Fig. 6's `unmapped > C−i` guard achieves this in the common case).
    let mut mapping: Vec<CoreId> = assigned
        .into_iter()
        .map(|c| c.expect("all tasks mapped"))
        .collect();
    for empty in 0..n_cores {
        if !mapping.iter().any(|c| c.index() == empty) {
            let donor = (0..n_cores)
                .max_by_key(|&c| mapping.iter().filter(|m| m.index() == c).count())
                .expect("cores exist");
            // Donate the donor's highest-id task (a graph sink if possible).
            let t = (0..n)
                .rev()
                .find(|&t| mapping[t].index() == donor)
                .expect("donor is non-empty");
            mapping[t] = CoreId::new(empty);
        }
    }

    Ok(Mapping::try_new(mapping, n_cores)?)
}

/// True when every predecessor of `t` is already mapped.
fn is_ready(g: &sea_taskgraph::TaskGraph, t: TaskId, assigned: &[Option<CoreId>]) -> bool {
    g.predecessors(t)
        .iter()
        .all(|&(p, _)| assigned[p.index()].is_some())
}

/// Pops the first queue entry that is still unmapped and ready.
fn pop_ready(
    queue: &mut VecDeque<TaskId>,
    assigned: &[Option<CoreId>],
    g: &sea_taskgraph::TaskGraph,
) -> Option<TaskId> {
    let mut deferred: Vec<TaskId> = Vec::new();
    let mut found = None;
    while let Some(t) = queue.pop_front() {
        if assigned[t.index()].is_some() {
            continue;
        }
        if is_ready(g, t, assigned) {
            found = Some(t);
            break;
        }
        deferred.push(t);
    }
    for t in deferred.into_iter().rev() {
        queue.push_front(t);
    }
    found
}

/// Lowest-id unmapped task whose predecessors are mapped (topological
/// fallback; always exists while tasks remain, the graph being a DAG).
fn next_any_ready(g: &sea_taskgraph::TaskGraph, assigned: &[Option<CoreId>]) -> Option<TaskId> {
    g.topological_order()
        .iter()
        .copied()
        .find(|&t| assigned[t.index()].is_none() && is_ready(g, t, assigned))
}

#[allow(clippy::too_many_arguments)]
fn map_task(
    t: TaskId,
    core: CoreId,
    g: &sea_taskgraph::TaskGraph,
    registers: &sea_taskgraph::RegisterModel,
    assigned: &mut [Option<CoreId>],
    core_blocks: &mut [Vec<bool>],
    core_bits: &mut [Bits],
    core_cycles: &mut [f64],
    unmapped: &mut usize,
) {
    debug_assert!(assigned[t.index()].is_none());
    assigned[t.index()] = Some(core);
    let added = registers.union_add(&mut core_blocks[core.index()], t);
    core_bits[core.index()] += added;
    core_cycles[core.index()] += g.task(t).computation().as_f64();
    *unmapped -= 1;
}

/// Optimistic bound: would mapping `candidate` on `core_idx` still allow a
/// deadline-feasible completion?
///
/// * Pipelined mode — throughput test: the core's whole-stream busy time
///   `cycles / f` must stay within the deadline (the stream's period is
///   bounded by the busiest core).
/// * Batch mode — earliest-finish test: the core's serial finish time plus
///   the longest unmapped computation chain at the fastest remaining
///   frequency must stay within the deadline (communication and contention
///   are optimistically ignored; the bound only prunes clear violations).
#[allow(clippy::too_many_arguments)]
fn candidate_feasible(
    ctx: &EvalContext<'_>,
    candidate: TaskId,
    core_idx: usize,
    core_cycles: &[f64],
    freq: &[f64],
    fastest_remaining: f64,
    deadline: f64,
    iterations: f64,
    g: &sea_taskgraph::TaskGraph,
    assigned: &[Option<CoreId>],
) -> bool {
    let new_cycles = core_cycles[core_idx] + g.task(candidate).computation().as_f64();
    let busy_s = new_cycles / freq[core_idx];
    if busy_s > deadline {
        return false;
    }
    if matches!(ctx.app().mode(), ExecutionMode::Pipelined { .. }) {
        // Throughput bound is the whole check in streaming mode.
        let _ = iterations;
        return true;
    }

    // Batch: earliest-finish DP over the topological order. Mapped tasks
    // finish serially on their core (approximated by the core's cumulative
    // cycles); unmapped tasks run at the fastest remaining frequency.
    let mut finish = vec![0.0f64; g.len()];
    let mut core_time = vec![0.0f64; freq.len()];
    for &t in g.topological_order() {
        let preds_done = g
            .predecessors(t)
            .iter()
            .map(|&(p, _)| finish[p.index()])
            .fold(0.0f64, f64::max);
        let assigned_core = if t == candidate {
            Some(CoreId::new(core_idx))
        } else {
            assigned[t.index()]
        };
        match assigned_core {
            Some(c) => {
                let dur = g.task(t).computation().as_f64() / freq[c.index()];
                let start = preds_done.max(core_time[c.index()]);
                finish[t.index()] = start + dur;
                core_time[c.index()] = finish[t.index()];
            }
            None => {
                let dur = g.task(t).computation().as_f64() / fastest_remaining;
                finish[t.index()] = preds_done + dur;
            }
        }
    }
    finish.iter().fold(0.0f64, |a, &b| a.max(b)) <= deadline
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::{Architecture, LevelSet};
    use sea_taskgraph::{fig8, mpeg2};

    fn ctx_arch(
        app: &sea_taskgraph::Application,
        cores: usize,
    ) -> (Architecture, sea_taskgraph::Application) {
        (
            Architecture::homogeneous(cores, LevelSet::arm7_three_level()),
            app.clone(),
        )
    }

    #[test]
    fn fig8_initial_mapping_matches_walkthrough_shape() {
        let app = fig8::application();
        let (arch, app) = ctx_arch(&app, 3);
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![1, 2, 2], &arch).unwrap();
        let m = initial_sea_mapping(&ctx, &s).unwrap();
        assert!(m.uses_all_cores());
        assert_eq!(m.n_tasks(), 6);
        // The walkthrough seeds core 1 with t1 and extends it with the
        // dependent that minimizes incremental SEUs.
        assert_eq!(m.core_of(TaskId::new(0)), CoreId::new(0));
        // t3 shares all its registers with t2 but has the smaller footprint,
        // so it joins t1's core (paper: "selects t3").
        assert_eq!(m.core_of(TaskId::new(2)), CoreId::new(0));
    }

    #[test]
    fn mpeg2_initial_mapping_covers_all_cores() {
        let app = mpeg2::application();
        let (arch, app) = ctx_arch(&app, 4);
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let m = initial_sea_mapping(&ctx, &s).unwrap();
        assert!(m.uses_all_cores());
        assert_eq!(m.n_tasks(), 11);
    }

    #[test]
    fn initial_mapping_keeps_sharing_tasks_together_when_slack_allows() {
        let app = mpeg2::application();
        // Generous deadline: localization should dominate.
        let app = app.with_deadline(1e4).unwrap();
        let (arch, app) = ctx_arch(&app, 4);
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::uniform(1, &arch).unwrap();
        let m = initial_sea_mapping(&ctx, &s).unwrap();
        // t5 and t6 (indices 4, 5) share 6.4 kbit; the greedy should not
        // split them when the deadline is loose.
        assert_eq!(m.core_of(TaskId::new(4)), m.core_of(TaskId::new(5)));
    }

    #[test]
    fn rejects_more_cores_than_tasks() {
        let app = fig8::application();
        let (arch, app) = ctx_arch(&app, 8);
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::all_nominal(&arch);
        assert!(matches!(
            initial_sea_mapping(&ctx, &s).unwrap_err(),
            OptError::TooFewTasks { tasks: 6, cores: 8 }
        ));
    }

    #[test]
    fn every_core_count_produces_complete_mappings() {
        let app = mpeg2::application();
        for cores in 2..=6 {
            let (arch, app) = ctx_arch(&app, cores);
            let ctx = EvalContext::new(&app, &arch);
            let s = ScalingVector::all_lowest(&arch);
            let m = initial_sea_mapping(&ctx, &s).unwrap();
            assert!(m.uses_all_cores(), "{cores} cores");
            assert_eq!(m.n_tasks(), 11);
        }
    }

    #[test]
    fn deterministic() {
        let app = mpeg2::application();
        let (arch, app) = ctx_arch(&app, 4);
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::uniform(2, &arch).unwrap();
        let a = initial_sea_mapping(&ctx, &s).unwrap();
        let b = initial_sea_mapping(&ctx, &s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_graphs_map_completely() {
        use sea_taskgraph::generator::RandomGraphConfig;
        for n in [20, 40, 60] {
            let app = RandomGraphConfig::paper(n).generate(99).unwrap();
            let (arch, app) = ctx_arch(&app, 4);
            let ctx = EvalContext::new(&app, &arch);
            let s = ScalingVector::all_lowest(&arch);
            let m = initial_sea_mapping(&ctx, &s).unwrap();
            assert_eq!(m.n_tasks(), n);
            assert!(m.uses_all_cores(), "N={n}");
        }
    }
}
