//! Strongly-typed physical units shared across the workspace.
//!
//! The paper expresses computation and communication costs in *clock cycles*
//! and register usage in *bits* (reported as kbit/cycle). Newtypes keep the
//! two from being mixed up in arithmetic (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A count of processor clock cycles.
///
/// All task computation costs and edge communication costs in the paper are
/// cycle counts (e.g. the MPEG-2 costs are multiples of 5.5×10⁶ cycles).
///
/// ```
/// use sea_taskgraph::units::Cycles;
/// let a = Cycles::new(10) * 3;
/// assert_eq!(a, Cycles::new(30));
/// assert_eq!(a.as_u64(), 30);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero cycle count.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cycle count as a floating-point value.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Converts cycles to seconds at clock frequency `f_hz`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `f_hz` is not strictly positive.
    #[must_use]
    pub fn at_frequency(self, f_hz: f64) -> f64 {
        debug_assert!(f_hz > 0.0, "frequency must be positive, got {f_hz}");
        self.0 as f64 / f_hz
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns true if the count is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cy", self.0)
    }
}

/// A register capacity or usage, in bits.
///
/// The paper reports register usage `R` in kbit/cycle; internally everything
/// is integral bits. This crate follows the paper's convention
/// `1 kbit = 1000 bit` (the quoted SER example "1 SEU per 10 ms for a 1 kb
/// register bank" is only consistent with decimal kilobits).
///
/// ```
/// use sea_taskgraph::units::Bits;
/// let b = Bits::from_kbits(6.4);
/// assert_eq!(b.as_u64(), 6_400);
/// assert!((b.as_kbits() - 6.4).abs() < 1e-9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Bits(u64);

impl Bits {
    /// The zero bit count.
    pub const ZERO: Bits = Bits(0);

    /// Creates a bit count.
    #[must_use]
    pub const fn new(bits: u64) -> Self {
        Bits(bits)
    }

    /// Creates a bit count from (decimal) kilobits, rounding to whole bits.
    #[must_use]
    pub fn from_kbits(kbits: f64) -> Self {
        debug_assert!(kbits >= 0.0, "bit counts cannot be negative");
        Bits((kbits * 1000.0).round() as u64)
    }

    /// Returns the raw bit count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the count as a floating-point number of bits.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns the count in decimal kilobits, the paper's reporting unit.
    #[must_use]
    pub fn as_kbits(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns true if the count is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Sub for Bits {
    type Output = Bits;
    fn sub(self, rhs: Bits) -> Bits {
        Bits(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bits {
    type Output = Bits;
    fn mul(self, rhs: u64) -> Bits {
        Bits(self.0 * rhs)
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        Bits(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 {
            write!(f, "{:.1} kbit", self.as_kbits())
        } else {
            write!(f, "{} bit", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(5);
        let b = Cycles::new(7);
        assert_eq!(a + b, Cycles::new(12));
        assert_eq!(b - a, Cycles::new(2));
        assert_eq!(a * 4, Cycles::new(20));
        assert_eq!(Cycles::new(21) / 2, Cycles::new(10));
        assert_eq!(
            vec![a, b].into_iter().sum::<Cycles>(),
            Cycles::new(12),
            "Sum impl"
        );
    }

    #[test]
    fn cycles_at_frequency() {
        // 200e6 cycles at 200 MHz is exactly one second.
        let c = Cycles::new(200_000_000);
        assert!((c.at_frequency(200e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_saturating_sub() {
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(10)), Cycles::ZERO);
    }

    #[test]
    fn bits_kbit_round_trip() {
        let b = Bits::from_kbits(5.12);
        assert_eq!(b.as_u64(), 5120);
        assert!((b.as_kbits() - 5.12).abs() < 1e-12);
    }

    #[test]
    fn bits_display_scales() {
        assert_eq!(Bits::new(512).to_string(), "512 bit");
        assert_eq!(Bits::new(6400).to_string(), "6.4 kbit");
    }

    #[test]
    fn cycles_display() {
        assert_eq!(Cycles::new(42).to_string(), "42 cy");
    }

    #[test]
    fn zero_flags() {
        assert!(Cycles::ZERO.is_zero());
        assert!(Bits::ZERO.is_zero());
        assert!(!Cycles::new(1).is_zero());
    }
}
