//! Tasks: the nodes of an application task graph.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Cycles;

/// Identifier of a task within one [`crate::graph::TaskGraph`].
///
/// Ids are dense indices `0..graph.len()`, assigned in insertion order; the
/// paper's `t1..tN` naming maps to `TaskId::new(0)..TaskId::new(N-1)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct TaskId(usize);

impl TaskId {
    /// Creates a task id from a dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        TaskId(index)
    }

    /// Returns the dense index of this id.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Match the paper's 1-based naming so logs read like the figures.
        write!(f, "t{}", self.0 + 1)
    }
}

impl From<TaskId> for usize {
    fn from(id: TaskId) -> usize {
        id.0
    }
}

/// One computational task of an application (a node of `G(V, E)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    name: String,
    computation: Cycles,
}

impl Task {
    /// Creates a task. Normally done through
    /// [`crate::graph::TaskGraphBuilder::add_task`].
    #[must_use]
    pub fn new(id: TaskId, name: impl Into<String>, computation: Cycles) -> Self {
        Task {
            id,
            name: name.into(),
            computation,
        }
    }

    /// The task's id within its graph.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Human-readable task name (e.g. `"Inverse Quantize Blocks"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Computation cost in clock cycles (the paper's `t_j^i`).
    #[must_use]
    pub fn computation(&self) -> Cycles {
        self.computation
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} \"{}\" ({})", self.id, self.name, self.computation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display_is_one_based() {
        assert_eq!(TaskId::new(0).to_string(), "t1");
        assert_eq!(TaskId::new(10).to_string(), "t11");
    }

    #[test]
    fn task_accessors() {
        let t = Task::new(TaskId::new(3), "idct", Cycles::new(55));
        assert_eq!(t.id(), TaskId::new(3));
        assert_eq!(t.name(), "idct");
        assert_eq!(t.computation(), Cycles::new(55));
        assert!(t.to_string().contains("idct"));
    }

    #[test]
    fn task_id_round_trips_through_usize() {
        let id = TaskId::new(7);
        let raw: usize = id.into();
        assert_eq!(raw, 7);
        assert_eq!(TaskId::new(raw), id);
    }
}
