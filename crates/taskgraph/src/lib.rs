//! Application task-graph models for soft error-aware MPSoC design optimization.
//!
//! This crate provides the *application side* of the DATE 2010 paper
//! "Soft Error-Aware Design Optimization of Low Power and Time-Constrained
//! Embedded Systems" (Shafik, Al-Hashimi, Chakrabarty):
//!
//! * [`graph::TaskGraph`] — directed acyclic task graphs `G(V, E)` with
//!   per-task computation costs and per-edge communication costs, both in
//!   clock cycles (paper §II-B).
//! * [`registers::RegisterModel`] — per-task register footprints built from
//!   possibly-*shared* register blocks. Sharing is what creates the
//!   register-usage/execution-time trade-off at the heart of the paper
//!   (§III): co-locating sharing tasks avoids duplicating blocks across
//!   cores, distributing them replicates the blocks.
//! * [`application::Application`] — a task graph + register model + execution
//!   profile (batch or pipelined/streaming) + real-time deadline.
//! * [`mpeg2`] — the 11-task MPEG-2 decoder of Fig. 2, including a
//!   register-sharing model calibrated to the constraints published in §III.
//! * [`fig8`] — the six-task tutorial example of Fig. 8 with the exact
//!   register table r1..r9.
//! * [`generator`] — the random task-graph generator used in §V
//!   (uniform computation/communication costs, exponential out-degree).
//!
//! # Example
//!
//! ```
//! use sea_taskgraph::graph::TaskGraphBuilder;
//! use sea_taskgraph::units::Cycles;
//!
//! # fn main() -> Result<(), sea_taskgraph::error::GraphError> {
//! let mut b = TaskGraphBuilder::new("pipeline");
//! let a = b.add_task("produce", Cycles::new(1_000));
//! let c = b.add_task("consume", Cycles::new(2_000));
//! b.add_edge(a, c, Cycles::new(100))?;
//! let g = b.build()?;
//! assert_eq!(g.len(), 2);
//! assert_eq!(g.total_computation(), Cycles::new(3_000));
//! # Ok(())
//! # }
//! ```

pub mod application;
pub mod error;
pub mod fig8;
pub mod generator;
pub mod graph;
pub mod mpeg2;
pub mod presets;
pub mod registers;
pub mod soa;
pub mod spec;
pub mod task;
pub mod units;

pub use application::{Application, ExecutionMode};
pub use error::GraphError;
pub use graph::{Edge, TaskGraph, TaskGraphBuilder};
pub use registers::{RegisterBlock, RegisterBlockId, RegisterModel, RegisterModelBuilder};
pub use soa::TaskGraphSoa;
pub use spec::{AppSpec, SpecError};
pub use task::{Task, TaskId};
pub use units::{Bits, Cycles};
