//! Error types for task-graph construction and validation.

use std::error::Error;
use std::fmt;

use crate::task::TaskId;

/// Errors produced while building or validating task graphs, register models
/// and applications.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge referenced a task id that does not exist in the graph.
    UnknownTask {
        /// The offending task id.
        task: TaskId,
        /// Number of tasks actually present.
        len: usize,
    },
    /// An edge would connect a task to itself.
    SelfLoop {
        /// The task with the attempted self-loop.
        task: TaskId,
    },
    /// The same directed edge was added twice.
    DuplicateEdge {
        /// Source task.
        src: TaskId,
        /// Destination task.
        dst: TaskId,
    },
    /// The graph contains a dependency cycle and is not a DAG.
    Cyclic,
    /// The graph has no tasks.
    Empty,
    /// A register model does not cover every task of the graph it is paired
    /// with.
    RegisterModelMismatch {
        /// Tasks covered by the register model.
        model_tasks: usize,
        /// Tasks present in the graph.
        graph_tasks: usize,
    },
    /// A register block id was out of range.
    UnknownBlock {
        /// The offending block index.
        block: usize,
        /// Number of blocks actually present.
        len: usize,
    },
    /// An application parameter was invalid (non-positive deadline, zero
    /// pipeline iterations, ...). The message names the parameter.
    InvalidParameter {
        /// Human-readable description of the parameter problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTask { task, len } => {
                write!(f, "unknown task id {task} (graph has {len} tasks)")
            }
            GraphError::SelfLoop { task } => {
                write!(f, "self-loop on task {task} is not allowed in a DAG")
            }
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            GraphError::Cyclic => write!(f, "task graph contains a dependency cycle"),
            GraphError::Empty => write!(f, "task graph has no tasks"),
            GraphError::RegisterModelMismatch {
                model_tasks,
                graph_tasks,
            } => write!(
                f,
                "register model covers {model_tasks} tasks but graph has {graph_tasks}"
            ),
            GraphError::UnknownBlock { block, len } => {
                write!(f, "unknown register block {block} (model has {len} blocks)")
            }
            GraphError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::DuplicateEdge {
            src: TaskId::new(0),
            dst: TaskId::new(1),
        };
        let msg = e.to_string();
        assert!(msg.contains("duplicate edge"), "got: {msg}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
