//! The MPEG-2 video decoder workload of the paper (Fig. 2, §V).
//!
//! Eleven tasks from `Decode Header Sequences` to `Store/Display Frame`, with
//! the published computation costs (multiples of 5.5×10⁶ clock cycles) and
//! communication costs. The decoder streams the Tektronix `tennis` bitstream:
//! 437 frames at 29.97 fps, giving the real-time constraint
//! `TMref = 437 / 29.97 ≈ 14.581 s`.
//!
//! # Graph reconstruction
//!
//! Fig. 2 prints the edge costs but the flattened text loses the arrow
//! endpoints. We reconstruct the decode pipeline as the natural chain
//! t1→t2→…→t11 plus one motion-vector edge t3→t9 (macroblock headers feed
//! motion compensation), and assign the printed costs in pipeline order.
//! See DESIGN.md §3.
//!
//! # Register model synthesis
//!
//! The paper measures register sharing with SystemC; we synthesize a
//! block-sharing model satisfying every constraint the paper publishes:
//!
//! * t5 and t6 share ≈6.4 kbit (§III) — block `b567`;
//! * t6, t7, t8 share ≈8 kbit (§III) — block `b678`;
//! * mapping {t5,t6} and {t7,t8} on two different cores duplicates
//!   ≈14.4 kbit (§III) — exactly `b567 + b678` straddle that cut;
//! * overall usage `R` of four-core mappings spans roughly 80–120 kbit/cycle
//!   (Fig. 3(a), Table II).

use crate::application::{Application, ExecutionMode};
use crate::graph::{TaskGraph, TaskGraphBuilder};
use crate::registers::{RegisterModel, RegisterModelBuilder};
use crate::task::TaskId;
use crate::units::{Bits, Cycles};

/// Cost unit of the MPEG-2 graph: all Fig. 2 costs are multiples of this.
pub const CYCLE_UNIT: u64 = 5_500_000;

/// Number of frames in the `tennis` bitstream used by the paper.
pub const FRAMES: u32 = 437;

/// Target frame rate (frames per second).
pub const FPS: f64 = 29.97;

/// Real-time constraint: decode 437 frames at 29.97 fps.
#[must_use]
pub fn deadline_s() -> f64 {
    f64::from(FRAMES) / FPS
}

/// Task names in pipeline order (Fig. 2).
pub const TASK_NAMES: [&str; 11] = [
    "Decode Header Sequences",
    "Decode Frame/Slice Headers",
    "Decode Macroblock Sequences",
    "Run-length Decode Block",
    "Inverse Scan Blocks",
    "Inverse Quantize Blocks",
    "Inv. DCT by row",
    "Inv. DCT by column",
    "Motion Compens. Blocks",
    "Add Blocks",
    "Store/Display Frame",
];

/// Computation costs in units of [`CYCLE_UNIT`] (Fig. 2 node labels).
pub const COMPUTATION_UNITS: [u64; 11] = [10, 15, 16, 31, 25, 39, 63, 61, 48, 41, 21];

/// Edges as `(src, dst, comm-units)` with 0-based task indices (Fig. 2,
/// reconstructed as documented in the module docs).
pub const EDGE_UNITS: [(usize, usize, u64); 11] = [
    (0, 1, 1),
    (1, 2, 2),
    (2, 3, 2),
    (3, 4, 2),
    (4, 5, 3),
    (5, 6, 3),
    (6, 7, 4),
    (7, 8, 4),
    (2, 8, 2), // motion vectors: Decode Macroblock Sequences -> Motion Compens.
    (8, 9, 4),
    (9, 10, 4),
];

/// Builds the 11-task MPEG-2 decoder task graph with costs in cycles.
#[must_use]
pub fn task_graph() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("mpeg2-decoder");
    for (name, units) in TASK_NAMES.iter().zip(COMPUTATION_UNITS) {
        b.add_task(*name, Cycles::new(units * CYCLE_UNIT));
    }
    for (src, dst, units) in EDGE_UNITS {
        b.add_edge(
            TaskId::new(src),
            TaskId::new(dst),
            Cycles::new(units * CYCLE_UNIT),
        )
        .expect("static MPEG-2 edge table is well-formed");
    }
    b.build().expect("static MPEG-2 graph is a DAG")
}

/// Private register footprint per task, kbit (synthesized; see module docs).
const PRIVATE_KBITS: [f64; 11] = [2.0, 2.0, 3.0, 3.0, 2.0, 3.0, 5.0, 5.0, 4.0, 3.0, 2.0];

/// Shared blocks: `(name, kbit, member tasks)` (synthesized).
///
/// `b567` and `b678` realize the sharing magnitudes published in §III.
/// The remaining blocks model bitstream/header state flowing down the
/// pipeline and the frame/display buffers at its tail.
const SHARED_KBITS: [(&str, f64, &[usize]); 12] = [
    ("hdr-state", 2.5, &[0, 1, 2]),
    ("s12", 2.0, &[0, 1]),
    ("s23", 3.0, &[1, 2]),
    ("s34", 2.5, &[2, 3]),
    ("coeff-buf", 4.0, &[3, 4]),
    ("b567", 6.4, &[4, 5, 6]),
    ("b678", 8.0, &[5, 6, 7]),
    ("s89", 3.5, &[7, 8]),
    ("motion-vectors", 3.0, &[2, 8]),
    ("s910", 3.5, &[8, 9]),
    ("disp-buf", 3.5, &[8, 9, 10]),
    ("s1011", 2.5, &[9, 10]),
];

/// Builds the synthesized register-sharing model for the decoder.
#[must_use]
pub fn register_model() -> RegisterModel {
    let mut b = RegisterModelBuilder::new(11);
    for (i, kbits) in PRIVATE_KBITS.iter().enumerate() {
        let blk = b.add_block(format!("priv-{}", TaskId::new(i)), Bits::from_kbits(*kbits));
        b.assign(TaskId::new(i), blk)
            .expect("static task ids are in range");
    }
    for (name, kbits, members) in SHARED_KBITS {
        let tasks: Vec<TaskId> = members.iter().map(|&m| TaskId::new(m)).collect();
        b.add_shared_block(name, Bits::from_kbits(kbits), &tasks)
            .expect("static task ids are in range");
    }
    b.build()
}

/// Builds the complete MPEG-2 decoder application: pipelined over 437 frames
/// with the 29.97 fps real-time constraint.
#[must_use]
pub fn application() -> Application {
    Application::new(
        "mpeg2-decoder",
        task_graph(),
        register_model(),
        ExecutionMode::Pipelined { iterations: FRAMES },
        deadline_s(),
    )
    .expect("static MPEG-2 application is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId::new(i)
    }

    #[test]
    fn graph_matches_fig2_costs() {
        let g = task_graph();
        assert_eq!(g.len(), 11);
        assert_eq!(g.task(t(0)).computation(), Cycles::new(10 * CYCLE_UNIT));
        assert_eq!(g.task(t(6)).computation(), Cycles::new(63 * CYCLE_UNIT));
        assert_eq!(g.task(t(10)).computation(), Cycles::new(21 * CYCLE_UNIT));
        // Total = 370 units.
        assert_eq!(g.total_computation(), Cycles::new(370 * CYCLE_UNIT));
        assert_eq!(g.edges().len(), 11);
    }

    #[test]
    fn graph_is_pipeline_with_motion_vector_edge() {
        let g = task_graph();
        assert_eq!(g.roots(), vec![t(0)]);
        assert_eq!(g.sinks(), vec![t(10)]);
        assert!(g.edge_comm(t(2), t(8)).is_some(), "t3 -> t9 edge");
        for i in 0..10 {
            assert!(g.edge_comm(t(i), t(i + 1)).is_some(), "chain edge {i}");
        }
    }

    #[test]
    fn register_model_satisfies_published_sharing() {
        let m = register_model();
        // §III: t5, t6 share ≈ 6.4 kbit.
        assert_eq!(m.shared_bits(t(4), t(5)), Bits::from_kbits(6.4));
        // §III: t6, t7, t8 share ≈ 8 kbit among them.
        assert_eq!(
            m.shared_bits_among(&[t(5), t(6), t(7)]),
            Bits::from_kbits(8.0)
        );
    }

    #[test]
    fn split_t56_t78_duplicates_14_4_kbit() {
        let m = register_model();
        // Only the blocks straddling the {t5,t6} | {t7,t8} cut count.
        let groups = vec![vec![t(4), t(5)], vec![t(6), t(7)]];
        let dup = m.duplication_bits(&groups);
        assert_eq!(dup, Bits::from_kbits(6.4 + 8.0));
    }

    #[test]
    fn deadline_matches_tennis_stream() {
        assert!((deadline_s() - 14.581).abs() < 5e-3);
    }

    #[test]
    fn application_is_pipelined_over_437_frames() {
        let a = application();
        assert_eq!(a.mode(), ExecutionMode::Pipelined { iterations: 437 });
        assert_eq!(a.graph().len(), 11);
        assert_eq!(a.registers().n_tasks(), 11);
    }

    #[test]
    fn total_union_is_in_expected_range() {
        let m = register_model();
        let kb = m.total_union().as_kbits();
        // Duplication-free floor of the R range in Fig. 3(a)/Table II.
        assert!((70.0..90.0).contains(&kb), "total union {kb} kbit");
    }
}
