//! The six-task tutorial example of the paper's Fig. 8.
//!
//! Costs are multiples of 60×10⁴ cycles; the register table r1..r9 and the
//! task→register assignment are printed verbatim in Fig. 8(b)-(c). The
//! walkthrough in §IV-B maps the graph onto three cores with scaling
//! coefficients (s1, s2, s3) = (1, 2, 2) and a 75 ms deadline.

use crate::application::{Application, ExecutionMode};
use crate::graph::{TaskGraph, TaskGraphBuilder};
use crate::registers::{RegisterModel, RegisterModelBuilder};
use crate::task::TaskId;
use crate::units::{Bits, Cycles};

/// Cost unit of the Fig. 8 graph.
pub const CYCLE_UNIT: u64 = 600_000;

/// Deadline of the walkthrough: 75 ms.
pub const DEADLINE_S: f64 = 0.075;

/// Computation costs in units of [`CYCLE_UNIT`]: t1(5) t2(4) t3(4) t4(5)
/// t5(6) t6(4).
pub const COMPUTATION_UNITS: [u64; 6] = [5, 4, 4, 5, 6, 4];

/// Edges `(src, dst, comm-units)`, 0-based. The graph fans out from t1 to
/// {t2, t3}; t4 joins {t2, t3}; t5 descends from t3; t6 joins {t4, t5}.
pub const EDGE_UNITS: [(usize, usize, u64); 7] = [
    (0, 1, 1),
    (0, 2, 2),
    (1, 3, 1),
    (2, 3, 2),
    (2, 4, 2),
    (3, 5, 3),
    (4, 5, 1),
];

/// Register block sizes in bits, exactly Fig. 8(b): r1..r9.
pub const REGISTER_BITS: [u64; 9] = [4096, 2048, 2048, 5120, 4096, 2048, 2048, 4096, 2048];

/// Task register usage, exactly Fig. 8(c): task index → register indices
/// (0-based; the paper's `R1=[r1,r2,r3]` is entry 0 = `[0,1,2]`).
pub const TASK_REGISTERS: [&[usize]; 6] = [
    &[0, 1, 2],    // t1: r1, r2, r3
    &[1, 3, 4, 5], // t2: r2, r4, r5, r6
    &[3, 4, 5],    // t3: r4, r5, r6
    &[4, 5, 6],    // t4: r5, r6, r7
    &[5, 6, 7],    // t5: r6, r7, r8
    &[6, 7, 8],    // t6: r7, r8, r9
];

/// Builds the Fig. 8 task graph with costs in cycles.
#[must_use]
pub fn task_graph() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("fig8");
    for (i, units) in COMPUTATION_UNITS.iter().enumerate() {
        b.add_task(format!("t{}", i + 1), Cycles::new(units * CYCLE_UNIT));
    }
    for (src, dst, units) in EDGE_UNITS {
        b.add_edge(
            TaskId::new(src),
            TaskId::new(dst),
            Cycles::new(units * CYCLE_UNIT),
        )
        .expect("static Fig. 8 edge table is well-formed");
    }
    b.build().expect("static Fig. 8 graph is a DAG")
}

/// Builds the Fig. 8(b)-(c) register model.
#[must_use]
pub fn register_model() -> RegisterModel {
    let mut b = RegisterModelBuilder::new(6);
    let blocks: Vec<_> = REGISTER_BITS
        .iter()
        .enumerate()
        .map(|(i, &bits)| b.add_block(format!("r{}", i + 1), Bits::new(bits)))
        .collect();
    for (task, regs) in TASK_REGISTERS.iter().enumerate() {
        for &r in regs.iter() {
            b.assign(TaskId::new(task), blocks[r])
                .expect("static Fig. 8 register table is well-formed");
        }
    }
    b.build()
}

/// Builds the complete Fig. 8 application (batch execution, 75 ms deadline).
#[must_use]
pub fn application() -> Application {
    Application::new(
        "fig8",
        task_graph(),
        register_model(),
        ExecutionMode::Batch,
        DEADLINE_S,
    )
    .expect("static Fig. 8 application is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId::new(i)
    }

    #[test]
    fn graph_matches_fig8_costs() {
        let g = task_graph();
        assert_eq!(g.len(), 6);
        let units: Vec<u64> = g
            .tasks()
            .map(|x| x.computation().as_u64() / CYCLE_UNIT)
            .collect();
        assert_eq!(units, COMPUTATION_UNITS);
    }

    #[test]
    fn register_sizes_match_fig8b() {
        let m = register_model();
        assert_eq!(m.blocks().len(), 9);
        assert_eq!(
            m.block(crate::registers::RegisterBlockId::new(3)).bits(),
            Bits::new(5120)
        );
    }

    #[test]
    fn task_footprints_match_fig8c() {
        let m = register_model();
        // t1 = r1 + r2 + r3 = 4096 + 2048 + 2048.
        assert_eq!(m.task_footprint(t(0)), Bits::new(8192));
        // t2 = r2 + r4 + r5 + r6.
        assert_eq!(m.task_footprint(t(1)), Bits::new(2048 + 5120 + 4096 + 2048));
        // t3 ⊂ t2 and their shared bits are r4+r5+r6.
        assert_eq!(m.shared_bits(t(1), t(2)), Bits::new(5120 + 4096 + 2048));
    }

    #[test]
    fn deadline_is_75ms_and_feasible_shape() {
        let a = application();
        assert_eq!(a.deadline_s(), 0.075);
        // All six tasks serial at 200 MHz: 28 units * 0.6e6 cy = 16.8e6 cy
        // = 84 ms > 75 ms, so a single fast core cannot meet the deadline —
        // mapping across cores is genuinely required, as in the walkthrough.
        let serial_s = a.graph().total_computation().at_frequency(200e6);
        assert!(serial_s > a.deadline_s());
    }

    #[test]
    fn roots_and_sinks() {
        let g = task_graph();
        assert_eq!(g.roots(), vec![t(0)]);
        assert_eq!(g.sinks(), vec![t(5)]);
    }
}
