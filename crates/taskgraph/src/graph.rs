//! Directed acyclic task graphs `G(V, E)` (paper §II-B).
//!
//! Nodes carry computation costs, edges carry inter-task communication costs,
//! both in clock cycles. Graphs are immutable once built; use
//! [`TaskGraphBuilder`] to construct them.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::task::{Task, TaskId};
use crate::units::Cycles;

/// A dependency edge `d_ij` between two tasks with its communication cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer task.
    pub src: TaskId,
    /// Consumer task.
    pub dst: TaskId,
    /// Data-transfer cost in clock cycles (charged only when `src` and `dst`
    /// are mapped on different cores; see `sea-sched`).
    pub comm: Cycles,
}

/// An immutable directed acyclic task graph.
///
/// ```
/// use sea_taskgraph::graph::TaskGraphBuilder;
/// use sea_taskgraph::units::Cycles;
///
/// # fn main() -> Result<(), sea_taskgraph::error::GraphError> {
/// let mut b = TaskGraphBuilder::new("diamond");
/// let t: Vec<_> = (0..4).map(|i| b.add_task(format!("t{i}"), Cycles::new(10))).collect();
/// b.add_edge(t[0], t[1], Cycles::new(1))?;
/// b.add_edge(t[0], t[2], Cycles::new(1))?;
/// b.add_edge(t[1], t[3], Cycles::new(1))?;
/// b.add_edge(t[2], t[3], Cycles::new(1))?;
/// let g = b.build()?;
/// assert_eq!(g.roots(), vec![t[0]]);
/// assert_eq!(g.sinks(), vec![t[3]]);
/// // critical path: t0 -> t1 -> t3 with two cross-edges = 10+1+10+1+10
/// assert_eq!(g.critical_path().as_u64(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    /// `succs[i]` = outgoing `(dst, comm)` pairs of task i, in insertion order.
    succs: Vec<Vec<(TaskId, Cycles)>>,
    /// `preds[i]` = incoming `(src, comm)` pairs of task i, in insertion order.
    preds: Vec<Vec<(TaskId, Cycles)>>,
    /// A fixed topological order computed at build time (Kahn's algorithm,
    /// smallest-id-first for determinism).
    topo: Vec<TaskId>,
}

impl TaskGraph {
    /// The graph's name (e.g. `"mpeg2-decoder"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks `N`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns true if the graph has no tasks. Built graphs are never empty;
    /// this exists for the `len`/`is_empty` pairing convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Looks up a task by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Iterates over all tasks in id order.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Iterates over all task ids in id order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::new)
    }

    /// All edges, in insertion order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing `(successor, comm)` pairs of `id`.
    #[must_use]
    pub fn successors(&self, id: TaskId) -> &[(TaskId, Cycles)] {
        &self.succs[id.index()]
    }

    /// Incoming `(predecessor, comm)` pairs of `id`.
    #[must_use]
    pub fn predecessors(&self, id: TaskId) -> &[(TaskId, Cycles)] {
        &self.preds[id.index()]
    }

    /// Communication cost of the edge `src -> dst`, if present.
    #[must_use]
    pub fn edge_comm(&self, src: TaskId, dst: TaskId) -> Option<Cycles> {
        self.succs[src.index()]
            .iter()
            .find(|(d, _)| *d == dst)
            .map(|(_, c)| *c)
    }

    /// Tasks without predecessors, in id order.
    #[must_use]
    pub fn roots(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.preds[t.index()].is_empty())
            .collect()
    }

    /// Tasks without successors, in id order.
    #[must_use]
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.succs[t.index()].is_empty())
            .collect()
    }

    /// A deterministic topological order of all tasks.
    #[must_use]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Total computation cost `Σ_j t_j` over all tasks.
    #[must_use]
    pub fn total_computation(&self) -> Cycles {
        self.tasks.iter().map(Task::computation).sum()
    }

    /// Total communication cost `Σ_ij d_ij` over all edges.
    #[must_use]
    pub fn total_communication(&self) -> Cycles {
        self.edges.iter().map(|e| e.comm).sum()
    }

    /// Length (cycles) of the longest computation+communication path.
    ///
    /// This is a lower bound on one-shot makespan at uniform unit frequency
    /// and is used by mapping heuristics for feasibility pruning.
    #[must_use]
    pub fn critical_path(&self) -> Cycles {
        let mut finish = vec![Cycles::ZERO; self.len()];
        for &t in &self.topo {
            let own = self.task(t).computation();
            let start = self.preds[t.index()]
                .iter()
                .map(|&(p, comm)| finish[p.index()] + comm)
                .max()
                .unwrap_or(Cycles::ZERO);
            finish[t.index()] = start + own;
        }
        finish.into_iter().max().unwrap_or(Cycles::ZERO)
    }

    /// Downstream critical path of each task: the task's own computation plus
    /// the heaviest computation+communication chain below it ("b-level").
    ///
    /// Used as the list-scheduling priority (longest path first).
    #[must_use]
    pub fn bottom_levels(&self) -> Vec<Cycles> {
        let mut bl = vec![Cycles::ZERO; self.len()];
        for &t in self.topo.iter().rev() {
            let below = self.succs[t.index()]
                .iter()
                .map(|&(s, comm)| bl[s.index()] + comm)
                .max()
                .unwrap_or(Cycles::ZERO);
            bl[t.index()] = self.task(t).computation() + below;
        }
        bl
    }

    /// Returns true if `ancestor` can reach `descendant` through directed
    /// edges (used to preserve precedence when reordering within a core).
    #[must_use]
    pub fn reaches(&self, ancestor: TaskId, descendant: TaskId) -> bool {
        if ancestor == descendant {
            return true;
        }
        let mut stack = vec![ancestor];
        let mut seen = vec![false; self.len()];
        while let Some(t) = stack.pop() {
            for &(s, _) in &self.succs[t.index()] {
                if s == descendant {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Renders the graph in Graphviz DOT format (nodes labelled with name and
    /// cycle cost, edges with communication cost).
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=TB;");
        for t in &self.tasks {
            let _ = writeln!(
                out,
                "  {} [label=\"{}\\n{} ({})\"];",
                t.id(),
                t.id(),
                t.name(),
                t.computation()
            );
        }
        for e in &self.edges {
            let _ = writeln!(out, "  {} -> {} [label=\"{}\"];", e.src, e.dst, e.comm);
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental builder for [`TaskGraph`] (C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
}

impl TaskGraphBuilder {
    /// Starts a new builder for a graph called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraphBuilder {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, computation: Cycles) -> TaskId {
        let id = TaskId::new(self.tasks.len());
        self.tasks.push(Task::new(id, name, computation));
        id
    }

    /// Adds a dependency edge with a communication cost.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`], [`GraphError::SelfLoop`] or
    /// [`GraphError::DuplicateEdge`] on malformed edges. Cycles are detected
    /// at [`TaskGraphBuilder::build`] time.
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, comm: Cycles) -> Result<(), GraphError> {
        for &t in &[src, dst] {
            if t.index() >= self.tasks.len() {
                return Err(GraphError::UnknownTask {
                    task: t,
                    len: self.tasks.len(),
                });
            }
        }
        if src == dst {
            return Err(GraphError::SelfLoop { task: src });
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(GraphError::DuplicateEdge { src, dst });
        }
        self.edges.push(Edge { src, dst, comm });
        Ok(())
    }

    /// Number of tasks added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns true if no tasks were added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Validates acyclicity and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for a graph without tasks and
    /// [`GraphError::Cyclic`] if the edges contain a cycle.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.tasks.len();
        let mut succs: Vec<Vec<(TaskId, Cycles)>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<(TaskId, Cycles)>> = vec![Vec::new(); n];
        for e in &self.edges {
            succs[e.src.index()].push((e.dst, e.comm));
            preds[e.dst.index()].push((e.src, e.comm));
        }

        // Kahn's algorithm with a sorted ready set for a deterministic order.
        let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // pop() yields smallest id
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            topo.push(TaskId::new(i));
            for &(s, _) in &succs[i] {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    // Insert keeping `ready` sorted descending.
                    let pos = ready
                        .binary_search_by(|x| s.index().cmp(x))
                        .unwrap_or_else(|p| p);
                    ready.insert(pos, s.index());
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::Cyclic);
        }

        Ok(TaskGraph {
            name: self.name,
            tasks: self.tasks,
            edges: self.edges,
            succs,
            preds,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new("chain");
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_task(format!("t{i}"), Cycles::new(10)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], Cycles::new(2)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn builds_chain_and_orders_topologically() {
        let g = chain(5);
        assert_eq!(g.len(), 5);
        let order = g.topological_order();
        for e in g.edges() {
            let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
            assert!(pos(e.src) < pos(e.dst));
        }
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TaskGraphBuilder::new("cyc");
        let a = b.add_task("a", Cycles::new(1));
        let c = b.add_task("b", Cycles::new(1));
        b.add_edge(a, c, Cycles::ZERO).unwrap();
        b.add_edge(c, a, Cycles::ZERO).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::Cyclic);
    }

    #[test]
    fn rejects_empty_self_loop_duplicate_unknown() {
        assert_eq!(
            TaskGraphBuilder::new("e").build().unwrap_err(),
            GraphError::Empty
        );

        let mut b = TaskGraphBuilder::new("x");
        let a = b.add_task("a", Cycles::new(1));
        let c = b.add_task("b", Cycles::new(1));
        assert!(matches!(
            b.add_edge(a, a, Cycles::ZERO).unwrap_err(),
            GraphError::SelfLoop { .. }
        ));
        b.add_edge(a, c, Cycles::ZERO).unwrap();
        assert!(matches!(
            b.add_edge(a, c, Cycles::ZERO).unwrap_err(),
            GraphError::DuplicateEdge { .. }
        ));
        assert!(matches!(
            b.add_edge(a, TaskId::new(9), Cycles::ZERO).unwrap_err(),
            GraphError::UnknownTask { .. }
        ));
    }

    #[test]
    fn critical_path_of_chain_counts_comm() {
        let g = chain(3);
        // 10 + 2 + 10 + 2 + 10
        assert_eq!(g.critical_path(), Cycles::new(34));
    }

    #[test]
    fn bottom_levels_decrease_along_chain() {
        let g = chain(3);
        let bl = g.bottom_levels();
        assert_eq!(bl[0], Cycles::new(34));
        assert_eq!(bl[1], Cycles::new(22));
        assert_eq!(bl[2], Cycles::new(10));
    }

    #[test]
    fn reachability() {
        let g = chain(4);
        assert!(g.reaches(TaskId::new(0), TaskId::new(3)));
        assert!(!g.reaches(TaskId::new(3), TaskId::new(0)));
        assert!(g.reaches(TaskId::new(2), TaskId::new(2)));
    }

    #[test]
    fn roots_and_sinks() {
        let g = chain(4);
        assert_eq!(g.roots(), vec![TaskId::new(0)]);
        assert_eq!(g.sinks(), vec![TaskId::new(3)]);
    }

    #[test]
    fn totals() {
        let g = chain(4);
        assert_eq!(g.total_computation(), Cycles::new(40));
        assert_eq!(g.total_communication(), Cycles::new(6));
    }

    #[test]
    fn dot_output_mentions_every_task_and_edge() {
        let g = chain(3);
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("t1 -> t2"));
        assert!(dot.contains("t2 -> t3"));
    }

    #[test]
    fn edge_comm_lookup() {
        let g = chain(3);
        assert_eq!(
            g.edge_comm(TaskId::new(0), TaskId::new(1)),
            Some(Cycles::new(2))
        );
        assert_eq!(g.edge_comm(TaskId::new(0), TaskId::new(2)), None);
    }

    #[test]
    fn serde_round_trip() {
        let g = chain(3);
        let json = serde_json_like(&g);
        assert!(json.contains("chain"));
    }

    // serde_json is not a dependency; exercise Serialize via the debug of the
    // serde data model using a tiny in-house writer instead.
    fn serde_json_like(g: &TaskGraph) -> String {
        // Round-trip through bincode-like in-memory representation is out of
        // scope; simply assert Serialize is implemented by calling it with a
        // no-op serializer substitute: format via Debug as a proxy here.
        format!("{g:?}")
    }
}
