//! An application = task graph + register model + execution profile.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::TaskGraph;
use crate::registers::RegisterModel;
use crate::units::Cycles;

/// How the application executes on the MPSoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// One-shot execution of the DAG (used for the paper's random task
    /// graphs): parallelism comes from DAG branching; makespan is the
    /// list-scheduled finish time.
    Batch,
    /// Streaming execution of `iterations` successive instances of the DAG
    /// (used for the MPEG-2 decoder: one instance per video frame, 437
    /// frames for the `tennis` bitstream). Task costs stored in the graph
    /// are whole-stream totals; per-iteration cost = total / iterations.
    /// Throughput is limited by the busiest core, which is why distributing
    /// tasks reduces the multiprocessor execution time `TM` (§III).
    Pipelined {
        /// Number of iterations (frames) in the stream. Must be ≥ 1.
        iterations: u32,
    },
}

impl ExecutionMode {
    /// Number of iterations the mode executes (1 for batch).
    #[must_use]
    pub fn iterations(self) -> u32 {
        match self {
            ExecutionMode::Batch => 1,
            ExecutionMode::Pipelined { iterations } => iterations,
        }
    }
}

/// A complete application workload for the design-optimization flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    graph: TaskGraph,
    registers: RegisterModel,
    mode: ExecutionMode,
    deadline_s: f64,
}

impl Application {
    /// Bundles a task graph with its register model and timing requirements.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::RegisterModelMismatch`] if the register model
    /// does not cover the graph's tasks, and [`GraphError::InvalidParameter`]
    /// for a non-positive deadline or zero pipeline iterations.
    pub fn new(
        name: impl Into<String>,
        graph: TaskGraph,
        registers: RegisterModel,
        mode: ExecutionMode,
        deadline_s: f64,
    ) -> Result<Self, GraphError> {
        registers.validate_for(graph.len())?;
        if deadline_s.is_nan() || deadline_s <= 0.0 {
            return Err(GraphError::InvalidParameter {
                message: format!("deadline must be positive, got {deadline_s}"),
            });
        }
        if let ExecutionMode::Pipelined { iterations } = mode {
            if iterations == 0 {
                return Err(GraphError::InvalidParameter {
                    message: "pipelined execution needs at least one iteration".into(),
                });
            }
        }
        Ok(Application {
            name: name.into(),
            graph,
            registers,
            mode,
            deadline_s,
        })
    }

    /// The application's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task graph.
    #[must_use]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The register-sharing model.
    #[must_use]
    pub fn registers(&self) -> &RegisterModel {
        &self.registers
    }

    /// The execution mode (batch or pipelined).
    #[must_use]
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The real-time constraint `TMref` in seconds.
    #[must_use]
    pub fn deadline_s(&self) -> f64 {
        self.deadline_s
    }

    /// Returns a copy with a different deadline (for sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for a non-positive deadline.
    pub fn with_deadline(&self, deadline_s: f64) -> Result<Self, GraphError> {
        Application::new(
            self.name.clone(),
            self.graph.clone(),
            self.registers.clone(),
            self.mode,
            deadline_s,
        )
    }

    /// Per-iteration computation cost of a task (total / iterations,
    /// in exact rational cycles as f64 to avoid rounding drift in pipelined
    /// throughput computations).
    #[must_use]
    pub fn per_iteration_cycles(&self, total: Cycles) -> f64 {
        total.as_f64() / f64::from(self.mode.iterations())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;
    use crate::registers::RegisterModelBuilder;
    use crate::units::Bits;

    fn app(mode: ExecutionMode, deadline: f64) -> Result<Application, GraphError> {
        let mut b = TaskGraphBuilder::new("g");
        let a = b.add_task("a", Cycles::new(100));
        let c = b.add_task("b", Cycles::new(100));
        b.add_edge(a, c, Cycles::new(10)).unwrap();
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(2);
        let blk = rm.add_block("x", Bits::new(8));
        rm.assign(a, blk).unwrap();
        rm.assign(c, blk).unwrap();
        Application::new("app", g, rm.build(), mode, deadline)
    }

    #[test]
    fn builds_valid_application() {
        let a = app(ExecutionMode::Batch, 1.0).unwrap();
        assert_eq!(a.name(), "app");
        assert_eq!(a.mode().iterations(), 1);
        assert_eq!(a.deadline_s(), 1.0);
    }

    #[test]
    fn rejects_bad_deadline() {
        assert!(app(ExecutionMode::Batch, 0.0).is_err());
        assert!(app(ExecutionMode::Batch, -2.0).is_err());
        assert!(app(ExecutionMode::Batch, f64::NAN).is_err());
    }

    #[test]
    fn rejects_zero_iterations() {
        assert!(app(ExecutionMode::Pipelined { iterations: 0 }, 1.0).is_err());
        assert!(app(ExecutionMode::Pipelined { iterations: 4 }, 1.0).is_ok());
    }

    #[test]
    fn rejects_register_mismatch() {
        let mut b = TaskGraphBuilder::new("g");
        b.add_task("a", Cycles::new(1));
        let g = b.build().unwrap();
        let rm = RegisterModelBuilder::new(3).build();
        assert!(matches!(
            Application::new("x", g, rm, ExecutionMode::Batch, 1.0).unwrap_err(),
            GraphError::RegisterModelMismatch { .. }
        ));
    }

    #[test]
    fn per_iteration_cycles_divides() {
        let a = app(ExecutionMode::Pipelined { iterations: 4 }, 1.0).unwrap();
        assert_eq!(a.per_iteration_cycles(Cycles::new(100)), 25.0);
    }

    #[test]
    fn with_deadline_replaces_only_deadline() {
        let a = app(ExecutionMode::Batch, 1.0).unwrap();
        let b = a.with_deadline(2.5).unwrap();
        assert_eq!(b.deadline_s(), 2.5);
        assert_eq!(b.graph().len(), a.graph().len());
    }
}
