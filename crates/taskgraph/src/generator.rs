//! Random task-graph generator (paper §V).
//!
//! "The cost and the number of dependents in the random task graphs were
//! generated using uniform probability distribution with computation cost
//! between 1 and 30, communication cost between 1 to 10 (all costs as
//! multiples of 3.5×10⁶ clock cycles), task register usage between 1 kbit to
//! 5 kbit and the number of dependents was found by exponential distribution
//! between 0 to N/2, where N is the number of tasks. The deadline for random
//! task graphs were set to 1000×N/2 ms."
//!
//! The paper does not publish its register-*sharing* structure for random
//! graphs; we let communicating tasks share a block proportional to the edge
//! communication cost (data handed over a dependency edge lives in registers
//! both tasks touch), which exercises exactly the localization/duplication
//! trade-off of §III. Documented as a substitution in DESIGN.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::application::{Application, ExecutionMode};
use crate::error::GraphError;
use crate::graph::TaskGraphBuilder;
use crate::registers::RegisterModelBuilder;
use crate::task::TaskId;
use crate::units::{Bits, Cycles};

/// Configuration of the §V random-workload generator.
///
/// The defaults reproduce the published parameters; every field can be
/// overridden for sensitivity studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomGraphConfig {
    /// Number of tasks `N` (paper: 20, 40, 60, 80, 100).
    pub n_tasks: usize,
    /// Cost unit in cycles (paper: 3.5×10⁶).
    pub cycle_unit: u64,
    /// Computation cost range in units, inclusive (paper: 1..=30).
    pub computation_units: (u64, u64),
    /// Communication cost range in units, inclusive (paper: 1..=10).
    pub communication_units: (u64, u64),
    /// Per-task register footprint range in kbit, inclusive (paper: 1..=5).
    pub register_kbits: (f64, f64),
    /// Mean of the exponential out-degree distribution. The draw is capped
    /// at `N/2` as in the paper. Default 2.0.
    pub mean_dependents: f64,
    /// Fraction of each edge's register traffic that becomes a block shared
    /// by producer and consumer, in kbit per communication unit. Default
    /// 0.35 kbit/unit (substitution; see module docs).
    pub shared_kbits_per_comm_unit: f64,
    /// Deadline in seconds. `None` applies the paper's rule
    /// `1000 · N/2 ms = N/2 s`.
    pub deadline_s: Option<f64>,
}

impl RandomGraphConfig {
    /// The published configuration for a graph of `n_tasks` tasks.
    #[must_use]
    pub fn paper(n_tasks: usize) -> Self {
        RandomGraphConfig {
            n_tasks,
            cycle_unit: 3_500_000,
            computation_units: (1, 30),
            communication_units: (1, 10),
            register_kbits: (1.0, 5.0),
            mean_dependents: 2.0,
            shared_kbits_per_comm_unit: 0.35,
            deadline_s: None,
        }
    }

    /// Effective deadline: explicit override or the paper's `N/2` seconds.
    #[must_use]
    pub fn effective_deadline_s(&self) -> f64 {
        self.deadline_s.unwrap_or(self.n_tasks as f64 / 2.0)
    }

    /// Generates an application from this configuration with a seeded RNG.
    ///
    /// The generator is deterministic for a given `(config, seed)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if ranges are empty or
    /// `n_tasks` is zero.
    pub fn generate(&self, seed: u64) -> Result<Application, GraphError> {
        if self.n_tasks == 0 {
            return Err(GraphError::InvalidParameter {
                message: "random graph needs at least one task".into(),
            });
        }
        for (name, (lo, hi)) in [
            ("computation_units", self.computation_units),
            ("communication_units", self.communication_units),
        ] {
            if lo > hi || lo == 0 {
                return Err(GraphError::InvalidParameter {
                    message: format!("{name} range ({lo}, {hi}) is invalid"),
                });
            }
        }
        if self.register_kbits.0 > self.register_kbits.1 || self.register_kbits.0 <= 0.0 {
            return Err(GraphError::InvalidParameter {
                message: format!("register_kbits range {:?} is invalid", self.register_kbits),
            });
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.n_tasks;
        let mut gb = TaskGraphBuilder::new(format!("random-{n}"));
        for i in 0..n {
            let units = rng.gen_range(self.computation_units.0..=self.computation_units.1);
            gb.add_task(format!("task-{i}"), Cycles::new(units * self.cycle_unit));
        }

        // Out-degree per node: exponential with the configured mean, capped
        // at N/2 (paper). Successors are sampled among strictly later nodes
        // so the graph is acyclic by construction; node ordering acts as a
        // topological order.
        let cap = (n / 2).max(1);
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        for src in 0..n.saturating_sub(1) {
            let draw = sample_exponential(&mut rng, self.mean_dependents);
            let degree = (draw.floor() as usize).min(cap).min(n - 1 - src);
            let mut targets: Vec<usize> = (src + 1..n).collect();
            // Partial Fisher-Yates: pick `degree` distinct successors.
            for k in 0..degree {
                let j = rng.gen_range(k..targets.len());
                targets.swap(k, j);
            }
            for &dst in &targets[..degree] {
                let units = rng.gen_range(self.communication_units.0..=self.communication_units.1);
                edges.push((src, dst, units));
            }
        }
        // Connect orphan non-root nodes to a random earlier node so the graph
        // is a single rooted DAG (matching the paper's single-application
        // workloads rather than a forest of unrelated tasks).
        let mut has_pred = vec![false; n];
        for &(_, dst, _) in &edges {
            has_pred[dst] = true;
        }
        for (dst, pred_known) in has_pred.iter().enumerate().skip(1) {
            if !pred_known {
                let src = rng.gen_range(0..dst);
                let units = rng.gen_range(self.communication_units.0..=self.communication_units.1);
                edges.push((src, dst, units));
            }
        }
        for (src, dst, units) in &edges {
            gb.add_edge(
                TaskId::new(*src),
                TaskId::new(*dst),
                Cycles::new(units * self.cycle_unit),
            )?;
        }
        let graph = gb.build()?;

        // Register model: a private block per task (1-5 kbit, paper) plus a
        // shared block per edge proportional to the communication volume.
        let mut rb = RegisterModelBuilder::new(n);
        for i in 0..n {
            let kbits = rng.gen_range(self.register_kbits.0..=self.register_kbits.1);
            let blk = rb.add_block(format!("priv-{i}"), Bits::from_kbits(kbits));
            rb.assign(TaskId::new(i), blk)?;
        }
        for (src, dst, units) in &edges {
            let kbits = self.shared_kbits_per_comm_unit * *units as f64;
            if kbits > 0.0 {
                rb.add_shared_block(
                    format!("edge-{src}-{dst}"),
                    Bits::from_kbits(kbits),
                    &[TaskId::new(*src), TaskId::new(*dst)],
                )?;
            }
        }

        Application::new(
            format!("random-{n}-seed{seed}"),
            graph,
            rb.build(),
            ExecutionMode::Batch,
            self.effective_deadline_s(),
        )
    }
}

/// Draws from an exponential distribution with the given mean via inverse
/// transform sampling (avoids a dependency on `rand_distr`).
fn sample_exponential(rng: &mut StdRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_published_sizes() {
        for n in [20, 40, 60, 80, 100] {
            let app = RandomGraphConfig::paper(n).generate(42).unwrap();
            assert_eq!(app.graph().len(), n);
            assert_eq!(app.deadline_s(), n as f64 / 2.0);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomGraphConfig::paper(30);
        let a = cfg.generate(7).unwrap();
        let b = cfg.generate(7).unwrap();
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.registers(), b.registers());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomGraphConfig::paper(30);
        let a = cfg.generate(1).unwrap();
        let b = cfg.generate(2).unwrap();
        assert_ne!(a.graph(), b.graph());
    }

    #[test]
    fn costs_respect_published_ranges() {
        let cfg = RandomGraphConfig::paper(50);
        let app = cfg.generate(3).unwrap();
        for task in app.graph().tasks() {
            let units = task.computation().as_u64() / cfg.cycle_unit;
            assert!((1..=30).contains(&units), "computation {units} units");
        }
        for e in app.graph().edges() {
            let units = e.comm.as_u64() / cfg.cycle_unit;
            assert!((1..=10).contains(&units), "communication {units} units");
        }
    }

    #[test]
    fn register_footprints_in_range() {
        let cfg = RandomGraphConfig::paper(40);
        let app = cfg.generate(9).unwrap();
        let m = app.registers();
        for t in app.graph().task_ids() {
            // Private block alone is within 1..=5 kbit; shared edge blocks
            // only add on top.
            let private = m
                .task_blocks(t)
                .iter()
                .map(|&b| m.block(b))
                .find(|blk| blk.name().starts_with("priv-"))
                .expect("every task has a private block");
            let kb = private.bits().as_kbits();
            assert!((1.0..=5.0).contains(&kb), "private {kb} kbit");
        }
    }

    #[test]
    fn single_root_component() {
        let app = RandomGraphConfig::paper(60).generate(11).unwrap();
        // Every non-first task has at least one predecessor.
        let g = app.graph();
        for t in g.task_ids().skip(1) {
            assert!(
                !g.predecessors(t).is_empty(),
                "{t} should have a predecessor"
            );
        }
    }

    #[test]
    fn out_degree_capped_at_half_n() {
        let app = RandomGraphConfig::paper(20).generate(5).unwrap();
        let g = app.graph();
        for t in g.task_ids() {
            assert!(g.successors(t).len() <= 10);
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut cfg = RandomGraphConfig::paper(10);
        cfg.n_tasks = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = RandomGraphConfig::paper(10);
        cfg.computation_units = (5, 2);
        assert!(cfg.generate(0).is_err());
        let mut cfg = RandomGraphConfig::paper(10);
        cfg.register_kbits = (0.0, 1.0);
        assert!(cfg.generate(0).is_err());
    }

    #[test]
    fn exponential_sampler_has_positive_support() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x = sample_exponential(&mut rng, 2.0);
            assert!(x >= 0.0);
        }
    }
}
