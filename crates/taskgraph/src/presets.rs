//! Additional illustrative streaming workloads.
//!
//! The paper evaluates on the MPEG-2 decoder and random graphs; these
//! presets are *synthesized* companions in the same mould — realistic
//! embedded streaming pipelines with register sharing along the data path
//! — useful for examples, tests and for exercising the optimizer on graph
//! shapes the decoder does not cover (wide fan-out, independent chains).
//! They are ours, not the paper's; nothing in EXPERIMENTS.md depends on
//! them.

use crate::application::{Application, ExecutionMode};
use crate::graph::TaskGraphBuilder;
use crate::registers::RegisterModelBuilder;
use crate::task::TaskId;
use crate::units::{Bits, Cycles};

/// Cost unit for the preset pipelines (cycles).
pub const CYCLE_UNIT: u64 = 2_000_000;

/// An eight-task JPEG-style encoder: color conversion fans out into two
/// parallel component chains (downsample → DCT → quantize) that join in
/// entropy coding and bitstream packing.
///
/// ```text
///              t1 color-convert
///             /                \
///   t2 downsample-luma     t3 downsample-chroma
///   t4 dct-luma            t5 dct-chroma
///   t6 quantize (join)
///   t7 entropy-code
///   t8 pack-bitstream
/// ```
#[must_use]
pub fn jpeg_encoder() -> Application {
    let mut b = TaskGraphBuilder::new("jpeg-encoder");
    let costs: [(&str, u64); 8] = [
        ("Color Convert", 18),
        ("Downsample Luma", 12),
        ("Downsample Chroma", 10),
        ("DCT Luma", 30),
        ("DCT Chroma", 24),
        ("Quantize", 16),
        ("Entropy Code", 26),
        ("Pack Bitstream", 8),
    ];
    let ids: Vec<TaskId> = costs
        .iter()
        .map(|(name, units)| b.add_task(*name, Cycles::new(units * CYCLE_UNIT)))
        .collect();
    let edges: [(usize, usize, u64); 8] = [
        (0, 1, 2),
        (0, 2, 2),
        (1, 3, 3),
        (2, 4, 2),
        (3, 5, 3),
        (4, 5, 2),
        (5, 6, 2),
        (6, 7, 1),
    ];
    for (s, d, units) in edges {
        b.add_edge(ids[s], ids[d], Cycles::new(units * CYCLE_UNIT))
            .expect("static edge table is well-formed");
    }
    let graph = b.build().expect("static graph is a DAG");

    let mut rm = RegisterModelBuilder::new(8);
    let privates = [2.0, 1.5, 1.5, 3.0, 2.5, 2.0, 3.0, 1.0];
    for (i, kb) in privates.iter().enumerate() {
        let blk = rm.add_block(format!("priv-{}", i + 1), Bits::from_kbits(*kb));
        rm.assign(ids[i], blk).expect("ids are in range");
    }
    for (name, kb, members) in [
        ("mcu-buffer", 4.0, vec![0, 1, 2]),
        ("luma-plane", 5.0, vec![1, 3]),
        ("chroma-plane", 4.0, vec![2, 4]),
        ("coeff-blocks", 6.0, vec![3, 4, 5]),
        ("q-tables", 2.0, vec![5, 6]),
        ("huffman-tables", 3.0, vec![6, 7]),
    ] {
        let tasks: Vec<TaskId> = members.into_iter().map(|m| ids[m]).collect();
        rm.add_shared_block(name, Bits::from_kbits(kb), &tasks)
            .expect("ids are in range");
    }

    Application::new(
        "jpeg-encoder",
        graph,
        rm.build(),
        ExecutionMode::Pipelined { iterations: 300 },
        9.0,
    )
    .expect("static preset is well-formed")
}

/// A twelve-task software-defined-radio receiver: two antenna chains
/// (filter → demodulate → deinterleave) merge into channel decoding,
/// followed by a serial MAC tail, with a side channel-estimation path.
#[must_use]
pub fn sdr_receiver() -> Application {
    let mut b = TaskGraphBuilder::new("sdr-receiver");
    let costs: [(&str, u64); 12] = [
        ("RF Capture A", 10),
        ("RF Capture B", 10),
        ("FIR Filter A", 22),
        ("FIR Filter B", 22),
        ("Demodulate A", 28),
        ("Demodulate B", 28),
        ("Channel Estimate", 18),
        ("Combine", 14),
        ("Deinterleave", 12),
        ("Viterbi Decode", 40),
        ("CRC Check", 6),
        ("MAC Deliver", 8),
    ];
    let ids: Vec<TaskId> = costs
        .iter()
        .map(|(name, units)| b.add_task(*name, Cycles::new(units * CYCLE_UNIT)))
        .collect();
    let edges: [(usize, usize, u64); 13] = [
        (0, 2, 2),
        (1, 3, 2),
        (2, 4, 2),
        (3, 5, 2),
        (0, 6, 1),
        (6, 7, 1),
        (4, 7, 2),
        (5, 7, 2),
        (7, 8, 2),
        (8, 9, 3),
        (9, 10, 1),
        (10, 11, 1),
        (6, 9, 1),
    ];
    for (s, d, units) in edges {
        b.add_edge(ids[s], ids[d], Cycles::new(units * CYCLE_UNIT))
            .expect("static edge table is well-formed");
    }
    let graph = b.build().expect("static graph is a DAG");

    let mut rm = RegisterModelBuilder::new(12);
    let privates = [1.0, 1.0, 2.5, 2.5, 3.0, 3.0, 2.0, 1.5, 1.5, 4.0, 0.5, 1.0];
    for (i, kb) in privates.iter().enumerate() {
        let blk = rm.add_block(format!("priv-{}", i + 1), Bits::from_kbits(*kb));
        rm.assign(ids[i], blk).expect("ids are in range");
    }
    for (name, kb, members) in [
        ("iq-samples-a", 3.5, vec![0, 2, 4]),
        ("iq-samples-b", 3.5, vec![1, 3, 5]),
        ("channel-state", 3.0, vec![6, 7, 9]),
        ("symbol-buffer", 4.0, vec![4, 5, 7, 8]),
        ("trellis-state", 5.0, vec![8, 9]),
        ("frame-buffer", 2.5, vec![9, 10, 11]),
    ] {
        let tasks: Vec<TaskId> = members.into_iter().map(|m| ids[m]).collect();
        rm.add_shared_block(name, Bits::from_kbits(kb), &tasks)
            .expect("ids are in range");
    }

    Application::new(
        "sdr-receiver",
        graph,
        rm.build(),
        ExecutionMode::Pipelined { iterations: 500 },
        16.0,
    )
    .expect("static preset is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jpeg_encoder_is_well_formed() {
        let app = jpeg_encoder();
        assert_eq!(app.graph().len(), 8);
        assert_eq!(app.graph().roots(), vec![TaskId::new(0)]);
        assert_eq!(app.graph().sinks(), vec![TaskId::new(7)]);
        assert!(app.registers().total_union() > Bits::ZERO);
    }

    #[test]
    fn jpeg_encoder_has_parallel_component_chains() {
        let g = jpeg_encoder().graph().clone();
        // Luma and chroma chains are independent until the quantize join.
        assert!(!g.reaches(TaskId::new(1), TaskId::new(2)));
        assert!(!g.reaches(TaskId::new(3), TaskId::new(4)));
        assert!(g.reaches(TaskId::new(1), TaskId::new(5)));
        assert!(g.reaches(TaskId::new(2), TaskId::new(5)));
    }

    #[test]
    fn sdr_receiver_is_well_formed() {
        let app = sdr_receiver();
        assert_eq!(app.graph().len(), 12);
        assert_eq!(app.graph().roots().len(), 2, "two antenna chains");
        assert_eq!(app.graph().sinks(), vec![TaskId::new(11)]);
    }

    #[test]
    fn sdr_chains_share_registers_along_dataflow() {
        let app = sdr_receiver();
        let m = app.registers();
        // The IQ sample buffers tie each antenna chain together.
        assert!(m.shared_bits(TaskId::new(0), TaskId::new(4)) > Bits::ZERO);
        assert!(m.shared_bits(TaskId::new(1), TaskId::new(5)) > Bits::ZERO);
        // The two chains themselves are register-disjoint.
        assert_eq!(m.shared_bits(TaskId::new(2), TaskId::new(3)), Bits::ZERO);
    }

    #[test]
    fn presets_stream_with_deadlines() {
        // Optimizability on a small MPSoC is covered by the root-level
        // integration tests (the optimizer lives downstream of this crate).
        for app in [jpeg_encoder(), sdr_receiver()] {
            assert!(matches!(
                app.mode(),
                ExecutionMode::Pipelined { iterations } if iterations >= 300
            ));
            assert!(app.deadline_s() > 0.0);
        }
    }
}
