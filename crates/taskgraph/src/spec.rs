//! Textual application specifications shared by every front end.
//!
//! An [`AppSpec`] names a workload without materializing it:
//!
//! * `mpeg2` — the MPEG-2 decoder of Fig. 2,
//! * `fig8` — the Fig. 8 tutorial graph,
//! * `random:<tasks>[:<seed>]` — a §V random workload (seed defaults to
//!   [`DEFAULT_RANDOM_SEED`]).
//!
//! The grammar lives here — not in any one binary — so the `sea-dse` CLI
//! and the `sea-campaign` spec parser accept exactly the same strings.
//! [`FromStr`] and [`std::fmt::Display`] round-trip: parsing a displayed
//! spec yields the original value.

use std::fmt;
use std::str::FromStr;

use crate::generator::RandomGraphConfig;
use crate::{fig8, mpeg2, Application};

/// Generator seed used when a `random:<tasks>` spec omits one.
pub const DEFAULT_RANDOM_SEED: u64 = 7;

/// A parsed application selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppSpec {
    /// The MPEG-2 decoder of Fig. 2.
    Mpeg2,
    /// The Fig. 8 tutorial graph.
    Fig8,
    /// A §V random workload.
    Random {
        /// Task count.
        tasks: usize,
        /// Generator seed.
        seed: u64,
    },
}

/// A malformed or unsatisfiable application spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl AppSpec {
    /// Materializes the application.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the random generator rejects the
    /// parameters.
    pub fn build(self) -> Result<Application, SpecError> {
        match self {
            AppSpec::Mpeg2 => Ok(mpeg2::application()),
            AppSpec::Fig8 => Ok(fig8::application()),
            AppSpec::Random { tasks, seed } => RandomGraphConfig::paper(tasks)
                .generate(seed)
                .map_err(|e| SpecError(format!("cannot generate workload: {e}"))),
        }
    }
}

impl fmt::Display for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppSpec::Mpeg2 => write!(f, "mpeg2"),
            AppSpec::Fig8 => write!(f, "fig8"),
            AppSpec::Random { tasks, seed } => write!(f, "random:{tasks}:{seed}"),
        }
    }
}

impl FromStr for AppSpec {
    type Err = SpecError;

    fn from_str(spec: &str) -> Result<Self, SpecError> {
        match spec {
            "mpeg2" => Ok(AppSpec::Mpeg2),
            "fig8" => Ok(AppSpec::Fig8),
            other => {
                let mut parts = other.split(':');
                if parts.next() != Some("random") {
                    return Err(SpecError(format!(
                        "unknown app spec `{other}` (mpeg2 | fig8 | random:<tasks>[:<seed>])"
                    )));
                }
                let tasks = parts
                    .next()
                    .ok_or_else(|| SpecError("random spec needs a task count".into()))?;
                let tasks: usize = tasks
                    .parse()
                    .map_err(|_| SpecError(format!("cannot parse task count from `{tasks}`")))?;
                let seed = match parts.next() {
                    Some(s) => s
                        .parse()
                        .map_err(|_| SpecError(format!("cannot parse seed from `{s}`")))?,
                    None => DEFAULT_RANDOM_SEED,
                };
                if parts.next().is_some() {
                    return Err(SpecError("too many `:` fields in random spec".into()));
                }
                Ok(AppSpec::Random { tasks, seed })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_presets_and_random_forms() {
        assert_eq!("mpeg2".parse(), Ok(AppSpec::Mpeg2));
        assert_eq!("fig8".parse(), Ok(AppSpec::Fig8));
        assert_eq!(
            "random:40".parse(),
            Ok(AppSpec::Random {
                tasks: 40,
                seed: DEFAULT_RANDOM_SEED
            })
        );
        assert_eq!(
            "random:60:11".parse(),
            Ok(AppSpec::Random {
                tasks: 60,
                seed: 11
            })
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("random".parse::<AppSpec>().is_err());
        assert!("random:x".parse::<AppSpec>().is_err());
        assert!("random:10:1:2".parse::<AppSpec>().is_err());
        assert!("h264".parse::<AppSpec>().is_err());
        assert!("".parse::<AppSpec>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for spec in [
            AppSpec::Mpeg2,
            AppSpec::Fig8,
            AppSpec::Random { tasks: 40, seed: 7 },
            AppSpec::Random {
                tasks: 100,
                seed: 0,
            },
        ] {
            let shown = spec.to_string();
            assert_eq!(shown.parse::<AppSpec>(), Ok(spec), "round trip `{shown}`");
        }
        // Parsing normalizes the implicit seed, then round-trips stably.
        let implicit: AppSpec = "random:40".parse().unwrap();
        assert_eq!(implicit.to_string(), "random:40:7");
    }

    #[test]
    fn specs_build_the_right_applications() {
        assert_eq!(AppSpec::Mpeg2.build().unwrap().graph().len(), 11);
        assert_eq!(AppSpec::Fig8.build().unwrap().graph().len(), 6);
        assert_eq!(
            AppSpec::Random { tasks: 15, seed: 3 }
                .build()
                .unwrap()
                .graph()
                .len(),
            15
        );
    }
}
