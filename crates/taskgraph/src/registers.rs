//! Register-block sharing model (paper §II-B, §III and eq. 8).
//!
//! Each task uses a set of *register blocks* (named, sized in bits). Blocks
//! may be shared among several tasks — e.g. in the paper's MPEG-2 decoder the
//! tasks t5 and t6 share ≈6.4 kbit and t6, t7, t8 share ≈8 kbit. When two
//! sharing tasks are mapped to the *same* core the block exists once; when
//! they are split across cores every core touching the block holds its own
//! copy. Per-core register usage is therefore the cardinality of the union of
//! the blocks of the tasks mapped to that core (eq. 8), and distributing
//! tasks inflates total usage `R = Σ_i R_i` through duplication (§III).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::task::TaskId;
use crate::units::Bits;

/// Identifier of a register block within one [`RegisterModel`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct RegisterBlockId(usize);

impl RegisterBlockId {
    /// Creates a block id from a dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        RegisterBlockId(index)
    }

    /// Returns the dense index of this id.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RegisterBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0 + 1)
    }
}

/// A contiguous block of register state used by one or more tasks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterBlock {
    id: RegisterBlockId,
    name: String,
    bits: Bits,
}

impl RegisterBlock {
    /// The block's id.
    #[must_use]
    pub fn id(&self) -> RegisterBlockId {
        self.id
    }

    /// The block's name (e.g. `"quantizer tables"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block's size in bits.
    #[must_use]
    pub fn bits(&self) -> Bits {
        self.bits
    }
}

/// Per-task register footprints over a shared pool of register blocks.
///
/// ```
/// use sea_taskgraph::registers::RegisterModelBuilder;
/// use sea_taskgraph::task::TaskId;
/// use sea_taskgraph::units::Bits;
///
/// # fn main() -> Result<(), sea_taskgraph::error::GraphError> {
/// let mut b = RegisterModelBuilder::new(2);
/// let shared = b.add_block("shared", Bits::from_kbits(6.4));
/// let own = b.add_block("own", Bits::from_kbits(1.0));
/// b.assign(TaskId::new(0), shared)?;
/// b.assign(TaskId::new(0), own)?;
/// b.assign(TaskId::new(1), shared)?;
/// let m = b.build();
/// // Together the tasks use the union: 6.4 + 1.0 kbit.
/// assert_eq!(m.union_bits([TaskId::new(0), TaskId::new(1)]), Bits::from_kbits(7.4));
/// // Split across two cores, `shared` is duplicated.
/// assert_eq!(m.shared_bits(TaskId::new(0), TaskId::new(1)), Bits::from_kbits(6.4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterModel {
    blocks: Vec<RegisterBlock>,
    /// `task_blocks[t]` = sorted, deduplicated block ids used by task `t`.
    task_blocks: Vec<Vec<RegisterBlockId>>,
}

impl RegisterModel {
    /// Number of tasks this model covers.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.task_blocks.len()
    }

    /// All blocks, in id order.
    #[must_use]
    pub fn blocks(&self) -> &[RegisterBlock] {
        &self.blocks
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    #[must_use]
    pub fn block(&self, id: RegisterBlockId) -> &RegisterBlock {
        &self.blocks[id.index()]
    }

    /// Block ids used by `task`, sorted.
    #[must_use]
    pub fn task_blocks(&self, task: TaskId) -> &[RegisterBlockId] {
        &self.task_blocks[task.index()]
    }

    /// Total footprint of one task (sum of its blocks), the `|R_j|` used for
    /// tie-breaking in the initial mapping heuristic.
    #[must_use]
    pub fn task_footprint(&self, task: TaskId) -> Bits {
        self.task_blocks[task.index()]
            .iter()
            .map(|&b| self.blocks[b.index()].bits())
            .sum()
    }

    /// Register usage of a set of co-located tasks: the cardinality (bits) of
    /// the union of their blocks — eq. (8) of the paper.
    #[must_use]
    pub fn union_bits<I>(&self, tasks: I) -> Bits
    where
        I: IntoIterator<Item = TaskId>,
    {
        let mut seen = vec![false; self.blocks.len()];
        let mut total = Bits::ZERO;
        for t in tasks {
            for &b in &self.task_blocks[t.index()] {
                if !seen[b.index()] {
                    seen[b.index()] = true;
                    total += self.blocks[b.index()].bits();
                }
            }
        }
        total
    }

    /// Incremental usage of adding `candidate` to a core already holding
    /// `occupied_blocks` (a bitmask over blocks). Returns the added bits and
    /// updates the mask. Used on the hot path of mapping heuristics.
    pub fn union_add(&self, occupied_blocks: &mut [bool], candidate: TaskId) -> Bits {
        debug_assert_eq!(occupied_blocks.len(), self.blocks.len());
        let mut added = Bits::ZERO;
        for &b in &self.task_blocks[candidate.index()] {
            if !occupied_blocks[b.index()] {
                occupied_blocks[b.index()] = true;
                added += self.blocks[b.index()].bits();
            }
        }
        added
    }

    /// Bits shared between two tasks (intersection of their block sets).
    ///
    /// The paper quantifies this for MPEG-2: `shared_bits(t5, t6) ≈ 6.4 kbit`.
    #[must_use]
    pub fn shared_bits(&self, a: TaskId, b: TaskId) -> Bits {
        let sa = &self.task_blocks[a.index()];
        let sb = &self.task_blocks[b.index()];
        sa.iter()
            .filter(|x| sb.contains(x))
            .map(|&x| self.blocks[x.index()].bits())
            .sum()
    }

    /// Bits used by *every* task of `tasks` (intersection across the group).
    #[must_use]
    pub fn shared_bits_among(&self, tasks: &[TaskId]) -> Bits {
        match tasks.split_first() {
            None => Bits::ZERO,
            Some((&first, rest)) => self.task_blocks[first.index()]
                .iter()
                .filter(|b| rest.iter().all(|t| self.task_blocks[t.index()].contains(b)))
                .map(|&b| self.blocks[b.index()].bits())
                .sum(),
        }
    }

    /// Register usage of the whole application if every task were co-located
    /// on a single core (the duplication-free minimum).
    #[must_use]
    pub fn total_union(&self) -> Bits {
        self.union_bits((0..self.n_tasks()).map(TaskId::new))
    }

    /// Duplicated bits induced by a partition of tasks into core groups:
    /// `Σ_blocks (copies - 1) · size` where `copies` is the number of groups
    /// touching the block. Total usage = `total_union() + duplication`.
    #[must_use]
    pub fn duplication_bits(&self, groups: &[Vec<TaskId>]) -> Bits {
        let mut copies = vec![0u32; self.blocks.len()];
        for group in groups {
            let mut touched = vec![false; self.blocks.len()];
            for &t in group {
                for &b in &self.task_blocks[t.index()] {
                    touched[b.index()] = true;
                }
            }
            for (i, &hit) in touched.iter().enumerate() {
                if hit {
                    copies[i] += 1;
                }
            }
        }
        copies
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 1)
            .map(|(i, &c)| self.blocks[i].bits() * u64::from(c - 1))
            .sum()
    }

    /// Checks that the model covers exactly the tasks of a graph with
    /// `graph_tasks` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::RegisterModelMismatch`] on a size mismatch.
    pub fn validate_for(&self, graph_tasks: usize) -> Result<(), GraphError> {
        if self.n_tasks() != graph_tasks {
            return Err(GraphError::RegisterModelMismatch {
                model_tasks: self.n_tasks(),
                graph_tasks,
            });
        }
        Ok(())
    }
}

/// Incremental builder for [`RegisterModel`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct RegisterModelBuilder {
    blocks: Vec<RegisterBlock>,
    task_blocks: Vec<Vec<RegisterBlockId>>,
}

impl RegisterModelBuilder {
    /// Starts a model covering `n_tasks` tasks (ids `0..n_tasks`).
    #[must_use]
    pub fn new(n_tasks: usize) -> Self {
        RegisterModelBuilder {
            blocks: Vec::new(),
            task_blocks: vec![Vec::new(); n_tasks],
        }
    }

    /// Adds a register block of `bits` bits and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>, bits: Bits) -> RegisterBlockId {
        let id = RegisterBlockId::new(self.blocks.len());
        self.blocks.push(RegisterBlock {
            id,
            name: name.into(),
            bits,
        });
        id
    }

    /// Declares that `task` uses `block`. Repeated assignments are idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] or [`GraphError::UnknownBlock`]
    /// if either id is out of range.
    pub fn assign(&mut self, task: TaskId, block: RegisterBlockId) -> Result<(), GraphError> {
        if task.index() >= self.task_blocks.len() {
            return Err(GraphError::UnknownTask {
                task,
                len: self.task_blocks.len(),
            });
        }
        if block.index() >= self.blocks.len() {
            return Err(GraphError::UnknownBlock {
                block: block.index(),
                len: self.blocks.len(),
            });
        }
        let list = &mut self.task_blocks[task.index()];
        if !list.contains(&block) {
            list.push(block);
        }
        Ok(())
    }

    /// Convenience: adds a block and assigns it to all `tasks` at once.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] if any task id is out of range.
    pub fn add_shared_block(
        &mut self,
        name: impl Into<String>,
        bits: Bits,
        tasks: &[TaskId],
    ) -> Result<RegisterBlockId, GraphError> {
        let id = self.add_block(name, bits);
        for &t in tasks {
            self.assign(t, id)?;
        }
        Ok(id)
    }

    /// Freezes the model. Block lists are sorted for determinism.
    #[must_use]
    pub fn build(mut self) -> RegisterModel {
        for list in &mut self.task_blocks {
            list.sort_unstable();
        }
        RegisterModel {
            blocks: self.blocks,
            task_blocks: self.task_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId::new(i)
    }

    /// Three tasks: t0 {a}, t1 {a, b}, t2 {b, c}.
    fn model() -> RegisterModel {
        let mut b = RegisterModelBuilder::new(3);
        let a = b.add_block("a", Bits::new(100));
        let bb = b.add_block("b", Bits::new(200));
        let c = b.add_block("c", Bits::new(400));
        b.assign(t(0), a).unwrap();
        b.assign(t(1), a).unwrap();
        b.assign(t(1), bb).unwrap();
        b.assign(t(2), bb).unwrap();
        b.assign(t(2), c).unwrap();
        b.build()
    }

    #[test]
    fn union_deduplicates_shared_blocks() {
        let m = model();
        assert_eq!(m.union_bits([t(0), t(1)]), Bits::new(300));
        assert_eq!(m.union_bits([t(0), t(1), t(2)]), Bits::new(700));
        assert_eq!(m.total_union(), Bits::new(700));
    }

    #[test]
    fn footprints() {
        let m = model();
        assert_eq!(m.task_footprint(t(0)), Bits::new(100));
        assert_eq!(m.task_footprint(t(1)), Bits::new(300));
        assert_eq!(m.task_footprint(t(2)), Bits::new(600));
    }

    #[test]
    fn pairwise_and_group_sharing() {
        let m = model();
        assert_eq!(m.shared_bits(t(0), t(1)), Bits::new(100));
        assert_eq!(m.shared_bits(t(1), t(2)), Bits::new(200));
        assert_eq!(m.shared_bits(t(0), t(2)), Bits::ZERO);
        assert_eq!(m.shared_bits_among(&[t(0), t(1), t(2)]), Bits::ZERO);
        assert_eq!(m.shared_bits_among(&[t(1), t(2)]), Bits::new(200));
        assert_eq!(m.shared_bits_among(&[]), Bits::ZERO);
    }

    #[test]
    fn duplication_counts_block_copies() {
        let m = model();
        // {t0} {t1} {t2}: block a on two cores (+100), b on two cores (+200).
        let dup = m.duplication_bits(&[vec![t(0)], vec![t(1)], vec![t(2)]]);
        assert_eq!(dup, Bits::new(300));
        // {t0, t1} {t2}: only b is split.
        let dup = m.duplication_bits(&[vec![t(0), t(1)], vec![t(2)]]);
        assert_eq!(dup, Bits::new(200));
        // Everything together: no duplication.
        let dup = m.duplication_bits(&[vec![t(0), t(1), t(2)]]);
        assert_eq!(dup, Bits::ZERO);
    }

    #[test]
    fn union_total_equals_union_plus_duplication() {
        let m = model();
        let groups = vec![vec![t(0)], vec![t(1), t(2)]];
        let per_core: Bits = groups.iter().map(|g| m.union_bits(g.iter().copied())).sum();
        assert_eq!(per_core, m.total_union() + m.duplication_bits(&groups));
    }

    #[test]
    fn incremental_union_matches_batch() {
        let m = model();
        let mut mask = vec![false; m.blocks().len()];
        let mut total = Bits::ZERO;
        total += m.union_add(&mut mask, t(1));
        total += m.union_add(&mut mask, t(2));
        assert_eq!(total, m.union_bits([t(1), t(2)]));
        // Re-adding is free.
        assert_eq!(m.union_add(&mut mask, t(1)), Bits::ZERO);
    }

    #[test]
    fn assign_is_idempotent_and_validated() {
        let mut b = RegisterModelBuilder::new(1);
        let blk = b.add_block("x", Bits::new(8));
        b.assign(t(0), blk).unwrap();
        b.assign(t(0), blk).unwrap();
        assert!(matches!(
            b.assign(t(5), blk).unwrap_err(),
            GraphError::UnknownTask { .. }
        ));
        assert!(matches!(
            b.assign(t(0), RegisterBlockId::new(9)).unwrap_err(),
            GraphError::UnknownBlock { .. }
        ));
        let m = b.build();
        assert_eq!(m.task_blocks(t(0)).len(), 1);
    }

    #[test]
    fn validate_for_checks_task_count() {
        let m = model();
        assert!(m.validate_for(3).is_ok());
        assert!(matches!(
            m.validate_for(4).unwrap_err(),
            GraphError::RegisterModelMismatch { .. }
        ));
    }

    #[test]
    fn add_shared_block_assigns_all() {
        let mut b = RegisterModelBuilder::new(3);
        b.add_shared_block("s", Bits::new(64), &[t(0), t(2)])
            .unwrap();
        let m = b.build();
        assert_eq!(m.shared_bits(t(0), t(2)), Bits::new(64));
        assert_eq!(m.task_footprint(t(1)), Bits::ZERO);
    }

    #[test]
    fn block_display_and_accessors() {
        let m = model();
        let blk = m.block(RegisterBlockId::new(0));
        assert_eq!(blk.name(), "a");
        assert_eq!(blk.bits(), Bits::new(100));
        assert_eq!(blk.id().to_string(), "r1");
    }
}
