//! Structure-of-arrays view of an [`Application`]'s task graph.
//!
//! [`TaskGraph`] stores tasks as a vector of structs with per-task
//! adjacency vectors — convenient to build and mutate, but the list
//! scheduler's hot loop pays a pointer chase per predecessor edge and a
//! `Vec<Vec<_>>` indirection per task. [`TaskGraphSoa`] flattens
//! everything the scheduler reads into contiguous arrays, built **once**
//! per application and immutable afterwards:
//!
//! * per-task worst-case execution cycles ([`TaskGraphSoa::wcec`]) as
//!   `f64`, matching the `Cycles::as_f64` conversion the scheduler
//!   performed per visit;
//! * predecessor and successor adjacency in CSR form (offsets plus a
//!   flat `(task, comm_cycles)` array, preserving the graph's insertion
//!   order so iteration visits edges in exactly the order
//!   `TaskGraph::predecessors` does);
//! * per-task predecessor counts and bottom levels (downstream critical
//!   paths, the list scheduler's priority key);
//! * the **static schedule order** ([`TaskGraphSoa::schedule_order`]):
//!   the sequence in which bottom-level list scheduling visits tasks.
//!
//! The static order is the key enabler for incremental evaluation
//! (`sea-sched`'s `IncrementalEvaluator`). The scheduler picks, among
//! ready tasks, the one with the highest bottom level, breaking ties on
//! the smaller task id — a *total* order on distinct tasks that depends
//! only on the graph, never on the mapping or scaling. The visit
//! sequence is therefore a fixed topological order that can be
//! precomputed here; a candidate evaluation just walks it, and a
//! single-task move can replay only the suffix at and after the moved
//! task's position ([`TaskGraphSoa::position`]).
//!
//! [`TaskGraphSoa::shared`] memoizes the view per `Arc<Application>` so
//! campaign units that share an application (and the per-scaling workers
//! inside one unit) reuse one build instead of re-deriving bottom levels
//! per unit.

use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::application::Application;
use crate::graph::TaskGraph;
use crate::task::TaskId;
use crate::units::Cycles;

/// Immutable, cache-friendly arrays describing one application's task
/// graph, in exactly the layout the list scheduler consumes.
///
/// Built by [`TaskGraphSoa::new`] (or memoized via
/// [`TaskGraphSoa::shared`]); all accessors are O(1) slices into
/// contiguous storage.
#[derive(Debug, Clone)]
pub struct TaskGraphSoa {
    n: usize,
    /// Per-task computation cost in cycles, pre-converted to `f64`.
    wcec: Vec<f64>,
    /// CSR offsets into `pred_adj`: task `t`'s predecessors live at
    /// `pred_adj[pred_off[t] .. pred_off[t + 1]]`.
    pred_off: Vec<u32>,
    /// Flat `(predecessor index, comm cycles as f64)` pairs, insertion
    /// order per task (matches `TaskGraph::predecessors`).
    pred_adj: Vec<(u32, f64)>,
    /// CSR offsets into `succ_adj` (same layout as `pred_off`).
    succ_off: Vec<u32>,
    /// Flat `(successor index, comm cycles as f64)` pairs.
    succ_adj: Vec<(u32, f64)>,
    /// Number of predecessors per task (the list scheduler's initial
    /// pending counts).
    pred_count: Vec<u32>,
    /// Downstream critical path per task (the scheduling priority).
    bottom_levels: Vec<Cycles>,
    /// The static visit sequence of bottom-level list scheduling; a
    /// topological order of the graph.
    order: Vec<TaskId>,
    /// Inverse of `order`: `pos[t.index()]` is the step at which task
    /// `t` is scheduled.
    pos: Vec<u32>,
    /// The application's deadline in seconds.
    deadline_s: f64,
    /// Sum of all per-task computation costs, in cycles.
    total_wcec: f64,
    /// Largest single-task computation cost, in cycles.
    max_wcec: f64,
    /// Computation-only critical path in cycles: the longest path through
    /// the DAG counting task costs but **no** communication. Unlike
    /// [`TaskGraphSoa::bottom_levels`] (which include edge costs because
    /// the list scheduler's priority must anticipate communication), this
    /// is a valid ingredient for mapping-independent `TM` lower bounds —
    /// communication is only charged when an edge crosses cores, which a
    /// bound quantifying over *all* mappings cannot assume.
    comp_critical_path: f64,
}

impl TaskGraphSoa {
    /// Builds the structure-of-arrays view for an application.
    #[must_use]
    pub fn new(app: &Application) -> Self {
        Self::from_graph(app.graph(), app.deadline_s())
    }

    /// Builds the view from a bare graph and deadline.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` tasks (far beyond
    /// the paper's design spaces).
    #[must_use]
    pub fn from_graph(g: &TaskGraph, deadline_s: f64) -> Self {
        let n = g.len();
        assert!(u32::try_from(n).is_ok(), "task count exceeds u32 range");
        let wcec: Vec<f64> = g
            .task_ids()
            .map(|t| g.task(t).computation().as_f64())
            .collect();

        let mut pred_off = Vec::with_capacity(n + 1);
        let mut pred_adj = Vec::new();
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_adj = Vec::new();
        let mut pred_count = Vec::with_capacity(n);
        pred_off.push(0u32);
        succ_off.push(0u32);
        for t in g.task_ids() {
            for &(p, comm) in g.predecessors(t) {
                pred_adj.push((p.index() as u32, comm.as_f64()));
            }
            for &(s, comm) in g.successors(t) {
                succ_adj.push((s.index() as u32, comm.as_f64()));
            }
            pred_off.push(pred_adj.len() as u32);
            succ_off.push(succ_adj.len() as u32);
            pred_count.push(g.predecessors(t).len() as u32);
        }

        let bottom_levels = g.bottom_levels();
        let (order, pos) =
            static_schedule_order(n, &pred_count, &succ_off, &succ_adj, &bottom_levels);

        let total_wcec: f64 = wcec.iter().sum();
        let max_wcec = wcec.iter().fold(0.0f64, |acc, &w| acc.max(w));
        // Computation-only downstream critical path, walked in reverse
        // topological order (`order` is topological, so every successor's
        // value is final before its predecessors read it).
        let mut comp_bl = vec![0.0f64; n];
        for &t in order.iter().rev() {
            let i = t.index();
            let tail = succ_adj[succ_off[i] as usize..succ_off[i + 1] as usize]
                .iter()
                .fold(0.0f64, |acc, &(s, _)| acc.max(comp_bl[s as usize]));
            comp_bl[i] = wcec[i] + tail;
        }
        let comp_critical_path = comp_bl.iter().fold(0.0f64, |acc, &x| acc.max(x));

        TaskGraphSoa {
            n,
            wcec,
            pred_off,
            pred_adj,
            succ_off,
            succ_adj,
            pred_count,
            bottom_levels,
            order,
            pos,
            deadline_s,
            total_wcec,
            max_wcec,
            comp_critical_path,
        }
    }

    /// Memoized view for a shared application: repeated calls with the
    /// *same* `Arc<Application>` (pointer identity) return the same
    /// `Arc<TaskGraphSoa>` without rebuilding. Entries are dropped once
    /// the application itself is dropped, so the registry cannot grow
    /// beyond the set of live applications.
    #[must_use]
    pub fn shared(app: &Arc<Application>) -> Arc<TaskGraphSoa> {
        type Registry = Mutex<Vec<(Weak<Application>, Arc<TaskGraphSoa>)>>;
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        let registry = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
        let mut entries = registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        entries.retain(|(weak, _)| weak.strong_count() > 0);
        for (weak, soa) in entries.iter() {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, app) {
                    return Arc::clone(soa);
                }
            }
        }
        let soa = Arc::new(TaskGraphSoa::new(app));
        entries.push((Arc::downgrade(app), Arc::clone(&soa)));
        soa
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true for an empty graph.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Per-task computation cost in cycles (as `f64`).
    #[must_use]
    pub fn wcec(&self, t: TaskId) -> f64 {
        self.wcec[t.index()]
    }

    /// Predecessor edges of `t` as `(producer index, comm cycles)`, in
    /// the graph's insertion order.
    #[must_use]
    pub fn predecessors(&self, t: TaskId) -> &[(u32, f64)] {
        let i = t.index();
        &self.pred_adj[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Successor edges of `t` as `(consumer index, comm cycles)`, in the
    /// graph's insertion order.
    #[must_use]
    pub fn successors(&self, t: TaskId) -> &[(u32, f64)] {
        let i = t.index();
        &self.succ_adj[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Number of predecessors of each task, indexed by task id.
    #[must_use]
    pub fn pred_counts(&self) -> &[u32] {
        &self.pred_count
    }

    /// Downstream critical path (bottom level) per task.
    #[must_use]
    pub fn bottom_levels(&self) -> &[Cycles] {
        &self.bottom_levels
    }

    /// The static visit sequence of bottom-level list scheduling — a
    /// topological order independent of mapping and scaling.
    #[must_use]
    pub fn schedule_order(&self) -> &[TaskId] {
        &self.order
    }

    /// The step at which `t` is scheduled (inverse of
    /// [`TaskGraphSoa::schedule_order`]).
    #[must_use]
    pub fn position(&self, t: TaskId) -> usize {
        self.pos[t.index()] as usize
    }

    /// The application deadline in seconds.
    #[must_use]
    pub fn deadline_s(&self) -> f64 {
        self.deadline_s
    }

    /// Total computation cost of all tasks, in cycles.
    #[must_use]
    pub fn total_wcec(&self) -> f64 {
        self.total_wcec
    }

    /// Largest single-task computation cost, in cycles.
    #[must_use]
    pub fn max_wcec(&self) -> f64 {
        self.max_wcec
    }

    /// Computation-only critical path in cycles (no communication —
    /// see the field docs for why bounds need this instead of
    /// [`TaskGraphSoa::bottom_levels`]).
    #[must_use]
    pub fn comp_critical_path(&self) -> f64 {
        self.comp_critical_path
    }
}

/// Simulates the list scheduler's ready-set evolution to precompute the
/// visit sequence. Selection — highest bottom level, ties to the smaller
/// task id — is a total order on distinct tasks, so the winner at each
/// step is unique and independent of how the ready set is stored; and
/// since tasks become ready exactly when their last predecessor is
/// *selected* (finishing order never reorders selection), the sequence
/// depends only on the graph.
fn static_schedule_order(
    n: usize,
    pred_count: &[u32],
    succ_off: &[u32],
    succ_adj: &[(u32, f64)],
    bl: &[Cycles],
) -> (Vec<TaskId>, Vec<u32>) {
    let mut pending: Vec<u32> = pred_count.to_vec();
    let mut ready: Vec<usize> = (0..n).filter(|&t| pending[t] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut pos = vec![0u32; n];
    while order.len() < n {
        let (slot, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| bl[a].cmp(&bl[b]).then_with(|| b.cmp(&a)))
            .expect("ready set non-empty while tasks remain (graph is a DAG)");
        let t = ready.swap_remove(slot);
        pos[t] = order.len() as u32;
        order.push(TaskId::new(t));
        for &(s, _) in &succ_adj[succ_off[t] as usize..succ_off[t + 1] as usize] {
            let s = s as usize;
            pending[s] -= 1;
            if pending[s] == 0 {
                ready.push(s);
            }
        }
    }
    (order, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;
    use crate::mpeg2;

    #[test]
    fn csr_matches_graph_adjacency() {
        let app = mpeg2::application();
        let g = app.graph();
        let soa = TaskGraphSoa::new(&app);
        assert_eq!(soa.len(), g.len());
        for t in g.task_ids() {
            assert_eq!(soa.wcec(t), g.task(t).computation().as_f64());
            let preds: Vec<(u32, f64)> = g
                .predecessors(t)
                .iter()
                .map(|&(p, c)| (p.index() as u32, c.as_f64()))
                .collect();
            assert_eq!(soa.predecessors(t), preds.as_slice());
            let succs: Vec<(u32, f64)> = g
                .successors(t)
                .iter()
                .map(|&(s, c)| (s.index() as u32, c.as_f64()))
                .collect();
            assert_eq!(soa.successors(t), succs.as_slice());
            assert_eq!(
                soa.pred_counts()[t.index()] as usize,
                g.predecessors(t).len()
            );
        }
        assert_eq!(soa.bottom_levels(), g.bottom_levels().as_slice());
        assert_eq!(soa.deadline_s(), app.deadline_s());
    }

    #[test]
    fn schedule_order_is_topological_and_complete() {
        let app = mpeg2::application();
        let soa = TaskGraphSoa::new(&app);
        let n = soa.len();
        assert_eq!(soa.schedule_order().len(), n);
        let mut seen = vec![false; n];
        for (step, &t) in soa.schedule_order().iter().enumerate() {
            assert_eq!(soa.position(t), step);
            for &(p, _) in soa.predecessors(t) {
                assert!(seen[p as usize], "predecessor scheduled before {t:?}");
            }
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn schedule_order_prefers_bottom_level() {
        // head -> tail chain plus an independent task: head's bottom level
        // dominates, so it is visited first; solo (higher id, lower
        // priority) comes after.
        let mut b = TaskGraphBuilder::new("prio");
        let head = b.add_task("head", Cycles::new(100));
        let tail = b.add_task("tail", Cycles::new(400));
        let solo = b.add_task("solo", Cycles::new(100));
        b.add_edge(head, tail, Cycles::ZERO).unwrap();
        let g = b.build().unwrap();
        let soa = TaskGraphSoa::from_graph(&g, 1.0);
        assert_eq!(soa.schedule_order()[0], head);
        assert_eq!(soa.schedule_order()[2], solo);
    }

    #[test]
    fn work_aggregates_match_graph() {
        let app = mpeg2::application();
        let g = app.graph();
        let soa = TaskGraphSoa::new(&app);
        let total: f64 = g.task_ids().map(|t| g.task(t).computation().as_f64()).sum();
        let max = g
            .task_ids()
            .map(|t| g.task(t).computation().as_f64())
            .fold(0.0f64, f64::max);
        assert_eq!(soa.total_wcec(), total);
        assert_eq!(soa.max_wcec(), max);
        // The computation-only critical path ignores edge costs, so it is
        // bounded by the comm-inclusive bottom level and by the total
        // work, and is at least the heaviest task.
        let bl_max = g
            .bottom_levels()
            .iter()
            .map(|c| c.as_f64())
            .fold(0.0f64, f64::max);
        assert!(soa.comp_critical_path() <= bl_max);
        assert!(soa.comp_critical_path() <= total);
        assert!(soa.comp_critical_path() >= max);
    }

    #[test]
    fn comp_critical_path_follows_longest_chain() {
        // head(100) -> tail(400) chain: comp CP = 500, even with a heavy
        // edge cost that bottom levels would count.
        let mut b = TaskGraphBuilder::new("cp");
        let head = b.add_task("head", Cycles::new(100));
        let tail = b.add_task("tail", Cycles::new(400));
        let _solo = b.add_task("solo", Cycles::new(450));
        b.add_edge(head, tail, Cycles::new(10_000)).unwrap();
        let g = b.build().unwrap();
        let soa = TaskGraphSoa::from_graph(&g, 1.0);
        assert_eq!(soa.comp_critical_path(), 500.0);
        assert_eq!(soa.max_wcec(), 450.0);
        assert_eq!(soa.total_wcec(), 950.0);
    }

    #[test]
    fn shared_memoizes_per_application_pointer() {
        let app = Arc::new(mpeg2::application());
        let a = TaskGraphSoa::shared(&app);
        let b = TaskGraphSoa::shared(&app);
        assert!(Arc::ptr_eq(&a, &b));
        // A distinct Arc with equal contents gets its own entry.
        let clone = Arc::new(mpeg2::application());
        let c = TaskGraphSoa::shared(&clone);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), a.len());
    }
}
