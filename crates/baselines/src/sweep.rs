//! Random-mapping sweeps — the study behind Fig. 3.
//!
//! Section III evaluates 120 task mappings of the MPEG-2 decoder on the
//! four-core MPSoC and plots (a) register usage vs. execution time,
//! (b)/(c) SEUs experienced vs. execution time at uniform scalings 1 and 2.
//! This module generates such mapping populations (complete, all cores
//! occupied, duplicate-free) and evaluates them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sea_arch::{CoreId, ScalingVector};
use sea_opt::OptError;
use sea_sched::metrics::{EvalContext, MappingEvaluation};
use sea_sched::Mapping;

/// One evaluated point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The sampled mapping.
    pub mapping: Mapping,
    /// Its evaluation under the sweep's scaling vector.
    pub evaluation: MappingEvaluation,
}

/// Generates `count` distinct random complete mappings (every core
/// occupied when `N ≥ C`) and evaluates them under `scaling`.
///
/// Deterministic for a given seed; duplicate mappings are re-drawn (up to a
/// bounded number of attempts, so tiny graphs with fewer distinct mappings
/// than `count` still terminate).
///
/// # Errors
///
/// Propagates evaluation errors ([`OptError::Sched`]).
pub fn random_mapping_sweep(
    ctx: &EvalContext<'_>,
    scaling: &ScalingVector,
    count: usize,
    seed: u64,
) -> Result<Vec<SweepPoint>, OptError> {
    let n = ctx.app().graph().len();
    let n_cores = ctx.arch().n_cores();
    let require_all = n >= n_cores;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: Vec<Mapping> = Vec::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(50).max(1_000);

    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let mut assign: Vec<CoreId> = (0..n)
            .map(|_| CoreId::new(rng.gen_range(0..n_cores)))
            .collect();
        if require_all {
            // Repair: place one random task on each unused core.
            for c in 0..n_cores {
                if !assign.iter().any(|x| x.index() == c) {
                    let t = rng.gen_range(0..n);
                    assign[t] = CoreId::new(c);
                }
            }
        }
        let mapping = Mapping::try_new(assign, n_cores)?;
        if require_all && !mapping.uses_all_cores() {
            continue;
        }
        if seen.contains(&mapping) {
            continue;
        }
        let evaluation = ctx.evaluate(&mapping, scaling)?;
        seen.push(mapping.clone());
        out.push(SweepPoint {
            mapping,
            evaluation,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::{Architecture, LevelSet};
    use sea_taskgraph::mpeg2;

    fn setup() -> (sea_taskgraph::Application, Architecture) {
        (
            mpeg2::application(),
            Architecture::homogeneous(4, LevelSet::arm7_three_level()),
        )
    }

    #[test]
    fn produces_requested_population() {
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::all_nominal(&arch);
        let points = random_mapping_sweep(&ctx, &s, 120, 42).unwrap();
        assert_eq!(points.len(), 120);
        for p in &points {
            assert!(p.mapping.uses_all_cores());
        }
    }

    #[test]
    fn population_is_duplicate_free_and_deterministic() {
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::all_nominal(&arch);
        let a = random_mapping_sweep(&ctx, &s, 40, 7).unwrap();
        let b = random_mapping_sweep(&ctx, &s, 40, 7).unwrap();
        for i in 0..40 {
            assert_eq!(a[i].mapping, b[i].mapping);
        }
        for i in 0..40 {
            for j in (i + 1)..40 {
                assert_ne!(a[i].mapping, a[j].mapping);
            }
        }
    }

    #[test]
    fn sweep_exposes_r_tm_tradeoff() {
        // The defining observation of Fig. 3(a): across the population the
        // lowest-R mapping runs longer than the lowest-TM mapping.
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::all_nominal(&arch);
        let points = random_mapping_sweep(&ctx, &s, 120, 42).unwrap();
        let min_r = points
            .iter()
            .min_by(|a, b| a.evaluation.r_total.cmp(&b.evaluation.r_total))
            .unwrap();
        let min_tm = points
            .iter()
            .min_by(|a, b| a.evaluation.tm_seconds.total_cmp(&b.evaluation.tm_seconds))
            .unwrap();
        assert!(min_r.evaluation.tm_seconds > min_tm.evaluation.tm_seconds);
        assert!(min_tm.evaluation.r_total > min_r.evaluation.r_total);
    }

    #[test]
    fn tiny_graphs_terminate_without_enough_distinct_mappings() {
        let mut b = sea_taskgraph::graph::TaskGraphBuilder::new("two");
        use sea_taskgraph::units::{Bits, Cycles};
        let t0 = b.add_task("a", Cycles::new(100));
        let _t1 = b.add_task("b", Cycles::new(100));
        let g = b.build().unwrap();
        let mut rm = sea_taskgraph::registers::RegisterModelBuilder::new(2);
        let blk = rm.add_block("x", Bits::new(8));
        rm.assign(t0, blk).unwrap();
        let app = sea_taskgraph::Application::new(
            "two",
            g,
            rm.build(),
            sea_taskgraph::ExecutionMode::Batch,
            1.0,
        )
        .unwrap();
        let arch = Architecture::homogeneous(2, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::all_nominal(&arch);
        // Only two complete 2-core mappings of 2 tasks exist.
        let points = random_mapping_sweep(&ctx, &s, 50, 3).unwrap();
        assert!(points.len() <= 2);
        assert!(!points.is_empty());
    }
}
