//! Simulated-annealing task mapping (the paper's ref. \[13\], used by the
//! soft error-unaware experiments Exp:1–Exp:3).
//!
//! Standard geometric-cooling annealing over the task-movement
//! neighbourhood: start from a topology-aware balanced mapping, propose a
//! random relocation/swap, always accept improvements, accept regressions
//! with probability `exp(−Δ/T)` where `Δ` is the *relative* score increase
//! (scale-free, so one schedule works for register-usage and
//! execution-time objectives alike).
//!
//! The proposal loop runs on the same allocation-free machinery as the
//! proposed flow's search ([`sea_opt::optimized`]): moves are drawn by
//! index from the lazy neighbourhood, applied in place and undone via the
//! inverse move on rejection, and candidates are evaluated through the
//! delta-based [`IncrementalEvaluator`] into `Copy` summaries (bitwise
//! identical to the full path — see the README's "Engine internals"). The
//! budget-parity contract therefore keeps comparing mapping *objectives*,
//! not allocator pressure: both flows pay the same per-candidate cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sea_arch::{CoreId, ScalingVector};
use sea_opt::clock::{Clock, WallClock};
use sea_opt::optimized::{apply_counted, move_keeps_all_cores, neighbourhood_len_from_counts};
use sea_opt::{OptError, SearchBudget};
use sea_sched::metrics::{EvalContext, EvalSummary, MappingEvaluation};
use sea_sched::{IncrementalEvaluator, Mapping};

use crate::objectives::Objective;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Number of proposals (evaluations).
    pub iterations: usize,
    /// Initial temperature on the relative-delta scale.
    pub initial_temperature: f64,
    /// Geometric cooling factor per proposal.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Optional wall-clock cap, carried over from the search budget so a
    /// time-limited budget bounds the annealer too (its `iterations` are
    /// effectively unbounded in that mode).
    pub time_limit: Option<std::time::Duration>,
}

impl SaConfig {
    /// Derives an annealing schedule comparable to a local-search budget,
    /// with a cooling rate that reaches ~1 % of the initial temperature at
    /// the end. One annealing run gets the same evaluation count as one of
    /// the proposed flow's per-scaling searches — the paper grants both
    /// mapping stages the same per-problem wall-clock (40 minutes per
    /// scaling), so matched-scaling comparisons like Figs. 9/10 measure
    /// mapping quality, not budget asymmetry.
    #[must_use]
    pub fn from_budget(budget: SearchBudget, seed: u64) -> Self {
        let iterations = budget.max_evaluations.max(100);
        // T_end / T_0 = 0.01 over the schedule — the same derivation the
        // proposed flow's annealer uses, so the flows stay budget-matched.
        let cooling = sea_opt::optimized::geometric_cooling(iterations);
        SaConfig {
            iterations,
            initial_temperature: 0.1,
            cooling,
            seed,
            time_limit: budget.time_limit,
        }
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig::from_budget(SearchBudget::default(), 0x5A)
    }
}

/// Outcome of one annealing run.
#[derive(Debug, Clone)]
pub struct SaOutcome {
    /// Best mapping found (by penalized objective).
    pub mapping: Mapping,
    /// Evaluation of the best mapping.
    pub evaluation: MappingEvaluation,
    /// Evaluations spent.
    pub evaluations: usize,
}

/// Simulated-annealing mapper.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Creates an annealer with the given schedule.
    #[must_use]
    pub fn new(config: SaConfig) -> Self {
        SimulatedAnnealing { config }
    }

    /// Maps `ctx.app()` onto the architecture minimizing `objective` under
    /// `scaling`, with infeasible (deadline-violating) designs penalized.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors ([`OptError::Sched`]).
    pub fn map(
        &self,
        ctx: &EvalContext<'_>,
        scaling: &ScalingVector,
        objective: Objective,
    ) -> Result<SaOutcome, OptError> {
        self.map_inner(ctx, scaling, objective, true, &WallClock::start())
    }

    /// [`SimulatedAnnealing::map`] with an injectable [`Clock`], so
    /// time-limited annealing runs are testable without real sleeps (the
    /// same contract [`sea_opt::optimized::optimized_mapping_scratch`]
    /// gives the proposed flow).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors ([`OptError::Sched`]).
    pub fn map_with_clock(
        &self,
        ctx: &EvalContext<'_>,
        scaling: &ScalingVector,
        objective: Objective,
        clock: &dyn Clock,
    ) -> Result<SaOutcome, OptError> {
        self.map_inner(ctx, scaling, objective, true, clock)
    }

    /// Maps minimizing the *pure* objective, ignoring the deadline — the
    /// paper's soft error-unaware mapping stage, where a separate voltage
    /// scaling pass deals with the real-time constraint afterwards.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors ([`OptError::Sched`]).
    pub fn map_unconstrained(
        &self,
        ctx: &EvalContext<'_>,
        scaling: &ScalingVector,
        objective: Objective,
    ) -> Result<SaOutcome, OptError> {
        self.map_inner(ctx, scaling, objective, false, &WallClock::start())
    }

    fn map_inner(
        &self,
        ctx: &EvalContext<'_>,
        scaling: &ScalingVector,
        objective: Objective,
        penalize_deadline: bool,
        clock: &dyn Clock,
    ) -> Result<SaOutcome, OptError> {
        let deadline = ctx.app().deadline_s();
        let score_of = |eval: &EvalSummary| {
            if penalize_deadline {
                objective.penalized_summary(eval, deadline)
            } else {
                objective.score_summary(eval)
            }
        };
        let n_cores = ctx.arch().n_cores();
        let require_all_cores = ctx.app().graph().len() >= n_cores;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut ev = IncrementalEvaluator::new(ctx.clone());

        let mut current = balanced_seed(ctx, n_cores);
        let mut current_summary = ev.prime(&current, scaling)?;
        let mut current_score = score_of(&current_summary);
        let mut evaluations = 1usize;

        let mut best = current.clone();
        let mut best_summary = current_summary;
        let mut best_score = current_score;

        // Per-core occupancy cache for the O(C) validity check and
        // neighbourhood size.
        let mut counts: Vec<usize> = Vec::new();
        current.count_per_core_into(&mut counts);
        let n_tasks = current.n_tasks();
        let mut n_moves = neighbourhood_len_from_counts(n_tasks, &counts);
        debug_assert_eq!(n_moves, current.neighbourhood_len());

        let mut temperature = self.config.initial_temperature;
        let mut consecutive_skips = 0usize;
        while evaluations < self.config.iterations
            && self
                .config
                .time_limit
                .is_none_or(|limit| clock.elapsed() < limit)
        {
            if n_moves == 0 {
                break;
            }
            let mv = current
                .nth_neighbourhood_move(rng.gen_range(0..n_moves))
                .expect("index drawn within the neighbourhood");
            // Skipped (structurally-invalid) moves consume no evaluation,
            // so they must not cool the schedule either — the proposed
            // flow's annealer freezes cooling on skips for the same
            // reason, keeping the two schedules budget-matched. The skip
            // cap guards a degenerate all-invalid neighbourhood.
            if require_all_cores && !move_keeps_all_cores(&counts, &current, mv) {
                consecutive_skips += 1;
                if consecutive_skips > n_moves.saturating_mul(50) {
                    break;
                }
                continue;
            }
            consecutive_skips = 0;
            let inverse = apply_counted(&mut current, &mut counts, mv);
            let summary = ev.evaluate_move(&current, scaling, mv)?;
            evaluations += 1;
            let score = score_of(&summary);

            let accept = if score <= current_score {
                true
            } else {
                let delta = (score - current_score) / current_score.abs().max(f64::MIN_POSITIVE);
                rng.gen_range(0.0..1.0f64) < (-delta / temperature.max(1e-12)).exp()
            };
            if accept {
                ev.accept();
                current_summary = summary;
                current_score = score;
                n_moves = neighbourhood_len_from_counts(n_tasks, &counts);
                debug_assert_eq!(n_moves, current.neighbourhood_len());
                if current_score < best_score
                    || (current_summary.meets_deadline && !best_summary.meets_deadline)
                {
                    best.clone_from(&current);
                    best_summary = current_summary;
                    best_score = current_score;
                }
            } else {
                ev.reject();
                apply_counted(&mut current, &mut counts, inverse);
            }
            temperature *= self.config.cooling;
        }

        // Off-budget full evaluation of the returned best design.
        let evaluation = ev.evaluate_full(&best, scaling)?;
        Ok(SaOutcome {
            mapping: best,
            evaluation,
            evaluations,
        })
    }
}

/// Topology-aware starting point: tasks in topological order are dealt onto
/// cores in contiguous runs of roughly `N/C`, which keeps chains together
/// and every core occupied.
fn balanced_seed(ctx: &EvalContext<'_>, n_cores: usize) -> Mapping {
    let g = ctx.app().graph();
    let n = g.len();
    let mut assign = vec![CoreId::new(0); n];
    let chunk = n.div_ceil(n_cores);
    for (pos, &t) in g.topological_order().iter().enumerate() {
        assign[t.index()] = CoreId::new((pos / chunk).min(n_cores - 1));
    }
    Mapping::try_new(assign, n_cores).expect("balanced seed is complete")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::{Architecture, LevelSet};
    use sea_taskgraph::mpeg2;

    fn setup() -> (sea_taskgraph::Application, Architecture) {
        (
            mpeg2::application(),
            Architecture::homogeneous(4, LevelSet::arm7_three_level()),
        )
    }

    fn fast_sa(seed: u64) -> SimulatedAnnealing {
        SimulatedAnnealing::new(SaConfig {
            iterations: 1_500,
            initial_temperature: 0.1,
            cooling: 0.997,
            seed,
            time_limit: None,
        })
    }

    #[test]
    fn minimizing_r_beats_minimizing_tm_on_r() {
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::uniform(2, &arch).unwrap();
        let r_run = fast_sa(1).map(&ctx, &s, Objective::RegisterUsage).unwrap();
        let tm_run = fast_sa(1).map(&ctx, &s, Objective::Parallelism).unwrap();
        assert!(
            r_run.evaluation.r_total <= tm_run.evaluation.r_total,
            "R-objective should find lower R: {} vs {}",
            r_run.evaluation.r_total_kbits(),
            tm_run.evaluation.r_total_kbits()
        );
        assert!(
            tm_run.evaluation.tm_seconds <= r_run.evaluation.tm_seconds,
            "TM-objective should find lower TM"
        );
    }

    #[test]
    fn balanced_seed_uses_all_cores() {
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let m = balanced_seed(&ctx, 4);
        assert!(m.uses_all_cores());
        assert_eq!(m.n_tasks(), 11);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::uniform(2, &arch).unwrap();
        let a = fast_sa(7).map(&ctx, &s, Objective::RegTimeProduct).unwrap();
        let b = fast_sa(7).map(&ctx, &s, Objective::RegTimeProduct).unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn annealing_improves_on_the_seed() {
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::uniform(2, &arch).unwrap();
        let seed_eval = ctx.evaluate(&balanced_seed(&ctx, 4), &s).unwrap();
        let out = fast_sa(3).map(&ctx, &s, Objective::RegisterUsage).unwrap();
        assert!(out.evaluation.r_total <= seed_eval.r_total);
    }

    #[test]
    fn step_clock_time_limit_is_deterministic() {
        use sea_opt::StepClock;
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::uniform(2, &arch).unwrap();
        let step = std::time::Duration::from_millis(1);
        let sa = SimulatedAnnealing::new(SaConfig {
            iterations: usize::MAX,
            initial_temperature: 0.1,
            cooling: 0.997,
            seed: 4,
            time_limit: Some(step * 30),
        });
        let run = || {
            sa.map_with_clock(&ctx, &s, Objective::RegisterUsage, &StepClock::new(step))
                .unwrap()
        };
        let a = run();
        let b = run();
        // The clock expires after exactly 30 queries on any machine.
        assert_eq!(a.evaluations, b.evaluations);
        assert!(a.evaluations <= 31);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn respects_iteration_budget() {
        let (app, arch) = setup();
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::uniform(2, &arch).unwrap();
        let sa = SimulatedAnnealing::new(SaConfig {
            iterations: 64,
            initial_temperature: 0.1,
            cooling: 0.9,
            seed: 0,
            time_limit: None,
        });
        let out = sa.map(&ctx, &s, Objective::Parallelism).unwrap();
        assert!(out.evaluations <= 64);
    }
}
