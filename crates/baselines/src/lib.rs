//! Soft error-unaware baseline optimizations (paper §V, Exp:1–Exp:3).
//!
//! The paper compares its proposed flow against designs produced by
//! simulated-annealing task mapping (Orsila et al., the paper's ref. \[13\])
//! under three soft error-*unaware* objectives:
//!
//! * **Exp:1** — minimize register usage `R` ([`Objective::RegisterUsage`]),
//! * **Exp:2** — maximize parallelism, i.e. minimize the multiprocessor
//!   execution time `TM` ([`Objective::Parallelism`]),
//! * **Exp:3** — minimize the product `TM · R`
//!   ([`Objective::RegTimeProduct`]).
//!
//! Each baseline runs inside the same iterative power-minimization loop as
//! the proposed flow (voltage scaling enumeration + feasibility + power
//! selection); only the mapping stage differs. [`sweep`] additionally
//! provides the 120-random-mappings study behind Fig. 3.
//!
//! # Example
//!
//! ```
//! use sea_baselines::{BaselineOptimizer, Objective};
//! use sea_opt::OptimizerConfig;
//! use sea_taskgraph::mpeg2;
//!
//! let app = mpeg2::application();
//! let out = BaselineOptimizer::new(OptimizerConfig::fast(4), Objective::Parallelism)
//!     .optimize(&app)
//!     .expect("feasible");
//! assert!(out.best.evaluation.meets_deadline);
//! ```

pub mod objectives;
pub mod sa;
pub mod sweep;

pub use objectives::Objective;
pub use sa::{SaConfig, SimulatedAnnealing};

use sea_arch::ScalingVector;
use sea_opt::scaling::ScalingIter;
use sea_opt::{DesignPoint, OptError, OptimizationOutcome, OptimizerConfig, ScalingOutcome};
use sea_sched::metrics::EvalContext;
use sea_taskgraph::Application;

/// A soft error-unaware design optimizer: the paper's Fig. 4 outer loop
/// with a simulated-annealing mapping stage driven by a classic objective.
#[derive(Debug, Clone)]
pub struct BaselineOptimizer {
    config: OptimizerConfig,
    objective: Objective,
    sa: SaConfig,
}

impl BaselineOptimizer {
    /// Creates a baseline optimizer. The `OptimizerConfig` supplies the
    /// architecture, budget and selection policy; `objective` picks the
    /// experiment (Exp:1/2/3).
    #[must_use]
    pub fn new(config: OptimizerConfig, objective: Objective) -> Self {
        let sa = SaConfig::from_budget(config.budget, config.seed);
        BaselineOptimizer {
            config,
            objective,
            sa,
        }
    }

    /// Overrides the annealing schedule.
    #[must_use]
    pub fn with_sa(mut self, sa: SaConfig) -> Self {
        self.sa = sa;
        self
    }

    /// The objective in use.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Runs the baseline flow on `app` — two stages, as in the paper's
    /// soft error-unaware experiments:
    ///
    /// 1. **Mapping** — simulated annealing minimizes the *pure* objective
    ///    (`R`, `TM` or `TM·R`) at nominal uniform scaling. The mapping is
    ///    soft error-unaware and scaling-unaware, exactly like a
    ///    memory-/performance-aware distribution tool (ref. \[13\]).
    /// 2. **Power minimization** — iterative voltage scaling over the
    ///    `nextScaling` enumeration finds the lowest-power combination at
    ///    which the *fixed* mapping still meets the real-time constraint.
    ///
    /// This reproduces Table II's contrasts: the min-`R` mapping (Exp:1)
    /// has a long `TM`, cannot be scaled far down, and ends up with the
    /// highest power; the max-parallelism mapping (Exp:2) scales deepest.
    ///
    /// The run is sequential by construction — stage 1 is one annealing
    /// chain and stage 2 one cheap evaluation per scaling — so
    /// [`OptimizerConfig::jobs`] is intentionally ignored here (it fans
    /// out `sea_opt::DesignOptimizer`'s per-scaling searches, which the
    /// baseline does not have).
    ///
    /// # Errors
    ///
    /// Mirrors [`sea_opt::DesignOptimizer::optimize`]: [`OptError::TooFewTasks`]
    /// or [`OptError::Infeasible`].
    pub fn optimize(&self, app: &Application) -> Result<OptimizationOutcome, OptError> {
        let arch = &self.config.arch;
        if app.graph().len() < arch.n_cores() {
            return Err(OptError::TooFewTasks {
                tasks: app.graph().len(),
                cores: arch.n_cores(),
            });
        }
        let ctx = EvalContext::new(app, arch)
            .with_ser(self.config.ser)
            .with_exposure(self.config.exposure);

        // Stage 1: objective-driven mapping at nominal scaling.
        let nominal = ScalingVector::all_nominal(arch);
        let annealer = SimulatedAnnealing::new(self.sa);
        let mapped = annealer.map_unconstrained(&ctx, &nominal, self.objective)?;
        let mapping = mapped.mapping;
        let mut total_evaluations = mapped.evaluations;

        // Stage 2: iterative voltage scaling for the fixed mapping.
        let mut explored = Vec::new();
        let mut best: Option<DesignPoint> = None;
        let mut best_tm = f64::INFINITY;
        for raw in ScalingIter::for_architecture(arch) {
            let scaling = ScalingVector::try_new(raw, arch)?;
            let evaluation = ctx.evaluate(&mapping, &scaling)?;
            total_evaluations += 1;
            best_tm = best_tm.min(evaluation.tm_seconds);
            let feasible = evaluation.meets_deadline;
            let point = DesignPoint {
                scaling: scaling.clone(),
                mapping: mapping.clone(),
                evaluation,
            };
            if feasible {
                let replace = match &best {
                    None => true,
                    Some(incumbent) => point.evaluation.power_mw < incumbent.evaluation.power_mw,
                };
                if replace {
                    best = Some(point.clone());
                }
            }
            explored.push(ScalingOutcome {
                scaling,
                best: Some(point),
                feasible,
                evaluations: 1,
            });
        }

        match best {
            Some(best) => Ok(OptimizationOutcome {
                best,
                explored,
                total_evaluations,
            }),
            None => Err(OptError::Infeasible {
                best_tm_seconds: best_tm,
                deadline_s: app.deadline_s(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_taskgraph::mpeg2;

    #[test]
    fn all_three_baselines_find_feasible_designs() {
        let app = mpeg2::application();
        for obj in [
            Objective::RegisterUsage,
            Objective::Parallelism,
            Objective::RegTimeProduct,
        ] {
            let out = BaselineOptimizer::new(OptimizerConfig::fast(4), obj)
                .optimize(&app)
                .unwrap_or_else(|e| panic!("{obj:?} failed: {e}"));
            assert!(out.best.evaluation.meets_deadline, "{obj:?}");
            assert!(out.best.mapping.uses_all_cores(), "{obj:?}");
        }
    }

    #[test]
    fn objectives_shape_the_designs_as_in_table2() {
        let app = mpeg2::application();
        let reg = BaselineOptimizer::new(OptimizerConfig::fast(4), Objective::RegisterUsage)
            .optimize(&app)
            .unwrap();
        let par = BaselineOptimizer::new(OptimizerConfig::fast(4), Objective::Parallelism)
            .optimize(&app)
            .unwrap();
        // Exp:1 yields lower R than Exp:2; Exp:2 yields lower TM than Exp:1
        // (Table II's defining contrast).
        assert!(
            reg.best.evaluation.r_total < par.best.evaluation.r_total,
            "R: {} vs {}",
            reg.best.evaluation.r_total_kbits(),
            par.best.evaluation.r_total_kbits()
        );
        assert!(
            par.best.evaluation.tm_seconds < reg.best.evaluation.tm_seconds,
            "TM: {} vs {}",
            par.best.evaluation.tm_seconds,
            reg.best.evaluation.tm_seconds
        );
    }

    #[test]
    fn too_few_tasks_rejected() {
        let app = sea_taskgraph::fig8::application();
        let err = BaselineOptimizer::new(OptimizerConfig::fast(8), Objective::Parallelism)
            .optimize(&app)
            .unwrap_err();
        assert!(matches!(err, OptError::TooFewTasks { .. }));
    }
}
