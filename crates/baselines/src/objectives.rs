//! Classic soft error-unaware mapping objectives (paper §V, Table II).

use serde::{Deserialize, Serialize};

use sea_sched::metrics::{EvalSummary, MappingEvaluation};

/// The figure of merit a baseline minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Exp:1 — minimize total register usage `R` (memory-aware
    /// distribution in the spirit of the paper's ref. \[13\]).
    RegisterUsage,
    /// Exp:2 — maximize parallelism: minimize multiprocessor execution
    /// time `TM`.
    Parallelism,
    /// Exp:3 — minimize the product `TM · R`.
    RegTimeProduct,
}

impl Objective {
    /// Raw objective value for an evaluation summary (lower is better) —
    /// the `Copy`, allocation-free form used by the annealer's hot loop.
    #[must_use]
    pub fn score_summary(self, eval: &EvalSummary) -> f64 {
        match self {
            Objective::RegisterUsage => eval.r_total.as_f64(),
            Objective::Parallelism => eval.tm_seconds,
            Objective::RegTimeProduct => eval.tm_seconds * eval.r_total.as_f64(),
        }
    }

    /// Raw objective value for an evaluated design (lower is better).
    #[must_use]
    pub fn score(self, eval: &MappingEvaluation) -> f64 {
        self.score_summary(&eval.summary())
    }

    /// [`Objective::penalized_score`] over a summary (hot-loop form).
    #[must_use]
    pub fn penalized_summary(self, eval: &EvalSummary, deadline_s: f64) -> f64 {
        self.score_summary(eval) * sea_opt::optimized::deadline_penalty_factor(eval, deadline_s)
    }

    /// Score with a deadline penalty: infeasible designs are pushed above
    /// every feasible one, ordered by how badly they overshoot. The penalty
    /// shape is shared with the proposed flow's annealer
    /// ([`sea_opt::optimized::deadline_penalty_factor`]) so both flows
    /// penalize infeasibility identically.
    #[must_use]
    pub fn penalized_score(self, eval: &MappingEvaluation, deadline_s: f64) -> f64 {
        self.penalized_summary(&eval.summary(), deadline_s)
    }

    /// The Table II experiment label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Objective::RegisterUsage => "Exp:1 (Reg. Usage)",
            Objective::Parallelism => "Exp:2 (Parallelism)",
            Objective::RegTimeProduct => "Exp:3 (Reg. Usage & Paral.)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_taskgraph::units::Bits;

    fn eval(tm: f64, r_bits: u64, meets: bool) -> MappingEvaluation {
        MappingEvaluation {
            tm_seconds: tm,
            tm_nominal_cycles: tm * 200e6,
            meets_deadline: meets,
            power_mw: 5.0,
            gamma: 1.0,
            r_total: Bits::new(r_bits),
            per_core: Vec::new(),
        }
    }

    #[test]
    fn scores_match_definitions() {
        let e = eval(2.0, 80_000, true);
        assert_eq!(Objective::RegisterUsage.score(&e), 80_000.0);
        assert_eq!(Objective::Parallelism.score(&e), 2.0);
        assert_eq!(Objective::RegTimeProduct.score(&e), 160_000.0);
    }

    #[test]
    fn infeasible_designs_rank_below_feasible_ones() {
        let good = eval(9.9, 100_000, true);
        let bad = eval(10.1, 50_000, false);
        for obj in [
            Objective::RegisterUsage,
            Objective::Parallelism,
            Objective::RegTimeProduct,
        ] {
            assert!(
                obj.penalized_score(&bad, 10.0) > obj.penalized_score(&good, 10.0),
                "{obj:?}"
            );
        }
    }

    #[test]
    fn worse_overshoot_scores_worse() {
        let a = eval(10.5, 50_000, false);
        let b = eval(12.0, 50_000, false);
        let obj = Objective::RegisterUsage;
        assert!(obj.penalized_score(&b, 10.0) > obj.penalized_score(&a, 10.0));
    }

    #[test]
    fn labels_name_the_experiments() {
        assert!(Objective::RegisterUsage.label().contains("Exp:1"));
        assert!(Objective::Parallelism.label().contains("Exp:2"));
        assert!(Objective::RegTimeProduct.label().contains("Exp:3"));
    }
}
