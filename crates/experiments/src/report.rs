//! Minimal table rendering for experiment reports (ASCII and CSV).

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple string table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    align: Vec<Column>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and header.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[(&str, Column)]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|(h, _)| (*h).to_string()).collect(),
            align: header.iter().map(|&(_, a)| a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned ASCII columns.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize], align: &[Column]| {
            let mut line = String::from("|");
            for ((cell, w), a) in cells.iter().zip(widths).zip(align) {
                match a {
                    Column::Left => {
                        let _ = write!(line, " {cell:<w$} |");
                    }
                    Column::Right => {
                        let _ = write!(line, " {cell:>w$} |");
                    }
                }
            }
            line
        };
        let _ = writeln!(out, "{}", render_row(&self.header, &widths, &self.align));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths, &self.align));
        }
        out
    }

    /// Renders the table as CSV (header + rows; fields with commas are
    /// quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float in engineering style with the given precision, e.g.
/// `3.93e5` for Γ columns.
#[must_use]
pub fn sci(x: f64, digits: usize) -> String {
    format!("{x:.digits$e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &[("name", Column::Left), ("value", Column::Right)]);
        t.push_row(vec!["alpha".into(), "1.5".into()]);
        t.push_row(vec!["b".into(), "22".into()]);
        t
    }

    #[test]
    fn ascii_alignment() {
        let s = sample().to_ascii();
        assert!(s.contains("# demo"));
        assert!(s.contains("| alpha |   1.5 |"), "got:\n{s}");
        assert!(s.contains("| b     |    22 |"), "got:\n{s}");
    }

    #[test]
    fn csv_output() {
        let s = sample().to_csv();
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some("name,value"));
        assert_eq!(lines.next(), Some("alpha,1.5"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &[("a", Column::Left)]);
        t.push_row(vec!["hello, world".into()]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new("x", &[("a", Column::Left)]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(393_000.0, 2), "3.93e5");
    }
}
