//! The experiment harnesses as campaign definitions.
//!
//! Every driver in this crate describes its work as a list of
//! [`sea_campaign::Unit`]s and assembles its typed report from the
//! enumeration-ordered results — the hand-rolled optimize/catch loops the
//! modules used to carry live in the shared engine now. This module holds
//! the plumbing the drivers share plus the named built-in campaigns the
//! CLI exposes (`sea-dse campaign --list-builtin`).
//!
//! [`merge`] is the cross-scenario win: `reproduce` concatenates the unit
//! lists of *all* tables and figures into one flat list and feeds a single
//! worker pool, so a multi-core host saturates on dozens of independent
//! units instead of idling between sequential harness calls.

use std::ops::Range;

use sea_campaign::{
    run_units, run_units_configured, CampaignError, NullSink, RunConfig, Sink, Unit, UnitResult,
};

/// Runs a unit list on the engine's default worker count (`SEA_JOBS`, else
/// available parallelism) without streaming output.
///
/// # Errors
///
/// Propagates hard unit errors (infeasibility is data, not an error).
pub fn run(units: &[Unit]) -> Result<Vec<UnitResult>, CampaignError> {
    run_units(units, sea_opt::default_jobs(), &mut NullSink)
}

/// Runs a unit list with an explicit worker count and sink.
///
/// # Errors
///
/// Propagates hard unit errors.
pub fn run_with(
    units: &[Unit],
    jobs: usize,
    sink: &mut dyn Sink,
) -> Result<Vec<UnitResult>, CampaignError> {
    run_units(units, jobs, sink)
}

/// Execution counters of a configured (cache/journal-aware) run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Units actually evaluated by this process.
    pub executed: usize,
    /// Units restored from the result cache.
    pub cache_hits: usize,
    /// Units the resume journal already covered.
    pub resumed: usize,
}

/// Runs a unit list under a full [`RunConfig`] (cache, resume journal),
/// forcing payload restoration so every result carries its typed payload
/// — what the `from_results` assemblers need. With a warm cache this
/// evaluates zero units while returning results bit-identical to a cold
/// run.
///
/// # Errors
///
/// Propagates hard unit errors and journal-append failures.
pub fn run_configured(
    units: &[Unit],
    mut config: RunConfig<'_>,
    sink: &mut dyn Sink,
) -> Result<(Vec<UnitResult>, RunStats), CampaignError> {
    config.need_payloads = true;
    let outcome = run_units_configured(units, config, sink)?;
    let stats = RunStats {
        executed: outcome.executed,
        cache_hits: outcome.cache_hits,
        resumed: outcome.resumed,
    };
    let results = outcome
        .into_results()
        .expect("need_payloads guarantees full results");
    Ok((results, stats))
}

/// [`run_configured`] through a localhost coordinator plus `workers`
/// in-process TCP workers instead of the thread pool — the `reproduce
/// --distributed` smoke path. Every unit travels the full network path
/// (canonical unit encoding out, verified result bytes back), and the
/// assembled reports are byte-identical to the in-process run.
///
/// # Errors
///
/// Propagates transport failures, hard unit errors and journal-append
/// failures.
pub fn run_configured_distributed(
    units: &[Unit],
    mut config: RunConfig<'_>,
    sink: &mut dyn Sink,
    workers: usize,
) -> Result<(Vec<UnitResult>, RunStats), CampaignError> {
    config.need_payloads = true;
    let outcome = sea_dist::run_distributed_local(units, config, workers, sink)?;
    let stats = RunStats {
        executed: outcome.executed,
        cache_hits: outcome.cache_hits,
        resumed: outcome.resumed,
    };
    let results = outcome
        .into_results()
        .expect("need_payloads guarantees full results");
    Ok((results, stats))
}

/// Concatenates per-driver unit lists into one flat, reindexed list,
/// returning the slice range each driver's results occupy. Feed the merged
/// list to one pool, then hand `&results[range]` back to each driver's
/// `from_results`.
#[must_use]
pub fn merge(sections: Vec<Vec<Unit>>) -> (Vec<Unit>, Vec<Range<usize>>) {
    let mut all = Vec::new();
    let mut ranges = Vec::with_capacity(sections.len());
    for section in sections {
        let start = all.len();
        for mut unit in section {
            unit.index = all.len();
            all.push(unit);
        }
        ranges.push(start..all.len());
    }
    (all, ranges)
}

/// A named campaign shipped with the binary.
#[derive(Debug, Clone, Copy)]
pub struct BuiltinCampaign {
    /// Name accepted by `sea-dse campaign --builtin <name>`.
    pub name: &'static str,
    /// One-line description for `--list-builtin`.
    pub description: &'static str,
    /// The campaign source in the `sea-campaign` spec grammar.
    pub source: &'static str,
}

/// The built-in campaigns.
#[must_use]
pub fn builtins() -> &'static [BuiltinCampaign] {
    &[
        BuiltinCampaign {
            name: "quickstart",
            description: "proposed flow on MPEG-2 and Fig. 8 across 3-4 cores (small budget)",
            source: "\
name = \"quickstart\"
budget = \"fast\"

[scenario]
name = \"proposed\"
kind = \"optimize\"
apps = \"mpeg2, fig8\"
cores = \"3-4\"

[scenario]
name = \"exp3-baseline\"
kind = \"baseline\"
objectives = \"tmr\"
apps = \"mpeg2\"
cores = \"4\"
",
        },
        BuiltinCampaign {
            name: "table2",
            description: "Table II: Exp:1-3 SA baselines vs the proposed flow (MPEG-2, 4 cores)",
            source: "\
name = \"table2\"
budget = \"smoke\"
seed = 6204766

[scenario]
name = \"baselines\"
kind = \"baseline\"
objectives = \"r,tm,tmr\"
apps = \"mpeg2\"
cores = \"4\"
seeds = \"6204766\"

[scenario]
name = \"proposed\"
kind = \"optimize\"
apps = \"mpeg2\"
cores = \"4\"
seeds = \"6204766\"
",
        },
        BuiltinCampaign {
            name: "cores",
            description: "Table III slice: proposed flow across 2-6 cores on MPEG-2 + random:60",
            source: "\
name = \"cores\"
budget = \"smoke\"

[scenario]
name = \"allocation\"
kind = \"optimize\"
apps = \"mpeg2, random:60:6204766\"
cores = \"2-6\"
",
        },
        BuiltinCampaign {
            name: "levels",
            description: "Fig. 11 slice: proposed flow under 2/3/4 DVS levels (random:60, 6 cores)",
            source: "\
name = \"levels\"
budget = \"smoke\"

[scenario]
name = \"dvs-levels\"
kind = \"optimize\"
apps = \"random:60:6204766\"
cores = \"6\"
levels = \"2-4\"
",
        },
        BuiltinCampaign {
            name: "fig3",
            description: "Fig. 3: 120 random MPEG-2 mappings at uniform scaling 1 and 2",
            source: "\
name = \"fig3\"

[scenario]
name = \"mapping-study\"
kind = \"sweep\"
apps = \"mpeg2\"
cores = \"4\"
count = 120
scales = \"1,2\"
seeds = \"42\"
",
        },
    ]
}

/// Looks a built-in campaign up by name.
#[must_use]
pub fn builtin(name: &str) -> Option<&'static BuiltinCampaign> {
    builtins().iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_campaign::parse_campaign;

    #[test]
    fn every_builtin_parses_and_expands() {
        for b in builtins() {
            let campaign = parse_campaign(b.source)
                .unwrap_or_else(|e| panic!("builtin `{}` does not parse: {e}", b.name));
            assert_eq!(campaign.name, b.name, "builtin name matches spec name");
            assert!(
                !campaign.expand().is_empty(),
                "builtin `{}` expands to no units",
                b.name
            );
        }
        assert!(builtin("quickstart").is_some());
        assert!(builtin("nope").is_none());
    }

    #[test]
    fn merge_reindexes_and_slices() {
        let units = parse_campaign(builtins()[0].source).unwrap().expand();
        let n = units.len();
        let (all, ranges) = merge(vec![units.clone(), units]);
        assert_eq!(all.len(), 2 * n);
        assert_eq!(ranges, vec![0..n, n..2 * n]);
        for (i, unit) in all.iter().enumerate() {
            assert_eq!(unit.index, i);
        }
    }
}
