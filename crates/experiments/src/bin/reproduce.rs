//! Regenerates every table and figure of the paper in one run — as one
//! campaign.
//!
//! ```text
//! cargo run --release -p sea-experiments --bin reproduce \
//!     [smoke|paper] [--jobs N] [--quiet] [--cache <dir>] [--resume <journal>]
//!     [--distributed [N]]
//! ```
//!
//! The harnesses define their work as campaign unit lists
//! (`sea_experiments::campaigns`); this binary concatenates *all* of them
//! — Table II, Table III, Fig. 10, Fig. 11 and the MC validation — into a
//! single flat list and runs it through one shared worker pool, so the
//! scheduler balances across tables and figures instead of idling between
//! them. Progress streams to stderr as units complete; the assembled
//! reports print to stdout in the usual order. `--jobs N` pins the worker
//! count; the reports are bitwise identical for every value.
//!
//! `--cache <dir>` (or `SEA_CACHE`) consults the content-addressed unit
//! cache before evaluating anything: a warm second run evaluates **zero**
//! units and prints byte-identical stdout. `--resume <journal>`
//! write-ahead journals completed units; on restart, journaled units are
//! restored from the cache when one is configured (without a cache their
//! typed payloads must be recomputed — pair the flags for crash
//! recovery). Timing and cache statistics go to stderr so stdout stays
//! comparable across runs.
//!
//! `--distributed [N]` routes the whole campaign through `sea-dist`: a
//! localhost TCP coordinator plus N (default 2) in-process workers, every
//! unit travelling the full wire path — the smoke proof that distributed
//! and in-process execution print byte-identical stdout.

use std::sync::Arc;
use std::time::Instant;

use sea_campaign::{open_journal, Cache, RunConfig, Sink, UnitRecord};
use sea_experiments::ablations::{
    exposure_ablation, mc_from_results, mc_table, mc_units, reference_design, seed_ablation,
    ser_sensitivity,
};
use sea_experiments::{campaigns, fig10, fig11, fig3, fig9, table2, table3, EffortProfile};
use sea_opt::SearchBudget;

/// Streams one progress line per completed unit to stderr.
struct StderrProgress {
    total: usize,
    done: usize,
    enabled: bool,
}

impl Sink for StderrProgress {
    fn begin(&mut self, total: usize) {
        self.total = total;
        if self.enabled {
            eprintln!("campaign: {total} units across all tables and figures");
        }
    }

    fn unit_completed(&mut self, record: &UnitRecord) {
        self.done += 1;
        if self.enabled {
            eprintln!(
                "[{}/{}] {} {} cores={} levels={} {}",
                self.done,
                self.total,
                record.scenario,
                record.app,
                record.cores,
                record.levels,
                record.status
            );
        }
    }
}

/// The value of `args[at]`'s flag, refusing a missing value or one that
/// is itself a flag (`--cache --quiet` must not create a `./--quiet`
/// cache directory and silently drop the quiet switch).
fn flag_value(args: &[String], at: usize, flag: &str, what: &str) -> String {
    match args.get(at + 1) {
        Some(v) if !v.starts_with("--") => v.clone(),
        _ => {
            eprintln!("error: {flag} needs {what}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = EffortProfile::Smoke;
    let mut quiet = false;
    let mut cache_flag: Option<String> = None;
    let mut resume_flag: Option<String> = None;
    let mut distributed: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "paper" => profile = EffortProfile::Paper,
            "smoke" => profile = EffortProfile::Smoke,
            "--quiet" => quiet = true,
            "--distributed" => {
                // Optional worker count (default 2).
                distributed = Some(
                    match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                        Some(n) if n > 0 => {
                            i += 1;
                            n
                        }
                        _ => 2,
                    },
                );
            }
            "--cache" => {
                cache_flag = Some(flag_value(&args, i, "--cache", "a directory"));
                i += 1;
            }
            "--resume" => {
                resume_flag = Some(flag_value(&args, i, "--resume", "a journal path"));
                i += 1;
            }
            "--jobs" => {
                let jobs = args
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --jobs needs a positive integer");
                        std::process::exit(2);
                    });
                // Single-threaded startup: set before any pool spins up so
                // the campaign engine and every inner config pick it up.
                std::env::set_var("SEA_JOBS", jobs.to_string());
                i += 1;
            }
            other => {
                eprintln!(
                    "error: unknown argument `{other}` \
                     (smoke|paper [--jobs N] [--quiet] [--cache <dir>] [--resume <journal>] \
                     [--distributed [N]])"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Run metadata goes to stderr (house rule: progress/metadata on stderr,
    // report on stdout) so the report bytes are identical for every --jobs.
    eprintln!("profile: {profile:?}, jobs: {}\n", sea_opt::default_jobs());
    let t0 = Instant::now();

    // Fig. 3 — mapping study (pure evaluation sweep; runs inline).
    let fig3 = fig3::run(120, 42).expect("Fig. 3 sweep");
    let s = fig3.summary();
    println!("## Fig. 3 (120 random mappings, 4 cores)");
    println!(
        "corr(TM, R)            = {:+.3}   (paper: negative trade-off)",
        s.corr_tm_r
    );
    println!(
        "Gamma ratio s2/s1      = {:.2}    (paper: ~2.5x)",
        s.gamma_ratio
    );
    println!("TM ratio s2/s1         = {:.2}    (paper: ~2x)", s.tm_ratio);
    println!(
        "Gamma concavity edges  = {:.2} / {:.2} over the minimum (paper: concave)\n",
        s.gamma_edge_over_min_low, s.gamma_edge_over_min_high
    );

    // One merged campaign: every remaining table and figure as units.
    let mpeg2 = Arc::new(sea_taskgraph::mpeg2::application());
    let app60 = Arc::new(
        sea_taskgraph::generator::RandomGraphConfig::paper(60)
            .generate(profile.seed())
            .expect("valid generator parameters"),
    );
    let t3_workloads = table3::paper_workloads(profile.seed());
    let t3_cores = [2usize, 3, 4, 5, 6];
    let (ref_app, _, ref_mapping, ref_scaling) = reference_design();
    let ref_app = Arc::new(ref_app);
    let mc_designs = vec![(
        "Exp:4 (proposed)".to_string(),
        ref_mapping.clone(),
        ref_scaling.clone(),
    )];

    let (units, ranges) = campaigns::merge(vec![
        table2::units_on(&mpeg2, profile, 4),
        table3::units_on(&t3_workloads, &t3_cores, profile),
        fig10::units_on(&app60, &t3_cores, profile),
        fig11::units_on(&app60, 6, profile),
        mc_units(&ref_app, &mc_designs, 3, 13),
    ]);
    let mut progress = StderrProgress {
        total: 0,
        done: 0,
        enabled: !quiet,
    };
    let cache = Cache::resolve(cache_flag.as_deref()).unwrap_or_else(|e| {
        eprintln!("error: cannot open the result cache: {e}");
        std::process::exit(2);
    });
    let mut plan = resume_flag.as_ref().map(|path| {
        open_journal(std::path::Path::new(path), "reproduce", &units).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    });
    let mut config = RunConfig::new(sea_opt::default_jobs());
    config.cache = cache.as_ref();
    let journaled = plan.is_some();
    if let Some(mut plan) = plan.take() {
        if !quiet && plan.resumed > 0 {
            eprintln!(
                "resume: {} of {} units journaled",
                plan.resumed,
                units.len()
            );
        }
        config.prefilled = std::mem::take(&mut plan.prefilled);
        config.journal = Some(plan.writer);
    }
    let (results, stats) = match distributed {
        Some(workers) => {
            if !quiet {
                eprintln!("distributed: localhost coordinator + {workers} TCP worker(s)");
            }
            campaigns::run_configured_distributed(&units, config, &mut progress, workers)
                .expect("distributed campaign run")
        }
        None => campaigns::run_configured(&units, config, &mut progress).expect("campaign run"),
    };
    if !quiet && (cache.is_some() || journaled) {
        eprintln!(
            "units: {} evaluated, {} cache hit(s), {} journaled",
            stats.executed, stats.cache_hits, stats.resumed
        );
    }

    // Table II + Fig. 9.
    let t2 = table2::from_results(&results[ranges[0].clone()]).expect("Table II");
    println!("{}", t2.to_table().to_ascii());
    let violations = t2.shape_violations();
    if violations.is_empty() {
        println!("shape: all Table II orderings reproduced\n");
    } else {
        println!("shape violations: {violations:?}\n");
    }
    let f9 = fig9::from_table2(&t2).expect("Fig. 9");
    println!("{}", f9.to_table().to_ascii());

    // Table III.
    let t3 = table3::from_results(&t3_workloads, &t3_cores, &results[ranges[1].clone()]);
    println!("{}", t3.to_table().to_ascii());
    for (label, monotone, total) in t3.gamma_monotonicity() {
        println!("Gamma growth with cores [{label}]: {monotone}/{total} steps monotone");
    }
    println!();

    // Fig. 10.
    let f10 = fig10::from_results(&t3_cores, &results[ranges[2].clone()]);
    println!("{}", f10.to_table().to_ascii());
    println!(
        "proposed Gamma win rate vs Exp:3: {:.0}%\n",
        f10.proposed_win_rate() * 100.0
    );

    // Fig. 11.
    let f11 = fig11::from_results(&results[ranges[3].clone()]).expect("Fig. 11");
    println!("{}", f11.to_table().to_ascii());
    let iso = fig11::level_isolation(&app60, 6, profile).expect("level isolation");
    println!("fixed-mapping level isolation (busy-cycle accounting):");
    for (levels, p, g) in &iso {
        println!("  {levels} levels: P = {p:.2} mW, Gamma = {g:.3e}");
    }
    println!();

    // Ablations.
    let (app, arch, mapping, scaling) = reference_design();
    let exp = exposure_ablation(&app, &arch, &mapping, &scaling).expect("exposure ablation");
    println!("## Ablations (reference design: Table II Exp:4)");
    println!(
        "exposure: Gamma whole-run = {:.3e}, busy-only = {:.3e} ({:.0}% of whole-run)",
        exp.gamma_whole_run,
        exp.gamma_busy_only,
        exp.gamma_busy_only / exp.gamma_whole_run * 100.0
    );
    let seed_ab = seed_ablation(
        &app,
        &arch,
        &scaling,
        SearchBudget {
            max_evaluations: 2_000,
            max_stale_sweeps: 2,
            time_limit: None,
        },
        9,
    )
    .expect("seed ablation");
    println!(
        "seeding:  search from SEA seed -> Gamma {:.3e}; from balanced seed -> {:.3e}; raw SEA seed {:.3e}",
        seed_ab.gamma_from_sea_seed, seed_ab.gamma_from_balanced_seed, seed_ab.gamma_sea_seed_raw
    );
    let sens =
        ser_sensitivity(&app, &arch, &mapping, &scaling, &[1e-10, 1e-9, 1e-8]).expect("SER sweep");
    print!("SER sweep: ");
    for (ser, gamma) in &sens {
        print!("lambda={ser:.0e} -> Gamma={gamma:.2e}  ");
    }
    println!();
    let mc = mc_from_results(&mc_designs, &results[ranges[4].clone()]);
    println!("{}", mc_table(&mc).to_ascii());

    // Stderr, not stdout: stdout must be byte-identical across runs (the
    // warm-cache acceptance check `cmp`s it), and wall time never is.
    eprintln!("total wall time: {:.1} s", t0.elapsed().as_secs_f64());
}
