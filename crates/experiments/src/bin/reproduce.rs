//! Regenerates every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p sea-experiments --bin reproduce [smoke|paper] [--jobs N]
//! ```
//!
//! `smoke` (default) uses small search budgets for a quick look; `paper`
//! uses the budgets behind EXPERIMENTS.md. `--jobs N` pins the optimizer's
//! worker-thread count (sets `SEA_JOBS`, which every harness reads through
//! `OptimizerConfig`); results are identical for every value — the
//! parallel engine is deterministic — so the flag only trades wall-clock.

use std::time::Instant;

use sea_experiments::ablations::{
    exposure_ablation, mc_table, mc_validation, reference_design, seed_ablation, ser_sensitivity,
};
use sea_experiments::{fig10, fig11, fig3, fig9, table2, table3, EffortProfile};
use sea_opt::SearchBudget;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = EffortProfile::Smoke;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "paper" => profile = EffortProfile::Paper,
            "smoke" => profile = EffortProfile::Smoke,
            "--jobs" => {
                let jobs = args
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --jobs needs a positive integer");
                        std::process::exit(2);
                    });
                // Single-threaded startup: set before any optimizer runs so
                // every harness's `OptimizerConfig` picks it up.
                std::env::set_var("SEA_JOBS", jobs.to_string());
                i += 1;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (smoke|paper [--jobs N])");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    println!("profile: {profile:?}, jobs: {}\n", sea_opt::default_jobs());
    let t0 = Instant::now();

    // Fig. 3 — mapping study.
    let fig3 = fig3::run(120, 42).expect("Fig. 3 sweep");
    let s = fig3.summary();
    println!("## Fig. 3 (120 random mappings, 4 cores)");
    println!(
        "corr(TM, R)            = {:+.3}   (paper: negative trade-off)",
        s.corr_tm_r
    );
    println!(
        "Gamma ratio s2/s1      = {:.2}    (paper: ~2.5x)",
        s.gamma_ratio
    );
    println!("TM ratio s2/s1         = {:.2}    (paper: ~2x)", s.tm_ratio);
    println!(
        "Gamma concavity edges  = {:.2} / {:.2} over the minimum (paper: concave)\n",
        s.gamma_edge_over_min_low, s.gamma_edge_over_min_high
    );

    // Table II + Fig. 9.
    let t2 = table2::run(profile, 4).expect("Table II");
    println!("{}", t2.to_table().to_ascii());
    let violations = t2.shape_violations();
    if violations.is_empty() {
        println!("shape: all Table II orderings reproduced\n");
    } else {
        println!("shape violations: {violations:?}\n");
    }
    let f9 = fig9::from_table2(&t2).expect("Fig. 9");
    println!("{}", f9.to_table().to_ascii());

    // Table III.
    let t3 = table3::run(profile).expect("Table III");
    println!("{}", t3.to_table().to_ascii());
    for (label, monotone, total) in t3.gamma_monotonicity() {
        println!("Gamma growth with cores [{label}]: {monotone}/{total} steps monotone");
    }
    println!();

    // Fig. 10.
    let f10 = fig10::run(profile).expect("Fig. 10");
    println!("{}", f10.to_table().to_ascii());
    println!(
        "proposed Gamma win rate vs Exp:3: {:.0}%\n",
        f10.proposed_win_rate() * 100.0
    );

    // Fig. 11.
    let f11 = fig11::run(profile).expect("Fig. 11");
    println!("{}", f11.to_table().to_ascii());
    let app60 = sea_taskgraph::generator::RandomGraphConfig::paper(60)
        .generate(profile.seed())
        .expect("valid generator parameters");
    let iso = fig11::level_isolation(&app60, 6, profile).expect("level isolation");
    println!("fixed-mapping level isolation (busy-cycle accounting):");
    for (levels, p, g) in &iso {
        println!("  {levels} levels: P = {p:.2} mW, Gamma = {g:.3e}");
    }
    println!();

    // Ablations.
    let (app, arch, mapping, scaling) = reference_design();
    let exp = exposure_ablation(&app, &arch, &mapping, &scaling).expect("exposure ablation");
    println!("## Ablations (reference design: Table II Exp:4)");
    println!(
        "exposure: Gamma whole-run = {:.3e}, busy-only = {:.3e} ({:.0}% of whole-run)",
        exp.gamma_whole_run,
        exp.gamma_busy_only,
        exp.gamma_busy_only / exp.gamma_whole_run * 100.0
    );
    let seed_ab = seed_ablation(
        &app,
        &arch,
        &scaling,
        SearchBudget {
            max_evaluations: 2_000,
            max_stale_sweeps: 2,
            time_limit: None,
        },
        9,
    )
    .expect("seed ablation");
    println!(
        "seeding:  search from SEA seed -> Gamma {:.3e}; from balanced seed -> {:.3e}; raw SEA seed {:.3e}",
        seed_ab.gamma_from_sea_seed, seed_ab.gamma_from_balanced_seed, seed_ab.gamma_sea_seed_raw
    );
    let sens =
        ser_sensitivity(&app, &arch, &mapping, &scaling, &[1e-10, 1e-9, 1e-8]).expect("SER sweep");
    print!("SER sweep: ");
    for (ser, gamma) in &sens {
        print!("lambda={ser:.0e} -> Gamma={gamma:.2e}  ");
    }
    println!();
    let mc = mc_validation(
        &app,
        &arch,
        &[("Exp:4 (proposed)".into(), mapping, scaling)],
        13,
    )
    .expect("MC validation");
    println!("{}", mc_table(&mc).to_ascii());

    println!("total wall time: {:.1} s", t0.elapsed().as_secs_f64());
}
