//! Fig. 11 — impact of the number of voltage-scaling levels on the
//! proposed optimization (60-task graph, six cores).
//!
//! The paper's findings: 4 levels buy ≈4 % more power reduction for ≈3 %
//! more SEUs than 3 levels (finer-grained scaling); 2 levels cut SEUs by
//! ≈42 % but cost ≈28 % more power (coarse scaling keeps voltages high).
//!
//! The SEU contrast between level sets is a *per-cycle* rate effect: with
//! fewer levels the cores run at higher voltage, so `λ(Vdd)` per cycle is
//! smaller while the executed cycle count is unchanged — the literal eq.
//! (3)+(7) accounting (busy cycles). Under the default whole-run exposure
//! the longer wall-clock of high-voltage designs partially cancels the
//! lower rate (`f · λ(V)` is nearly level-independent for the ARM7 table),
//! muting the contrast. The harness therefore reports Γ under **both**
//! exposure policies; EXPERIMENTS.md discusses the difference.

use std::sync::Arc;

use sea_arch::LevelSet;
use sea_campaign::{AppRef, CampaignError, Unit, UnitKind, UnitResult};
use sea_opt::{DesignOptimizer, OptError, OptimizerConfig, SelectionPolicy};
use sea_sched::metrics::{EvalContext, ExposurePolicy};
use sea_taskgraph::generator::RandomGraphConfig;
use sea_taskgraph::Application;

use crate::report::{sci, Column, Table};
use crate::EffortProfile;

/// One level-set outcome.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// Number of levels (2, 3, 4).
    pub levels: usize,
    /// Power of the optimized design (mW), if feasible.
    pub power_mw: Option<f64>,
    /// Γ under whole-run exposure, if feasible.
    pub gamma: Option<f64>,
    /// Γ under busy-cycles exposure (the literal eq. 3+7 accounting).
    pub gamma_busy: Option<f64>,
}

/// The regenerated Fig. 11.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Points for 2, 3 and 4 levels.
    pub points: Vec<Fig11Point>,
}

/// The Fig. 11 unit grid: one proposed-flow optimization per DVS level
/// count (2, 3, 4).
#[must_use]
pub fn units_on(app: &Arc<Application>, cores: usize, profile: EffortProfile) -> Vec<Unit> {
    [2usize, 3, 4]
        .into_iter()
        .enumerate()
        .map(|(index, levels)| Unit {
            index,
            scenario: "fig11".into(),
            kind: UnitKind::Optimize,
            app: AppRef::Inline(Arc::clone(app)),
            cores,
            levels,
            budget: profile.budget_spec(),
            selection: SelectionPolicy::default(),
            seed: profile.seed(),
        })
        .collect()
}

/// Assembles Fig. 11 from the three unit results (level order 2, 3, 4),
/// adding the busy-cycles Γ re-evaluation for feasible points.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn from_results(results: &[UnitResult]) -> Result<Fig11, CampaignError> {
    assert_eq!(results.len(), 3, "Fig. 11 studies 2/3/4 levels");
    let mut points = Vec::with_capacity(results.len());
    for result in results {
        let levels = result.unit.levels;
        match result.payload.outcome() {
            Some(out) => {
                let app = result.unit.app.build()?;
                let config = result.unit.optimizer_config();
                let busy = EvalContext::new(&app, &config.arch)
                    .with_ser(config.ser)
                    .with_exposure(ExposurePolicy::BusyOnly)
                    .evaluate(&out.best.mapping, &out.best.scaling)
                    .map_err(OptError::from)?;
                points.push(Fig11Point {
                    levels,
                    power_mw: Some(out.best.evaluation.power_mw),
                    gamma: Some(out.best.evaluation.gamma),
                    gamma_busy: Some(busy.gamma),
                });
            }
            None => points.push(Fig11Point {
                levels,
                power_mw: None,
                gamma: None,
                gamma_busy: None,
            }),
        }
    }
    Ok(Fig11 { points })
}

/// Runs the study on an arbitrary application and core count.
///
/// # Errors
///
/// Propagates hard unit errors.
pub fn run_on(
    app: &Application,
    cores: usize,
    profile: EffortProfile,
) -> Result<Fig11, CampaignError> {
    let app = Arc::new(app.clone());
    let results = crate::campaigns::run(&units_on(&app, cores, profile))?;
    from_results(&results)
}

/// Isolates the level-set SER mechanism: takes the design optimized under
/// the three-level set and re-evaluates the *same mapping* with its
/// coefficients clamped into each level set (`s > L ⇒ L`). With mapping and
/// cycle counts fixed, the per-cycle Γ difference is purely the
/// `λ(Vdd)`-per-level effect the paper's Fig. 11 describes.
///
/// Returns `(levels, power_mw, gamma_busy)` triples.
///
/// # Errors
///
/// Propagates optimizer/evaluation errors.
pub fn level_isolation(
    app: &Application,
    cores: usize,
    profile: EffortProfile,
) -> Result<Vec<(usize, f64, f64)>, OptError> {
    let mut config = OptimizerConfig::paper(cores);
    config.budget = profile.budget();
    config.seed = profile.seed();
    let reference = DesignOptimizer::new(config.clone()).optimize(app)?;
    let mapping = reference.best.mapping.clone();
    let coeffs = reference.best.scaling.coefficients().to_vec();

    let sets = [
        (2usize, LevelSet::arm7_two_level()),
        (3, LevelSet::arm7_three_level()),
        (4, LevelSet::arm7_four_level()),
    ];
    // Reference operating points (frequencies) under the 3-level set.
    let ref_levels = LevelSet::arm7_three_level();
    let ref_f: Vec<f64> = coeffs.iter().map(|&s| ref_levels.level(s).f_hz).collect();

    let mut out = Vec::with_capacity(sets.len());
    for (levels, set) in sets {
        let arch_cfg = OptimizerConfig::paper(cores).with_levels(set);
        let arch = &arch_cfg.arch;
        // Map each reference point to the *physically closest* level of the
        // target set (coefficient indices mean different operating points
        // in different sets, so indices must not be carried over).
        let clamped: Vec<u8> = ref_f
            .iter()
            .map(|&f| {
                arch.levels()
                    .iter()
                    .min_by(|(_, a), (_, b)| (a.f_hz - f).abs().total_cmp(&(b.f_hz - f).abs()))
                    .map(|(s, _)| s)
                    .expect("level sets are non-empty")
            })
            .collect();
        let scaling = sea_arch::ScalingVector::try_new(clamped, arch)?;
        let eval = EvalContext::new(app, arch)
            .with_exposure(ExposurePolicy::BusyOnly)
            .evaluate(&mapping, &scaling)?;
        out.push((levels, eval.power_mw, eval.gamma));
    }
    Ok(out)
}

/// Runs the published configuration: 60-task graph, six cores.
///
/// # Errors
///
/// See [`run_on`].
pub fn run(profile: EffortProfile) -> Result<Fig11, CampaignError> {
    let app = RandomGraphConfig::paper(60)
        .generate(profile.seed())
        .expect("paper generator parameters are valid");
    run_on(&app, 6, profile)
}

impl Fig11 {
    /// Renders the series.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 11 - voltage scaling levels (proposed flow)",
            &[
                ("levels", Column::Right),
                ("P (mW)", Column::Right),
                ("Gamma (whole-run)", Column::Right),
                ("Gamma (busy cycles)", Column::Right),
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                p.levels.to_string(),
                p.power_mw.map_or_else(|| "-".into(), |v| format!("{v:.2}")),
                p.gamma.map_or_else(|| "-".into(), |v| sci(v, 2)),
                p.gamma_busy.map_or_else(|| "-".into(), |v| sci(v, 2)),
            ]);
        }
        t
    }

    /// Returns `(power, gamma_whole_run, gamma_busy)` for a level count.
    #[must_use]
    pub fn point(&self, levels: usize) -> Option<(f64, f64, f64)> {
        self.points
            .iter()
            .find(|p| p.levels == levels)
            .and_then(|p| Some((p.power_mw?, p.gamma?, p.gamma_busy?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_levels_cost_power_in_full_study() {
        // Small graph keeps the smoke test quick; the shape claim is the
        // same as the paper's 60-task study.
        let app = RandomGraphConfig::paper(24).generate(3).unwrap();
        let fig = run_on(&app, 3, EffortProfile::Smoke).unwrap();
        let (p2, _, _) = fig.point(2).expect("2-level feasible");
        let (p3, _, _) = fig.point(3).expect("3-level feasible");
        // Coarse scaling keeps voltages high: more power (paper: +28 %).
        assert!(p2 >= p3 * 0.999, "P(2 levels) {p2} vs P(3 levels) {p3}");
    }

    #[test]
    fn level_isolation_shows_the_ser_mechanism() {
        // With the mapping and cycle counts held fixed, coarser level sets
        // run at higher voltage: strictly more power, strictly fewer SEUs
        // per executed cycle — the mechanism behind the paper's -42 %.
        let app = RandomGraphConfig::paper(24).generate(3).unwrap();
        let iso = level_isolation(&app, 3, EffortProfile::Smoke).unwrap();
        let find = |l: usize| iso.iter().find(|x| x.0 == l).copied().unwrap();
        let (_, p2, g2) = find(2);
        let (_, p3, g3) = find(3);
        assert!(p2 >= p3, "fixed-mapping P(2L) {p2} vs P(3L) {p3}");
        assert!(g2 <= g3, "fixed-mapping Gamma(2L) {g2} vs Gamma(3L) {g3}");
    }

    #[test]
    fn four_levels_save_power_vs_three() {
        let app = RandomGraphConfig::paper(24).generate(3).unwrap();
        let fig = run_on(&app, 3, EffortProfile::Smoke).unwrap();
        let (p3, _, _) = fig.point(3).expect("3-level feasible");
        let (p4, _, _) = fig.point(4).expect("4-level feasible");
        assert!(p4 <= p3 * 1.001, "P(4 levels) {p4} vs P(3 levels) {p3}");
    }

    #[test]
    fn rendering() {
        let app = RandomGraphConfig::paper(20).generate(3).unwrap();
        let fig = run_on(&app, 2, EffortProfile::Smoke).unwrap();
        let ascii = fig.to_table().to_ascii();
        assert!(ascii.contains("levels"));
        assert!(ascii.contains("busy cycles"));
        assert_eq!(fig.points.len(), 3);
    }
}
