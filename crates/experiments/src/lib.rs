//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (§III and §V).
//!
//! | Paper artefact | Module | What it reproduces |
//! |----------------|--------|--------------------|
//! | Fig. 3(a)–(c)  | [`fig3`] | R/TM trade-off and Γ/TM concavity over 120 random mappings |
//! | Table II       | [`table2`] | Exp:1–Exp:3 (SA baselines) vs. Exp:4 (proposed) on the 4-core MPEG-2 decoder |
//! | Fig. 9         | [`fig9`] | Relative SEUs/power of Exp:1–3 vs. Exp:4 at matched scaling |
//! | Table III      | [`table3`] | Power/Γ of the proposed flow across 2–6 cores and six applications |
//! | Fig. 10        | [`fig10`] | Exp:3 vs. Exp:4 across core counts (60-task graph) |
//! | Fig. 11        | [`fig11`] | Impact of 2/3/4 voltage-scaling levels |
//! | (ours)         | [`ablations`] | Exposure policy, SER sensitivity, initial-mapping contribution, MC-vs-analytic validation |
//!
//! Every harness is deterministic (seeded) and returns a typed report with
//! `to_ascii()` / `to_csv()` renderers; where the paper publishes numbers,
//! the report also carries them for side-by-side comparison (EXPERIMENTS.md
//! records the outcome).

pub mod ablations;
pub mod campaigns;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig9;
pub mod report;
pub mod table2;
pub mod table3;

pub use report::{Column, Table};

use sea_campaign::BudgetSpec;
use sea_opt::SearchBudget;

/// How much search effort the harnesses spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffortProfile {
    /// Small budgets for unit tests and smoke runs.
    Smoke,
    /// The default profile used to produce EXPERIMENTS.md (a deterministic
    /// stand-in for the paper's 40–130 minute wall-clock limits).
    Paper,
}

impl EffortProfile {
    /// The campaign budget preset of this profile (the harnesses are
    /// campaign definitions, so the presets live in `sea-campaign`).
    #[must_use]
    pub fn budget_spec(self) -> BudgetSpec {
        match self {
            EffortProfile::Smoke => BudgetSpec::Smoke,
            EffortProfile::Paper => BudgetSpec::Paper,
        }
    }

    /// The per-scaling search budget of this profile.
    #[must_use]
    pub fn budget(self) -> SearchBudget {
        self.budget_spec().to_budget()
    }

    /// Base RNG seed shared by the harnesses (experiments decorrelate it).
    #[must_use]
    pub fn seed(self) -> u64 {
        0x5EA_D5E
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_budgets() {
        assert!(
            EffortProfile::Paper.budget().max_evaluations
                > EffortProfile::Smoke.budget().max_evaluations
        );
    }
}
