//! Fig. 3 — the impact of task mapping on reliability (§III).
//!
//! 120 random task mappings of the MPEG-2 decoder on the four-core MPSoC:
//!
//! * (a) register usage `R` vs. multiprocessor execution time `TM` — the
//!   localization/duplication trade-off (decreasing);
//! * (b) SEUs experienced `Γ` vs. `TM` at uniform scaling s=1 — concave,
//!   with the minimum in the middle of the TM range;
//! * (c) the same at uniform scaling s=2 — `Γ` ≈ 2.5× higher (Observation
//!   3) and `TM` ≈ 2× longer.

use sea_arch::{Architecture, LevelSet, ScalingVector};
use sea_baselines::sweep::random_mapping_sweep;
use sea_opt::OptError;
use sea_sched::metrics::EvalContext;
use sea_taskgraph::mpeg2;

/// One point of the Fig. 3 scatter.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Point {
    /// Multiprocessor execution time in milliseconds (the paper's axis).
    pub tm_ms: f64,
    /// Total register usage in kbit/cycle.
    pub r_kbits: f64,
    /// Expected SEUs experienced.
    pub gamma: f64,
}

/// The regenerated Fig. 3 data.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Points at uniform scaling s=1 (panels a, b).
    pub scale1: Vec<Fig3Point>,
    /// Points at uniform scaling s=2 (panel c).
    pub scale2: Vec<Fig3Point>,
}

/// Runs the sweep with `count` random mappings (the paper uses 120).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run(count: usize, seed: u64) -> Result<Fig3, OptError> {
    let app = mpeg2::application();
    let arch = Architecture::arm7_calibrated(4, LevelSet::arm7_three_level());
    let ctx = EvalContext::new(&app, &arch);

    let mut out = Fig3 {
        scale1: Vec::new(),
        scale2: Vec::new(),
    };
    for (s, dest) in [(1u8, &mut out.scale1), (2u8, &mut out.scale2)] {
        let scaling = ScalingVector::uniform(s, &arch)?;
        let points = random_mapping_sweep(&ctx, &scaling, count, seed)?;
        *dest = points
            .iter()
            .map(|p| Fig3Point {
                tm_ms: p.evaluation.tm_seconds * 1e3,
                r_kbits: p.evaluation.r_total_kbits(),
                gamma: p.evaluation.gamma,
            })
            .collect();
    }
    Ok(out)
}

/// Summary statistics used to check the published shape.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Summary {
    /// Pearson correlation between `TM` and `R` at s=1 (negative: the
    /// trade-off of panel (a)).
    pub corr_tm_r: f64,
    /// Γ ratio between the s=2 and s=1 populations (≈2.5, Observation 3).
    pub gamma_ratio: f64,
    /// TM ratio between the s=2 and s=1 populations (≈2).
    pub tm_ratio: f64,
    /// Γ at the TM extremes relative to the minimum Γ at s=1 (>1 on both
    /// ends: the concavity of panel (b)).
    pub gamma_edge_over_min_low: f64,
    /// See [`Fig3Summary::gamma_edge_over_min_low`], for the high-TM edge.
    pub gamma_edge_over_min_high: f64,
}

impl Fig3 {
    /// Computes the shape summary.
    ///
    /// # Panics
    ///
    /// Panics if either population is empty.
    #[must_use]
    pub fn summary(&self) -> Fig3Summary {
        assert!(!self.scale1.is_empty() && !self.scale2.is_empty());
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let tm1: Vec<f64> = self.scale1.iter().map(|p| p.tm_ms).collect();
        let r1: Vec<f64> = self.scale1.iter().map(|p| p.r_kbits).collect();
        let g1: Vec<f64> = self.scale1.iter().map(|p| p.gamma).collect();
        let g2: Vec<f64> = self.scale2.iter().map(|p| p.gamma).collect();
        let tm2: Vec<f64> = self.scale2.iter().map(|p| p.tm_ms).collect();

        let (mt, mr) = (mean(&tm1), mean(&r1));
        let mut cov = 0.0;
        let mut vt = 0.0;
        let mut vr = 0.0;
        for (t, r) in tm1.iter().zip(&r1) {
            cov += (t - mt) * (r - mr);
            vt += (t - mt) * (t - mt);
            vr += (r - mr) * (r - mr);
        }
        let corr = cov / (vt.sqrt() * vr.sqrt()).max(f64::MIN_POSITIVE);

        // Concavity probe: sort by TM, compare edge means with the minimum.
        let mut by_tm: Vec<&Fig3Point> = self.scale1.iter().collect();
        by_tm.sort_by(|a, b| a.tm_ms.total_cmp(&b.tm_ms));
        let k = (by_tm.len() / 5).max(1);
        let low_edge = mean(&by_tm[..k].iter().map(|p| p.gamma).collect::<Vec<_>>());
        let high_edge = mean(
            &by_tm[by_tm.len() - k..]
                .iter()
                .map(|p| p.gamma)
                .collect::<Vec<_>>(),
        );
        let min_gamma = g1.iter().fold(f64::INFINITY, |a, &b| a.min(b));

        Fig3Summary {
            corr_tm_r: corr,
            gamma_ratio: mean(&g2) / mean(&g1),
            tm_ratio: mean(&tm2) / mean(&tm1),
            gamma_edge_over_min_low: low_edge / min_gamma,
            gamma_edge_over_min_high: high_edge / min_gamma,
        }
    }

    /// Renders the raw series as CSV (`scaling,tm_ms,r_kbits,gamma`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scaling,tm_ms,r_kbits,gamma\n");
        for (s, points) in [(1, &self.scale1), (2, &self.scale2)] {
            for p in points {
                out.push_str(&format!(
                    "{s},{:.3},{:.2},{:.1}\n",
                    p.tm_ms, p.r_kbits, p.gamma
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_published_shape() {
        let fig = run(120, 42).unwrap();
        assert_eq!(fig.scale1.len(), 120);
        assert_eq!(fig.scale2.len(), 120);
        let s = fig.summary();
        // (a): R falls as TM rises.
        assert!(s.corr_tm_r < -0.3, "TM/R correlation {}", s.corr_tm_r);
        // (c): Γ ratio ≈ 2.5 (it is exactly 2.5 per Observation 3 because
        // cycle counts and R are mapping-invariant under uniform scaling).
        assert!(
            (s.gamma_ratio - 2.5).abs() < 0.1,
            "gamma ratio {}",
            s.gamma_ratio
        );
        assert!((s.tm_ratio - 2.0).abs() < 0.1, "tm ratio {}", s.tm_ratio);
    }

    #[test]
    fn fig3_gamma_is_concave_in_tm() {
        let fig = run(120, 42).unwrap();
        let s = fig.summary();
        assert!(
            s.gamma_edge_over_min_low > 1.02,
            "low-TM edge {} should exceed the minimum",
            s.gamma_edge_over_min_low
        );
        assert!(
            s.gamma_edge_over_min_high > 1.02,
            "high-TM edge {} should exceed the minimum",
            s.gamma_edge_over_min_high
        );
    }

    #[test]
    fn csv_has_both_populations() {
        let fig = run(10, 1).unwrap();
        let csv = fig.to_csv();
        assert_eq!(csv.lines().count(), 21);
        assert!(csv.starts_with("scaling,tm_ms"));
    }
}
