//! Fig. 9 — relative SEUs and power of Exp:1–3 vs. the proposed Exp:4,
//! all evaluated at the same voltage scaling (2, 2, 3, 2).
//!
//! The paper reports: Exp:2 experiences up to 38 % more SEUs than Exp:4
//! while Exp:4 consumes 9 % less power; Exp:1 experiences 28 % fewer SEUs
//! on its own optimal scaling but at matched scaling the comparison uses
//! the published bars. Positive percentages mean the baseline is worse
//! (more SEUs / more power) than the proposed design.

use sea_arch::{Architecture, LevelSet, ScalingVector};
use sea_opt::OptError;
use sea_sched::metrics::EvalContext;
use sea_taskgraph::mpeg2;

use crate::report::{Column, Table};
use crate::table2::Table2;
use crate::EffortProfile;

/// One comparison bar of Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig9Bar {
    /// Baseline label (Exp:1..Exp:3).
    pub label: String,
    /// `(Γ_baseline − Γ_proposed) / Γ_proposed · 100`.
    pub delta_gamma_pct: f64,
    /// `(P_baseline − P_proposed) / P_proposed · 100`.
    pub delta_power_pct: f64,
}

/// The regenerated Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Bars for Exp:1, Exp:2, Exp:3.
    pub bars: Vec<Fig9Bar>,
    /// The matched scaling used for the comparison.
    pub scaling: Vec<u8>,
}

/// Runs the comparison: the Table II campaign re-evaluated at the fixed
/// scaling (2, 2, 3, 2) as in the paper.
///
/// # Errors
///
/// Propagates unit/evaluation errors.
pub fn run(profile: EffortProfile) -> Result<Fig9, sea_campaign::CampaignError> {
    let table2 = crate::table2::run(profile, 4)?;
    Ok(from_table2(&table2)?)
}

/// Builds Fig. 9 from an existing Table II run (avoids re-optimizing).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn from_table2(table2: &Table2) -> Result<Fig9, OptError> {
    let app = mpeg2::application();
    let arch = Architecture::arm7_calibrated(4, LevelSet::arm7_three_level());
    let ctx = EvalContext::new(&app, &arch);
    let fixed = ScalingVector::try_new(vec![2, 2, 3, 2], &arch)?;

    let evals: Vec<_> = table2
        .rows
        .iter()
        .map(|row| ctx.evaluate(&row.design.mapping, &fixed))
        .collect::<Result<_, _>>()?;
    let proposed = evals.last().expect("four rows");

    let bars = table2
        .rows
        .iter()
        .zip(&evals)
        .take(3)
        .map(|(row, e)| Fig9Bar {
            label: row.label.clone(),
            delta_gamma_pct: (e.gamma - proposed.gamma) / proposed.gamma * 100.0,
            delta_power_pct: (e.power_mw - proposed.power_mw) / proposed.power_mw * 100.0,
        })
        .collect();

    Ok(Fig9 {
        bars,
        scaling: vec![2, 2, 3, 2],
    })
}

impl Fig9 {
    /// Renders the bars as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fig. 9 - baselines vs proposed at fixed scaling {:?}",
                self.scaling
            ),
            &[
                ("experiment", Column::Left),
                ("dGamma (%)", Column::Right),
                ("dPower (%)", Column::Right),
            ],
        );
        for bar in &self.bars {
            t.push_row(vec![
                bar.label.clone(),
                format!("{:+.1}", bar.delta_gamma_pct),
                format!("{:+.1}", bar.delta_power_pct),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_matches_paper() {
        let fig = run(EffortProfile::Smoke).unwrap();
        assert_eq!(fig.bars.len(), 3);
        // At matched scaling the single-objective baselines experience more
        // SEUs than the proposed design: the paper reports +28 % (Exp:1)
        // and +38 % (Exp:2). Exp:3 (the joint TM·R baseline) is only
        // slightly worse in the paper; at smoke budgets it may tie, so its
        // bound is loose.
        assert!(
            fig.bars[0].delta_gamma_pct > 0.0,
            "Exp:1 dGamma = {}",
            fig.bars[0].delta_gamma_pct
        );
        assert!(
            fig.bars[1].delta_gamma_pct > 0.0,
            "Exp:2 dGamma = {}",
            fig.bars[1].delta_gamma_pct
        );
        assert!(
            fig.bars[2].delta_gamma_pct > -15.0,
            "Exp:3 dGamma = {}",
            fig.bars[2].delta_gamma_pct
        );
    }

    #[test]
    fn rendering() {
        let fig = run(EffortProfile::Smoke).unwrap();
        let ascii = fig.to_table().to_ascii();
        assert!(ascii.contains("Exp:1"));
        assert!(ascii.contains("dGamma"));
    }
}
