//! Fig. 10 — Exp:3 (joint `TM·R` baseline) vs. Exp:4 (proposed) across
//! architecture allocations, on the 60-task random graph.
//!
//! The paper reports that the proposed optimization consistently
//! experiences fewer SEUs (up to 7 % at six cores) at a small power cost
//! (≈3 %).
//!
//! The two flows settle at different operating points: the proposed flow
//! re-maps per scaling and so reaches deeper (lower-power) scalings than
//! the baseline's fixed mapping, where `Γ` is inherently larger. Comparing
//! raw selections would therefore penalize the proposed flow *for being
//! better at power minimization*. Like Fig. 9, the comparison is made at
//! **matched scaling**: Exp:4's column reports its explored design at the
//! scaling Exp:3 selected (falling back to Exp:4's own selection when
//! Exp:3 is infeasible), so the Γ series isolates the mapping quality the
//! paper's Fig. 10 is about.

use std::sync::Arc;

use sea_baselines::Objective;
use sea_campaign::{AppRef, CampaignError, Unit, UnitKind, UnitResult, WinTally};
use sea_opt::SelectionPolicy;
use sea_taskgraph::generator::RandomGraphConfig;
use sea_taskgraph::Application;

use crate::report::{sci, Column, Table};
use crate::EffortProfile;

/// One core-count comparison point.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Point {
    /// Core count.
    pub cores: usize,
    /// Exp:3 power (mW), if feasible.
    pub exp3_power_mw: Option<f64>,
    /// Exp:3 Γ, if feasible.
    pub exp3_gamma: Option<f64>,
    /// Exp:4 power (mW), if feasible.
    pub exp4_power_mw: Option<f64>,
    /// Exp:4 Γ, if feasible.
    pub exp4_gamma: Option<f64>,
    /// Whether the Exp:4 cells report the matched-scaling design. `false`
    /// when Exp:4 fell back to its own selection (Exp:3 infeasible, or
    /// Exp:4 infeasible at Exp:3's scaling) — such rows compare designs at
    /// different operating points and are excluded from the win rate.
    pub matched: bool,
}

/// The regenerated Fig. 10.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Points in core-count order.
    pub points: Vec<Fig10Point>,
}

/// The Fig. 10 unit grid: an Exp:3 baseline and an Exp:4 proposed run per
/// core count, interleaved `(exp3, exp4)` pairwise.
#[must_use]
pub fn units_on(
    app: &Arc<Application>,
    core_counts: &[usize],
    profile: EffortProfile,
) -> Vec<Unit> {
    let mut units = Vec::with_capacity(core_counts.len() * 2);
    for &cores in core_counts {
        for kind in [
            UnitKind::Baseline(Objective::RegTimeProduct),
            UnitKind::Optimize,
        ] {
            units.push(Unit {
                index: units.len(),
                scenario: "fig10".into(),
                kind,
                app: AppRef::Inline(Arc::clone(app)),
                cores,
                levels: 3,
                budget: profile.budget_spec(),
                selection: SelectionPolicy::default(),
                seed: profile.seed(),
            });
        }
    }
    units
}

/// Assembles Fig. 10 from the unit results (the `(exp3, exp4)` pair order
/// of [`units_on`]). Infeasible units become empty cells.
#[must_use]
pub fn from_results(core_counts: &[usize], results: &[UnitResult]) -> Fig10 {
    assert_eq!(results.len(), core_counts.len() * 2);
    let mut points = Vec::with_capacity(core_counts.len());
    for (i, &cores) in core_counts.iter().enumerate() {
        let exp3 = results[2 * i].payload.outcome().map(|out| &out.best);
        let (exp4, matched) = match results[2 * i + 1].payload.outcome() {
            Some(out) => {
                // Matched-scaling comparison (see module docs): report
                // Exp:4's explored design at the scaling Exp:3 selected.
                let matched = exp3.and_then(|e3| {
                    out.at_scaling(&e3.scaling)
                        .filter(|o| o.feasible)
                        .and_then(|o| o.best.as_ref())
                        .map(|p| p.evaluation.clone())
                });
                match matched {
                    Some(eval) => (Some(eval), true),
                    None => (Some(out.best.evaluation.clone()), false),
                }
            }
            None => (None, false),
        };
        let exp3 = exp3.map(|p| &p.evaluation);
        points.push(Fig10Point {
            cores,
            exp3_power_mw: exp3.map(|e| e.power_mw),
            exp3_gamma: exp3.map(|e| e.gamma),
            exp4_power_mw: exp4.as_ref().map(|e| e.power_mw),
            exp4_gamma: exp4.as_ref().map(|e| e.gamma),
            matched,
        });
    }
    Fig10 { points }
}

/// Runs the comparison on the paper's 60-task workload across `core_counts`.
///
/// # Errors
///
/// Propagates hard unit errors (infeasible allocations yield empty
/// cells).
pub fn run_on(
    app: &Application,
    core_counts: &[usize],
    profile: EffortProfile,
) -> Result<Fig10, CampaignError> {
    let app = Arc::new(app.clone());
    let results = crate::campaigns::run(&units_on(&app, core_counts, profile))?;
    Ok(from_results(core_counts, &results))
}

/// Runs the published configuration: 60-task graph, 2–6 cores.
///
/// # Errors
///
/// See [`run_on`].
pub fn run(profile: EffortProfile) -> Result<Fig10, CampaignError> {
    let app = RandomGraphConfig::paper(60)
        .generate(profile.seed())
        .expect("paper generator parameters are valid");
    run_on(&app, &[2, 3, 4, 5, 6], profile)
}

impl Fig10 {
    /// Renders the comparison series.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 10 - Exp:3 vs Exp:4 across core counts (60-task graph)",
            &[
                ("cores", Column::Right),
                ("Exp:3 P", Column::Right),
                ("Exp:3 Gamma", Column::Right),
                ("Exp:4 P", Column::Right),
                ("Exp:4 Gamma", Column::Right),
                ("dGamma (%)", Column::Right),
            ],
        );
        for p in &self.points {
            let fmt_p = |x: Option<f64>| x.map_or_else(|| "-".into(), |v| format!("{v:.2}"));
            let fmt_g = |x: Option<f64>| x.map_or_else(|| "-".into(), |v| sci(v, 2));
            // No Γ delta is claimed for unmatched rows: those compare
            // designs at different operating points.
            let delta = match (p.exp3_gamma, p.exp4_gamma, p.matched) {
                (Some(a), Some(b), true) => format!("{:+.1}", (b - a) / a * 100.0),
                _ => "-".into(),
            };
            t.push_row(vec![
                p.cores.to_string(),
                fmt_p(p.exp3_power_mw),
                fmt_g(p.exp3_gamma),
                fmt_p(p.exp4_power_mw),
                fmt_g(p.exp4_gamma),
                delta,
            ]);
        }
        t
    }

    /// Fraction of matched-scaling points where the proposed flow's Γ is
    /// at or below the baseline's — the paper's "consistently outperforms".
    /// Unmatched rows (see [`Fig10Point::matched`]) compare designs at
    /// different operating points and are excluded. Counting delegates to
    /// the campaign layer's [`WinTally`] so the figure and `sea-dse
    /// report` aggregates share one win rule.
    #[must_use]
    pub fn proposed_win_rate(&self) -> f64 {
        let mut tally = WinTally::default();
        for p in &self.points {
            if !p.matched {
                continue;
            }
            if let (Some(g3), Some(g4)) = (p.exp3_gamma, p.exp4_gamma) {
                tally.observe(g3, g4);
            }
        }
        tally.rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_wins_on_gamma_mostly() {
        let app = RandomGraphConfig::paper(30).generate(5).unwrap();
        let fig = run_on(&app, &[3, 4], EffortProfile::Smoke).unwrap();
        assert_eq!(fig.points.len(), 2);
        assert!(
            fig.proposed_win_rate() >= 0.5,
            "win rate {}",
            fig.proposed_win_rate()
        );
    }

    #[test]
    fn rendering() {
        let app = RandomGraphConfig::paper(20).generate(5).unwrap();
        let fig = run_on(&app, &[2], EffortProfile::Smoke).unwrap();
        let ascii = fig.to_table().to_ascii();
        assert!(ascii.contains("Exp:3"));
        assert!(ascii.contains("dGamma"));
    }
}
