//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's published artefacts:
//!
//! * [`exposure_ablation`] — WholeRun vs. BusyOnly register exposure
//!   (DESIGN.md §2.3): how much of Γ comes from idle-but-live registers.
//! * [`seed_ablation`] — the contribution of `InitialSEAMapping`: the
//!   Fig. 7 search started from the greedy soft error-aware seed vs. from
//!   a naive balanced seed, at equal budget.
//! * [`ser_sensitivity`] — Γ of a fixed design across raw SER values
//!   (expected: exactly linear, eq. 3).
//! * [`mc_validation`] — Monte-Carlo fault injection vs. the analytic Γ on
//!   the Table II designs.

use std::sync::Arc;

use sea_arch::{Architecture, CoreId, LevelSet, ScalingVector, SerModel};
use sea_campaign::{AppRef, BudgetSpec, CampaignError, Unit, UnitKind, UnitPayload, UnitResult};
use sea_opt::initial::initial_sea_mapping;
use sea_opt::optimized::optimized_mapping;
use sea_opt::{OptError, SearchBudget, SelectionPolicy};
use sea_sched::metrics::{EvalContext, ExposurePolicy};
use sea_sched::Mapping;
use sea_taskgraph::{mpeg2, Application};

use crate::report::{sci, Column, Table};

/// Outcome of the exposure-policy ablation on one design point.
#[derive(Debug, Clone, Copy)]
pub struct ExposureAblation {
    /// Γ under the default whole-run exposure.
    pub gamma_whole_run: f64,
    /// Γ counting only busy cycles.
    pub gamma_busy_only: f64,
}

/// Evaluates a design under both exposure policies.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn exposure_ablation(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
) -> Result<ExposureAblation, OptError> {
    let whole = EvalContext::new(app, arch)
        .with_exposure(ExposurePolicy::WholeRun)
        .evaluate(mapping, scaling)?;
    let busy = EvalContext::new(app, arch)
        .with_exposure(ExposurePolicy::BusyOnly)
        .evaluate(mapping, scaling)?;
    Ok(ExposureAblation {
        gamma_whole_run: whole.gamma,
        gamma_busy_only: busy.gamma,
    })
}

/// Outcome of the initial-mapping seed ablation.
#[derive(Debug, Clone)]
pub struct SeedAblation {
    /// Final Γ when the search starts from `InitialSEAMapping`.
    pub gamma_from_sea_seed: f64,
    /// Final Γ when the search starts from a balanced topological split.
    pub gamma_from_balanced_seed: f64,
    /// Γ of the SEA seed itself, before search.
    pub gamma_sea_seed_raw: f64,
}

/// Runs the Fig. 7 search from both seeds at equal budget.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn seed_ablation(
    app: &Application,
    arch: &Architecture,
    scaling: &ScalingVector,
    budget: SearchBudget,
    seed: u64,
) -> Result<SeedAblation, OptError> {
    let ctx = EvalContext::new(app, arch);
    let sea_seed = initial_sea_mapping(&ctx, scaling)?;
    let sea_raw = ctx.evaluate(&sea_seed, scaling)?;
    let from_sea = optimized_mapping(&ctx, scaling, sea_seed, budget, seed)?;

    // Balanced topological split (the baseline annealer's seed).
    let n = app.graph().len();
    let cores = arch.n_cores();
    let chunk = n.div_ceil(cores);
    let mut assign = vec![sea_arch::CoreId::new(0); n];
    for (pos, &t) in app.graph().topological_order().iter().enumerate() {
        assign[t.index()] = sea_arch::CoreId::new((pos / chunk).min(cores - 1));
    }
    let balanced = Mapping::try_new(assign, cores)?;
    let from_balanced = optimized_mapping(&ctx, scaling, balanced, budget, seed)?;

    Ok(SeedAblation {
        gamma_from_sea_seed: from_sea.evaluation.gamma,
        gamma_from_balanced_seed: from_balanced.evaluation.gamma,
        gamma_sea_seed_raw: sea_raw.gamma,
    })
}

/// Γ of a fixed design across raw SER values (`λ_ref` sweep).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn ser_sensitivity(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
    sers: &[f64],
) -> Result<Vec<(f64, f64)>, OptError> {
    sers.iter()
        .map(|&ser| {
            let eval = EvalContext::new(app, arch)
                .with_ser(SerModel::calibrated(ser))
                .evaluate(mapping, scaling)?;
            Ok((ser, eval.gamma))
        })
        .collect()
}

/// One Monte-Carlo validation row.
#[derive(Debug, Clone)]
pub struct McRow {
    /// Design label.
    pub label: String,
    /// Analytic Γ (eq. 3).
    pub gamma_analytic: f64,
    /// Monte-Carlo experienced count.
    pub experienced: u64,
    /// Relative deviation.
    pub rel_deviation: f64,
}

/// The MC-validation unit list: one `simulate` unit per design, on the
/// paper-calibrated architecture at each design's core count with
/// `levels` DVS levels (the level set the designs' scaling vectors were
/// built against — a 4-level design's coefficient 4 does not exist in
/// the 3-level set).
#[must_use]
pub fn mc_units(
    app: &Arc<Application>,
    designs: &[(String, Mapping, ScalingVector)],
    levels: usize,
    seed: u64,
) -> Vec<Unit> {
    designs
        .iter()
        .enumerate()
        .map(|(index, (label, mapping, scaling))| {
            let groups = (0..mapping.n_cores())
                .map(|c| {
                    mapping
                        .tasks_on_iter(CoreId::new(c))
                        .map(sea_taskgraph::TaskId::index)
                        .collect()
                })
                .collect();
            Unit {
                index,
                scenario: format!("mc:{label}"),
                kind: UnitKind::Simulate {
                    scaling: scaling.coefficients().to_vec(),
                    groups,
                    ser: sea_arch::ser::PAPER_SER,
                },
                app: AppRef::Inline(Arc::clone(app)),
                cores: mapping.n_cores(),
                levels,
                budget: BudgetSpec::Fast,
                selection: SelectionPolicy::default(),
                seed,
            }
        })
        .collect()
}

/// Assembles MC-validation rows from `simulate` unit results.
#[must_use]
pub fn mc_from_results(
    designs: &[(String, Mapping, ScalingVector)],
    results: &[UnitResult],
) -> Vec<McRow> {
    assert_eq!(
        results.len(),
        designs.len(),
        "one simulate unit per design (misaligned result slice?)"
    );
    designs
        .iter()
        .zip(results)
        .map(|((label, _, _), result)| {
            let UnitPayload::Sim(report) = &result.payload else {
                unreachable!("mc units are simulate units and cannot be infeasible");
            };
            let analytic = report.analytic.gamma;
            let experienced = report.faults.total_experienced;
            McRow {
                label: label.clone(),
                gamma_analytic: analytic,
                experienced,
                rel_deviation: (experienced as f64 - analytic).abs() / analytic,
            }
        })
        .collect()
}

/// Validates the analytic Γ against fault injection on a set of designs
/// (paper-calibrated architecture at each design's core count, 3 DVS
/// levels — use [`mc_units`] directly for other level sets), through the
/// campaign engine.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn mc_validation(
    app: &Application,
    designs: &[(String, Mapping, ScalingVector)],
    seed: u64,
) -> Result<Vec<McRow>, CampaignError> {
    let app = Arc::new(app.clone());
    let results = crate::campaigns::run(&mc_units(&app, designs, 3, seed))?;
    Ok(mc_from_results(designs, &results))
}

/// Renders MC validation rows.
#[must_use]
pub fn mc_table(rows: &[McRow]) -> Table {
    let mut t = Table::new(
        "Monte-Carlo fault injection vs analytic Gamma",
        &[
            ("design", Column::Left),
            ("analytic", Column::Right),
            ("simulated", Column::Right),
            ("rel. dev.", Column::Right),
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.label.clone(),
            sci(r.gamma_analytic, 3),
            r.experienced.to_string(),
            format!("{:.3}%", r.rel_deviation * 100.0),
        ]);
    }
    t
}

/// One row of the platform-overhead (CPI) sensitivity study.
#[derive(Debug, Clone, Copy)]
pub struct CpiRow {
    /// The overhead factor.
    pub overhead: f64,
    /// Whether the published proposed scaling (2,2,3,2) is feasible.
    pub proposed_feasible: bool,
    /// Whether the all-lowest combination (3,3,3,3) is feasible.
    pub all_lowest_feasible: bool,
    /// TM of the reference mapping at (2,2,3,2), seconds.
    pub tm_proposed_s: f64,
}

/// Sensitivity of the Table II regime to the platform-overhead calibration
/// (DESIGN.md §3): the published four-core outcome requires (2,2,3,2)
/// feasible but (3,3,3,3) infeasible, which pins the factor to ≈1.9.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn cpi_sensitivity(overheads: &[f64]) -> Result<Vec<CpiRow>, OptError> {
    let app = mpeg2::application();
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4)
        .expect("Table II Exp:4 mapping is well-formed");
    overheads
        .iter()
        .map(|&overhead| {
            let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level())
                .with_cpi_overhead(overhead)
                .map_err(sea_opt::OptError::from)?;
            let ctx = EvalContext::new(&app, &arch);
            let proposed = ScalingVector::try_new(vec![2, 2, 3, 2], &arch)?;
            let lowest = ScalingVector::all_lowest(&arch);
            let e_prop = ctx.evaluate(&mapping, &proposed)?;
            let e_low = ctx.evaluate(&mapping, &lowest)?;
            Ok(CpiRow {
                overhead,
                proposed_feasible: e_prop.meets_deadline,
                all_lowest_feasible: e_low.meets_deadline,
                tm_proposed_s: e_prop.tm_seconds,
            })
        })
        .collect()
}

/// Convenience: the proposed Table II design (mapping + scaling) used by
/// several ablations.
#[must_use]
pub fn reference_design() -> (Application, Architecture, Mapping, ScalingVector) {
    let app = mpeg2::application();
    let arch = Architecture::arm7_calibrated(4, LevelSet::arm7_three_level());
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4)
        .expect("Table II Exp:4 mapping is well-formed");
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).expect("Table II Exp:4 scaling");
    (app, arch, mapping, scaling)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_whole_run_dominates() {
        let (app, arch, mapping, scaling) = reference_design();
        let ab = exposure_ablation(&app, &arch, &mapping, &scaling).unwrap();
        assert!(ab.gamma_whole_run >= ab.gamma_busy_only);
        assert!(ab.gamma_busy_only > 0.0);
    }

    #[test]
    fn sea_seed_helps_or_matches_at_equal_budget() {
        let (app, arch, _, scaling) = reference_design();
        let budget = SearchBudget {
            max_evaluations: 300,
            max_stale_sweeps: 1,
            time_limit: None,
        };
        let ab = seed_ablation(&app, &arch, &scaling, budget, 9).unwrap();
        // The greedy seed should not be dramatically worse than where the
        // bounded search lands from a naive seed (it usually wins).
        assert!(ab.gamma_from_sea_seed <= ab.gamma_from_balanced_seed * 1.15);
        // And the search must never worsen its own seed.
        assert!(ab.gamma_from_sea_seed <= ab.gamma_sea_seed_raw * 1.0001);
    }

    #[test]
    fn gamma_is_linear_in_ser() {
        let (app, arch, mapping, scaling) = reference_design();
        let pts = ser_sensitivity(&app, &arch, &mapping, &scaling, &[1e-10, 1e-9, 1e-8]).unwrap();
        let base = pts[0].1 / 1e-10;
        for &(ser, gamma) in &pts {
            assert!(
                (gamma / ser / base - 1.0).abs() < 1e-9,
                "Γ must scale linearly with SER"
            );
        }
    }

    #[test]
    fn cpi_sensitivity_pins_the_calibration_window() {
        let rows = cpi_sensitivity(&[1.0, 1.5, 1.9, 2.2]).unwrap();
        // Ideal timing: everything feasible, including all-lowest.
        assert!(rows[0].proposed_feasible && rows[0].all_lowest_feasible);
        // The calibrated point: published regime — (2,2,3,2) in, (3,3,3,3) out.
        let cal = &rows[2];
        assert!(cal.proposed_feasible, "TM {}", cal.tm_proposed_s);
        assert!(!cal.all_lowest_feasible);
        // Too much overhead: even the published design misses the deadline.
        assert!(!rows[3].proposed_feasible);
        // TM grows monotonically with the factor.
        for w in rows.windows(2) {
            assert!(w[1].tm_proposed_s > w[0].tm_proposed_s);
        }
    }

    #[test]
    fn mc_matches_analytic_on_reference_design() {
        let (app, _, mapping, scaling) = reference_design();
        let rows = mc_validation(&app, &[("Exp:4".into(), mapping, scaling)], 13).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].rel_deviation < 0.05,
            "MC deviation {}",
            rows[0].rel_deviation
        );
        let ascii = mc_table(&rows).to_ascii();
        assert!(ascii.contains("Exp:4"));
    }
}
