//! Table II — soft error-unaware (Exp:1–3) vs. the proposed soft
//! error-aware optimization (Exp:4) on the four-core MPEG-2 decoder.
//!
//! Every experiment runs the same outer power-minimization loop (voltage
//! scaling enumeration, deadline = decoding 437 frames at 29.97 fps, SER
//! 10⁻⁹ SEU/bit/cycle); they differ only in the mapping stage:
//! simulated annealing minimizing `R` / `TM` / `TM·R` for Exp:1/2/3, and
//! the proposed two-stage soft error-aware mapping for Exp:4.

use std::sync::Arc;

use sea_baselines::Objective;
use sea_campaign::{AppRef, CampaignError, Unit, UnitKind, UnitResult};
use sea_opt::{DesignPoint, SelectionPolicy};
use sea_taskgraph::{mpeg2, Application};

use crate::report::{sci, Column, Table};
use crate::EffortProfile;

/// Published Table II reference values `(P mW, R kbit/cyc, TM ×10⁹ cycles,
/// Γ ×10⁵)` for Exp:1..Exp:4.
pub const PAPER_REFERENCE: [(f64, f64, f64, f64); 4] = [
    (9.53, 80.0, 1.89, 3.46),
    (4.04, 118.0, 1.18, 5.22),
    (4.15, 92.0, 1.26, 4.18),
    (4.25, 89.0, 1.32, 3.93),
];

/// One Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Experiment label ("Exp:1 (Reg. Usage)", …).
    pub label: String,
    /// The winning design point (mapping + scaling + evaluation at its own
    /// operating point, as printed in the paper's table).
    pub design: DesignPoint,
    /// Intrinsic `TM` of the mapping at uniform nominal scaling, seconds —
    /// the scaling-independent parallelism of the mapping.
    pub tm_nominal_s: f64,
    /// Γ of the mapping at the proposed design's scaling (the matched
    /// comparison behind Fig. 9 and the paper's 38 %/28 % claims).
    pub gamma_matched: f64,
}

/// The regenerated Table II.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows in experiment order Exp:1..Exp:4.
    pub rows: Vec<Table2Row>,
}

/// The four Table II units — Exp:1–3 SA baselines plus the proposed flow,
/// each an independent grid point for the campaign pool.
#[must_use]
pub fn units_on(app: &Arc<Application>, profile: EffortProfile, cores: usize) -> Vec<Unit> {
    let kinds = [
        UnitKind::Baseline(Objective::RegisterUsage),
        UnitKind::Baseline(Objective::Parallelism),
        UnitKind::Baseline(Objective::RegTimeProduct),
        UnitKind::Optimize,
    ];
    kinds
        .into_iter()
        .enumerate()
        .map(|(index, kind)| Unit {
            index,
            scenario: "table2".into(),
            kind,
            app: AppRef::Inline(Arc::clone(app)),
            cores,
            levels: 3,
            budget: profile.budget_spec(),
            selection: SelectionPolicy::default(),
            seed: profile.seed(),
        })
        .collect()
}

/// Assembles Table II from the four unit results (enumeration order:
/// Exp:1, Exp:2, Exp:3, Exp:4).
///
/// # Errors
///
/// Re-raises infeasible units as optimizer errors (the published 4-core
/// setup is feasible) and propagates evaluation errors from the derived
/// metrics.
pub fn from_results(results: &[UnitResult]) -> Result<Table2, CampaignError> {
    assert_eq!(results.len(), 4, "Table II has four experiments");
    let app = results[0].unit.app.build()?;
    let config = results[3].unit.optimizer_config();

    let mut designs: Vec<(String, DesignPoint)> = Vec::with_capacity(4);
    for result in results {
        let label = match &result.unit.kind {
            UnitKind::Baseline(objective) => objective.label().to_string(),
            _ => "Exp:4 (Proposed)".to_string(),
        };
        let out = result.payload.require_design()?;
        designs.push((label, out.best.clone()));
    }
    let matched_scaling = designs[3].1.scaling.clone();

    // Derived, scaling-normalized metrics for the shape comparison.
    let ctx = sea_sched::metrics::EvalContext::new(&app, &config.arch)
        .with_ser(config.ser)
        .with_exposure(config.exposure);
    let nominal = sea_arch::ScalingVector::all_nominal(&config.arch);
    let rows = designs
        .into_iter()
        .map(|(label, design)| {
            let tm_nominal_s = ctx.evaluate(&design.mapping, &nominal)?.tm_seconds;
            let gamma_matched = ctx.evaluate(&design.mapping, &matched_scaling)?.gamma;
            Ok(Table2Row {
                label,
                design,
                tm_nominal_s,
                gamma_matched,
            })
        })
        .collect::<Result<Vec<_>, sea_opt::OptError>>()?;
    Ok(Table2 { rows })
}

/// Runs all four experiments on the MPEG-2 decoder with `cores` cores.
///
/// # Errors
///
/// Propagates unit errors; infeasibility should not occur for the
/// published 4-core setup.
pub fn run(profile: EffortProfile, cores: usize) -> Result<Table2, CampaignError> {
    run_on(&mpeg2::application(), profile, cores)
}

/// Runs the four experiments on an arbitrary application (used by Fig. 10
/// and Table III with random graphs) through the campaign engine.
///
/// # Errors
///
/// Propagates unit errors.
pub fn run_on(
    app: &Application,
    profile: EffortProfile,
    cores: usize,
) -> Result<Table2, CampaignError> {
    let app = Arc::new(app.clone());
    let results = crate::campaigns::run(&units_on(&app, profile, cores))?;
    from_results(&results)
}

impl Table2 {
    /// The Exp:4 (proposed) row.
    ///
    /// # Panics
    ///
    /// Panics if the table was constructed without the proposed row.
    #[must_use]
    pub fn proposed(&self) -> &Table2Row {
        self.rows.last().expect("table has four rows")
    }

    /// Renders the table in the paper's column layout, with the published
    /// values alongside for comparison.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Table II - MPEG-2 decoder, four cores",
            &[
                ("experiment", Column::Left),
                ("mapping", Column::Left),
                ("scaling", Column::Left),
                ("P (mW)", Column::Right),
                ("R (kbit/c)", Column::Right),
                ("TM (1e9 cy)", Column::Right),
                ("Gamma", Column::Right),
                ("paper P", Column::Right),
                ("paper R", Column::Right),
                ("paper TM", Column::Right),
                ("paper Gamma", Column::Right),
            ],
        );
        for (i, row) in self.rows.iter().enumerate() {
            let e = &row.design.evaluation;
            let (pp, pr, ptm, pg) =
                PAPER_REFERENCE
                    .get(i)
                    .copied()
                    .unwrap_or((f64::NAN, f64::NAN, f64::NAN, f64::NAN));
            t.push_row(vec![
                row.label.clone(),
                row.design.mapping.to_string(),
                row.design.scaling.to_string(),
                format!("{:.2}", e.power_mw),
                format!("{:.1}", e.r_total_kbits()),
                format!("{:.2}", e.tm_nominal_cycles / 1e9),
                sci(e.gamma, 2),
                format!("{pp:.2}"),
                format!("{pr:.0}"),
                format!("{ptm:.2}"),
                sci(pg * 1e5, 2),
            ]);
        }
        t
    }

    /// Shape checks against the paper's qualitative claims; returns the
    /// list of violated expectations (empty = full qualitative agreement).
    ///
    /// Each claim is checked on a scaling-consistent footing:
    ///
    /// * register usage `R` is scaling-independent — the min-`R` baseline
    ///   must sit at or below the proposed design, the parallelism
    ///   baseline above it (Table II: 80 ≤ 89 < 118);
    /// * mapping parallelism is compared at uniform nominal scaling —
    ///   Exp:2's mapping must be the fastest, Exp:1's the slowest;
    /// * reliability is compared at the proposed design's scaling (the
    ///   paper's Fig. 9 matched-scaling comparison): the proposed mapping
    ///   must experience the fewest SEUs (paper: −38 % vs Exp:2, −28 % vs
    ///   Exp:1);
    /// * power: the min-`R` baseline cannot scale down and pays the
    ///   highest power (Table II: 9.53 mW vs ~4 mW).
    #[must_use]
    pub fn shape_violations(&self) -> Vec<String> {
        let r = |i: usize| &self.rows[i];
        let mut v = Vec::new();
        let mut check = |ok: bool, what: &str| {
            if !ok {
                v.push(what.to_string());
            }
        };
        // Register usage (scaling-independent).
        check(
            r(0).design.evaluation.r_total <= r(3).design.evaluation.r_total,
            "R: Exp1 <= Exp4",
        );
        check(
            r(3).design.evaluation.r_total < r(1).design.evaluation.r_total,
            "R: Exp4 < Exp2",
        );
        // Intrinsic parallelism at nominal scaling.
        check(
            r(1).tm_nominal_s <= r(2).tm_nominal_s,
            "TM@nominal: Exp2 <= Exp3",
        );
        check(
            r(1).tm_nominal_s < r(0).tm_nominal_s,
            "TM@nominal: Exp2 < Exp1",
        );
        // SEUs at matched scaling.
        check(
            r(3).gamma_matched < r(1).gamma_matched,
            "Gamma@matched: Exp4 < Exp2",
        );
        check(
            r(3).gamma_matched <= r(2).gamma_matched,
            "Gamma@matched: Exp4 <= Exp3",
        );
        check(
            r(3).gamma_matched < r(0).gamma_matched,
            "Gamma@matched: Exp4 < Exp1",
        );
        // Power: the min-R baseline pays the most.
        check(
            r(0).design.evaluation.power_mw > r(1).design.evaluation.power_mw,
            "P: Exp1 > Exp2",
        );
        check(
            r(0).design.evaluation.power_mw > r(3).design.evaluation.power_mw,
            "P: Exp1 > Exp4",
        );
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_smoke_run_has_paper_shape() {
        let t2 = run(EffortProfile::Smoke, 4).unwrap();
        assert_eq!(t2.rows.len(), 4);
        for row in &t2.rows {
            assert!(row.design.evaluation.meets_deadline, "{}", row.label);
            assert!(row.design.mapping.uses_all_cores(), "{}", row.label);
        }
        let violations = t2.shape_violations();
        assert!(
            violations.len() <= 1,
            "too many shape violations: {violations:?}"
        );
    }

    #[test]
    fn rendering_includes_all_rows_and_references() {
        let t2 = run(EffortProfile::Smoke, 4).unwrap();
        let ascii = t2.to_table().to_ascii();
        for label in ["Exp:1", "Exp:2", "Exp:3", "Exp:4"] {
            assert!(ascii.contains(label), "missing {label} in:\n{ascii}");
        }
        assert!(ascii.contains("9.53"), "paper reference column present");
        let csv = t2.to_table().to_csv();
        assert_eq!(csv.lines().count(), 5);
    }
}
