//! Table III — impact of architecture allocation (2–6 cores) on the power
//! consumption and SEUs experienced by the proposed optimization (Exp:4).
//!
//! Applications: the MPEG-2 decoder plus random task graphs of 20–100
//! tasks with the §V generator parameters. The paper's two observations:
//! the power-minimal core count depends on the application and deadline,
//! and Γ grows with the core count (more parallelism → lower TM → deeper
//! voltage scaling and more register duplication).

use std::sync::Arc;

use sea_campaign::{AppRef, CampaignError, Unit, UnitKind, UnitResult};
use sea_opt::SelectionPolicy;
use sea_taskgraph::generator::RandomGraphConfig;
use sea_taskgraph::{mpeg2, Application};

use crate::report::{sci, Column, Table};
use crate::EffortProfile;

/// One Table III cell.
#[derive(Debug, Clone, Copy)]
pub struct Table3Cell {
    /// Core count.
    pub cores: usize,
    /// Power in mW (empty if infeasible at this allocation).
    pub power_mw: Option<f64>,
    /// Expected SEUs.
    pub gamma: Option<f64>,
}

/// One Table III row: an application across core counts.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application label ("MPEG-2", "20 tasks", …).
    pub label: String,
    /// Cells in core-count order.
    pub cells: Vec<Table3Cell>,
}

/// The regenerated Table III.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Core counts covered (columns).
    pub core_counts: Vec<usize>,
    /// Rows in application order.
    pub rows: Vec<Table3Row>,
}

/// The published workloads: MPEG-2 plus random graphs of 20..=100 tasks.
#[must_use]
pub fn paper_workloads(seed: u64) -> Vec<(String, Application)> {
    let mut out = vec![("MPEG-2".to_string(), mpeg2::application())];
    for n in [20usize, 40, 60, 80, 100] {
        let app = RandomGraphConfig::paper(n)
            .generate(seed)
            .expect("paper generator parameters are valid");
        out.push((format!("{n} tasks"), app));
    }
    out
}

/// The Table III unit grid: one proposed-flow optimization per
/// `(workload, core count)` cell, workload-major — a wide, embarrassingly
/// parallel list the campaign pool schedules across.
#[must_use]
pub fn units_on(
    workloads: &[(String, Application)],
    core_counts: &[usize],
    profile: EffortProfile,
) -> Vec<Unit> {
    let mut units = Vec::with_capacity(workloads.len() * core_counts.len());
    for (label, app) in workloads {
        let app = Arc::new(app.clone());
        for &cores in core_counts {
            units.push(Unit {
                index: units.len(),
                scenario: format!("table3:{label}"),
                kind: UnitKind::Optimize,
                app: AppRef::Inline(Arc::clone(&app)),
                cores,
                levels: 3,
                budget: profile.budget_spec(),
                selection: SelectionPolicy::default(),
                seed: profile.seed(),
            });
        }
    }
    units
}

/// Assembles Table III from the unit results (same workload-major order
/// as [`units_on`]). Infeasible units become empty cells.
#[must_use]
pub fn from_results(
    workloads: &[(String, Application)],
    core_counts: &[usize],
    results: &[UnitResult],
) -> Table3 {
    assert_eq!(results.len(), workloads.len() * core_counts.len());
    let mut rows = Vec::with_capacity(workloads.len());
    for (w, (label, _)) in workloads.iter().enumerate() {
        let cells = core_counts
            .iter()
            .enumerate()
            .map(|(c, &cores)| {
                let best = results[w * core_counts.len() + c]
                    .payload
                    .outcome()
                    .map(|out| &out.best.evaluation);
                Table3Cell {
                    cores,
                    power_mw: best.map(|e| e.power_mw),
                    gamma: best.map(|e| e.gamma),
                }
            })
            .collect();
        rows.push(Table3Row {
            label: label.clone(),
            cells,
        });
    }
    Table3 {
        core_counts: core_counts.to_vec(),
        rows,
    }
}

/// Runs Table III over the given workloads and core counts.
///
/// Infeasible (application, cores) combinations yield empty cells rather
/// than failing the whole table.
///
/// # Errors
///
/// Propagates hard unit errors (infeasibility is an empty cell).
pub fn run_on(
    workloads: &[(String, Application)],
    core_counts: &[usize],
    profile: EffortProfile,
) -> Result<Table3, CampaignError> {
    let results = crate::campaigns::run(&units_on(workloads, core_counts, profile))?;
    Ok(from_results(workloads, core_counts, &results))
}

/// Runs the published Table III (six workloads, 2–6 cores).
///
/// # Errors
///
/// See [`run_on`].
pub fn run(profile: EffortProfile) -> Result<Table3, CampaignError> {
    run_on(&paper_workloads(profile.seed()), &[2, 3, 4, 5, 6], profile)
}

impl Table3 {
    /// Renders the table in the paper's layout (P and Γ per core count).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut header: Vec<(String, Column)> = vec![("app".to_string(), Column::Left)];
        for c in &self.core_counts {
            header.push((format!("{c}C P(mW)"), Column::Right));
            header.push((format!("{c}C Gamma"), Column::Right));
        }
        let header_refs: Vec<(&str, Column)> =
            header.iter().map(|(h, a)| (h.as_str(), *a)).collect();
        let mut t = Table::new("Table III - proposed flow across core counts", &header_refs);
        for row in &self.rows {
            let mut cells = vec![row.label.clone()];
            for c in &row.cells {
                cells.push(
                    c.power_mw
                        .map_or_else(|| "-".to_string(), |p| format!("{p:.2}")),
                );
                cells.push(c.gamma.map_or_else(|| "-".to_string(), |g| sci(g, 2)));
            }
            t.push_row(cells);
        }
        t
    }

    /// Checks the paper's second observation: Γ grows with the number of
    /// cores. Returns per-row counts of `(monotone steps, total steps)`
    /// over adjacent feasible cells.
    #[must_use]
    pub fn gamma_monotonicity(&self) -> Vec<(String, usize, usize)> {
        self.rows
            .iter()
            .map(|row| {
                let gammas: Vec<f64> = row.cells.iter().filter_map(|c| c.gamma).collect();
                let total = gammas.len().saturating_sub(1);
                let monotone = gammas.windows(2).filter(|w| w[1] >= w[0]).count();
                (row.label.clone(), monotone, total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpeg2_row_gamma_grows_with_cores() {
        let workloads = vec![("MPEG-2".to_string(), mpeg2::application())];
        let t3 = run_on(&workloads, &[2, 3, 4], EffortProfile::Smoke).unwrap();
        let row = &t3.rows[0];
        let gammas: Vec<f64> = row.cells.iter().filter_map(|c| c.gamma).collect();
        assert_eq!(gammas.len(), 3, "all allocations feasible");
        assert!(
            gammas[2] > gammas[0],
            "Γ must grow from 2 to 4 cores: {gammas:?}"
        );
    }

    #[test]
    fn random_graph_row_completes() {
        let app = RandomGraphConfig::paper(20).generate(7).unwrap();
        let workloads = vec![("20 tasks".to_string(), app)];
        let t3 = run_on(&workloads, &[2, 4], EffortProfile::Smoke).unwrap();
        assert_eq!(t3.rows[0].cells.len(), 2);
        for c in &t3.rows[0].cells {
            assert!(c.power_mw.is_some(), "{} cores should be feasible", c.cores);
        }
    }

    #[test]
    fn rendering_marks_infeasible_cells() {
        // A brutally tight deadline makes every allocation infeasible.
        let app = mpeg2::application().with_deadline(0.01).unwrap();
        let workloads = vec![("tight".to_string(), app)];
        let t3 = run_on(&workloads, &[2], EffortProfile::Smoke).unwrap();
        let ascii = t3.to_table().to_ascii();
        assert!(ascii.contains('-'), "infeasible cell rendered as dash");
    }
}
