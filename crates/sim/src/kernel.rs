//! A minimal discrete-event simulation kernel.
//!
//! Events are `(time, payload)` pairs popped in time order; simultaneous
//! events pop in insertion order (a monotone sequence number breaks ties),
//! which keeps every simulation fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered event queue.
///
/// ```
/// use sea_sim::kernel::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(2.0, "late");
/// q.push(1.0, "early");
/// q.push(1.0, "early-second");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((1.0, "early-second")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `total_cmp` gives a total order even for pathological
        // floats (NaN times are rejected at push).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or negative — an event in the past or at an
    /// undefined time indicates a simulation bug.
    pub fn push(&mut self, time: f64, payload: E) {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be finite and non-negative, got {time}"
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(t, t as u64);
        }
        let mut out = Vec::new();
        while let Some((_, p)) = q.pop() {
            out.push(p);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 'a');
        q.push(1.0, 'b');
        q.push(1.0, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(2.5, ());
        q.push(0.5, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn rejects_negative_time() {
        let mut q = EventQueue::new();
        q.push(-1.0, ());
    }
}
