//! Export of simulation artefacts for external analysis/visualization.
//!
//! Execution traces and fault reports export as CSV (self-describing
//! headers, one record per line); the execution trace additionally renders
//! as a compact per-core ASCII timeline — handy for eyeballing pipeline
//! overlap across a few frames without leaving the terminal.

use std::fmt::Write as _;

use sea_arch::CoreId;

use crate::engine::ExecutionTrace;
use crate::fault::FaultReport;

/// CSV of every executed task instance:
/// `task,iteration,core,start_s,finish_s`.
#[must_use]
pub fn trace_to_csv(trace: &ExecutionTrace) -> String {
    let mut out = String::from("task,iteration,core,start_s,finish_s\n");
    for e in &trace.events {
        let _ = writeln!(
            out,
            "{},{},{},{:.9},{:.9}",
            e.task, e.iteration, e.core, e.start_s, e.finish_s
        );
    }
    out
}

/// CSV of the per-core fault summary:
/// `core,injected,experienced,expected,r_bits,exposure_cycles`.
#[must_use]
pub fn faults_to_csv(report: &FaultReport) -> String {
    let mut out = String::from("core,injected,experienced,expected,r_bits,exposure_cycles\n");
    for cf in &report.per_core {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{},{:.0}",
            cf.core,
            cf.injected,
            cf.experienced,
            cf.expected_experienced,
            cf.r_bits.as_u64(),
            cf.exposure_cycles
        );
    }
    out
}

/// CSV of the materialized SEU events: `core,time_s,block,experienced`.
#[must_use]
pub fn seu_events_to_csv(report: &FaultReport) -> String {
    let mut out = String::from("core,time_s,block,experienced\n");
    for e in &report.events {
        let _ = writeln!(
            out,
            "{},{:.9},{},{}",
            e.core,
            e.time_s,
            e.block.map_or_else(|| "-".to_string(), |b| b.to_string()),
            e.experienced
        );
    }
    out
}

/// Renders the first `max_iterations` iterations of a trace as per-core
/// ASCII timelines (one row per core, `width` character columns spanning
/// the rendered window).
#[must_use]
pub fn trace_timeline(trace: &ExecutionTrace, max_iterations: u32, width: usize) -> String {
    let window: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.iteration < max_iterations)
        .collect();
    let span = window
        .iter()
        .map(|e| e.finish_s)
        .fold(f64::MIN_POSITIVE, f64::max);
    let n_cores = trace.busy_s.len();
    let mut out = String::new();
    for c in 0..n_cores {
        let mut row = vec![' '; width];
        for e in window.iter().filter(|e| e.core == CoreId::new(c)) {
            let a = ((e.start_s / span) * width as f64).floor() as usize;
            let b = (((e.finish_s / span) * width as f64).ceil() as usize).min(width);
            let label: Vec<char> = e.task.to_string().chars().collect();
            for (k, slot) in row.iter_mut().take(b).skip(a).enumerate() {
                *slot = *label.get(k).unwrap_or(&'#');
            }
        }
        let _ = writeln!(
            out,
            "{:>6} |{}",
            CoreId::new(c).to_string(),
            row.into_iter().collect::<String>()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_execution;
    use crate::{fault, SimConfig};
    use sea_arch::{Architecture, LevelSet, ScalingVector};
    use sea_sched::Mapping;

    fn setup() -> (ExecutionTrace, FaultReport) {
        let app = sea_taskgraph::presets::jpeg_encoder();
        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let mapping = Mapping::from_groups(&[&[0, 1, 3], &[2, 4, 5], &[6, 7]], 3).unwrap();
        let scaling = ScalingVector::all_nominal(&arch);
        let trace = simulate_execution(&app, &arch, &mapping, &scaling).unwrap();
        let mut cfg = SimConfig::seeded(3);
        cfg.ser = sea_arch::SerModel::calibrated(1e-7);
        let report = fault::inject(&app, &arch, &mapping, &scaling, &trace, &cfg).unwrap();
        (trace, report)
    }

    #[test]
    fn trace_csv_has_all_instances() {
        let (trace, _) = setup();
        let csv = trace_to_csv(&trace);
        // Header + one line per instance (8 tasks × 300 iterations).
        assert_eq!(csv.lines().count(), 1 + 8 * 300);
        assert!(csv.starts_with("task,iteration,core"));
        assert!(csv.contains("t1,0,core1"));
    }

    #[test]
    fn fault_csv_covers_every_core() {
        let (_, report) = setup();
        let csv = faults_to_csv(&report);
        assert_eq!(csv.lines().count(), 4);
        for c in ["core1", "core2", "core3"] {
            assert!(csv.contains(c), "missing {c}");
        }
    }

    #[test]
    fn seu_event_csv_matches_materialized_events() {
        let (_, report) = setup();
        let csv = seu_events_to_csv(&report);
        assert_eq!(csv.lines().count(), 1 + report.events.len());
    }

    #[test]
    fn timeline_renders_one_row_per_core() {
        let (trace, _) = setup();
        let tl = trace_timeline(&trace, 2, 72);
        assert_eq!(tl.lines().count(), 3);
        assert!(tl.contains("core1"));
        assert!(tl.contains('t'), "task labels visible");
    }

    #[test]
    fn timeline_handles_empty_window() {
        let (trace, _) = setup();
        let tl = trace_timeline(&trace, 0, 40);
        assert_eq!(tl.lines().count(), 3, "rows exist even with no events");
    }
}
