//! SEU fault injection (paper §II-B, ref. \[11\]).
//!
//! The authors' SystemC flow keeps a centralized list of the register space
//! and draws the number and location of injected SEUs from a Poisson
//! process at the configured soft error rate. We reproduce that flow over
//! the simulator's measured execution trace:
//!
//! * For every core, upsets strike the **full** per-core register space `S`
//!   (register file + caches + private memory) at rate `λ_i(Vdd_i)` per bit
//!   per cycle over the exposure window `T_i`.
//! * A strike landing inside the core's *allocated* working set `R_i` (the
//!   union of the mapped tasks' register blocks, eq. 8) is **experienced**;
//!   strikes on unused bits are masked.
//!
//! By Poisson thinning the two-stage process is sampled exactly as two
//! independent Poisson draws — `experienced ~ Poisson(λ R T)` and
//! `masked ~ Poisson(λ (S−R) T)` — so `E[experienced]` equals eq. (3)'s `Γ`
//! by construction, and the Monte-Carlo count validates the analytic model.
//!
//! Two injection modes are provided: [`InjectionMode::Segmented`] samples
//! one draw per (core, exposure segment) and is exact in distribution;
//! [`InjectionMode::PerCycle`] literally walks every cycle (bounded by a
//! cap) and exists to validate the segment acceleration on small runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sea_arch::{Architecture, CoreId, ScalingVector};
use sea_sched::metrics::ExposurePolicy;
use sea_sched::Mapping;
use sea_taskgraph::registers::RegisterBlockId;
use sea_taskgraph::units::Bits;
use sea_taskgraph::Application;

use crate::engine::ExecutionTrace;
use crate::rng::poisson;
use crate::{SimConfig, SimError};

/// Hard cap on literal per-cycle injection.
pub const PER_CYCLE_CAP: u64 = 50_000_000;

/// How SEU counts are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InjectionMode {
    /// One Poisson draw per core and exposure segment (exact, fast).
    #[default]
    Segmented,
    /// One Poisson draw per clock cycle (validation mode; runs longer than
    /// [`PER_CYCLE_CAP`] total cycles are rejected).
    PerCycle,
}

/// One materialized SEU with detail (capped by
/// [`SimConfig::max_detailed_events`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeuEvent {
    /// Core whose register space was struck.
    pub core: CoreId,
    /// Strike time in seconds.
    pub time_s: f64,
    /// Block hit, when the strike landed in the allocated working set.
    pub block: Option<RegisterBlockId>,
    /// True if the strike hit allocated (used) bits.
    pub experienced: bool,
}

/// Per-core injection outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreFaults {
    /// The core.
    pub core: CoreId,
    /// Upsets injected anywhere in the core's register space.
    pub injected: u64,
    /// Upsets that landed in the allocated working set (`R_i`).
    pub experienced: u64,
    /// Analytic expectation `λ_i · R_i · T_i` for this core.
    pub expected_experienced: f64,
    /// Allocated working set size.
    pub r_bits: Bits,
    /// Exposure window in cycles of this core's clock.
    pub exposure_cycles: f64,
}

/// Outcome of injecting faults into one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Per-core breakdown.
    pub per_core: Vec<CoreFaults>,
    /// Total injected upsets (experienced + masked).
    pub total_injected: u64,
    /// Total experienced upsets — the Monte-Carlo counterpart of `Γ`.
    pub total_experienced: u64,
    /// Analytic `Γ` (sum of per-core expectations).
    pub gamma_expected: f64,
    /// Detailed events, at most `max_detailed_events`.
    pub events: Vec<SeuEvent>,
}

/// Injects SEUs into a measured execution trace.
///
/// # Errors
///
/// Returns [`SimError::RunTooLongForPerCycle`] if literal injection is
/// requested for a run longer than [`PER_CYCLE_CAP`] cycles, and
/// [`SimError::Sched`] for shape mismatches.
pub fn inject(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
    trace: &ExecutionTrace,
    config: &SimConfig,
) -> Result<FaultReport, SimError> {
    if mapping.n_tasks() != app.graph().len() || mapping.n_cores() != arch.n_cores() {
        return Err(SimError::Sched(sea_sched::SchedError::ShapeMismatch {
            what: "mapping does not match application/architecture".into(),
        }));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let registers = app.registers();
    let space = arch.core_register_space().as_f64();

    let mut per_core = Vec::with_capacity(arch.n_cores());
    let mut events = Vec::new();
    let mut total_injected = 0u64;
    let mut total_experienced = 0u64;
    let mut gamma_expected = 0.0f64;

    for core in arch.cores() {
        let level = arch.operating_point(core, scaling);
        let lambda = config.ser.lambda(level.vdd);
        let exposure_s = match config.exposure {
            ExposurePolicy::WholeRun => trace.tm_seconds,
            ExposurePolicy::BusyOnly => trace.busy_s[core.index()],
        };
        let exposure_cycles = exposure_s * level.f_hz;
        let tasks = mapping.tasks_on(core);
        let r_bits = registers.union_bits(tasks.iter().copied());
        let r = r_bits.as_f64();
        debug_assert!(
            r <= space,
            "working set ({r} bit) exceeds the core register space ({space} bit)"
        );

        let mean_experienced = lambda * r * exposure_cycles;
        let mean_masked = lambda * (space - r).max(0.0) * exposure_cycles;

        let (experienced, masked) = match config.mode {
            InjectionMode::Segmented => (
                poisson(&mut rng, mean_experienced),
                poisson(&mut rng, mean_masked),
            ),
            InjectionMode::PerCycle => {
                let cycles = exposure_cycles.round() as u64;
                if cycles > PER_CYCLE_CAP {
                    return Err(SimError::RunTooLongForPerCycle {
                        cycles,
                        cap: PER_CYCLE_CAP,
                    });
                }
                let per_cycle_exp = lambda * r;
                let per_cycle_mask = lambda * (space - r).max(0.0);
                let mut e = 0u64;
                let mut m = 0u64;
                for _ in 0..cycles {
                    e += poisson(&mut rng, per_cycle_exp);
                    m += poisson(&mut rng, per_cycle_mask);
                }
                (e, m)
            }
        };

        // Materialize detailed events up to the cap: strike times uniform
        // over the exposure window, blocks picked proportionally to size.
        let block_weights: Vec<(RegisterBlockId, f64)> = {
            let mut seen = vec![false; registers.blocks().len()];
            let mut out = Vec::new();
            for &t in &tasks {
                for &b in registers.task_blocks(t) {
                    if !seen[b.index()] {
                        seen[b.index()] = true;
                        out.push((b, registers.block(b).bits().as_f64()));
                    }
                }
            }
            out
        };
        let detail_budget = config.max_detailed_events.saturating_sub(events.len());
        let detailed =
            usize::try_from(experienced.min(detail_budget as u64)).expect("bounded by the cap");
        for _ in 0..detailed {
            let time_s = rng.gen_range(0.0..=exposure_s.max(f64::MIN_POSITIVE));
            let block = pick_weighted(&mut rng, &block_weights);
            events.push(SeuEvent {
                core,
                time_s,
                block,
                experienced: true,
            });
        }

        total_injected += experienced + masked;
        total_experienced += experienced;
        gamma_expected += mean_experienced;
        per_core.push(CoreFaults {
            core,
            injected: experienced + masked,
            experienced,
            expected_experienced: mean_experienced,
            r_bits,
            exposure_cycles,
        });
    }

    Ok(FaultReport {
        per_core,
        total_injected,
        total_experienced,
        gamma_expected,
        events,
    })
}

fn pick_weighted(rng: &mut StdRng, weights: &[(RegisterBlockId, f64)]) -> Option<RegisterBlockId> {
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen_range(0.0..total);
    for &(id, w) in weights {
        if x < w {
            return Some(id);
        }
        x -= w;
    }
    weights.last().map(|&(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_execution;
    use sea_arch::LevelSet;
    use sea_taskgraph::graph::TaskGraphBuilder;
    use sea_taskgraph::registers::RegisterModelBuilder;
    use sea_taskgraph::units::Cycles;
    use sea_taskgraph::{ExecutionMode, TaskId};

    fn arch(n: usize) -> Architecture {
        Architecture::homogeneous(n, LevelSet::arm7_three_level())
    }

    fn small_app() -> Application {
        let mut b = TaskGraphBuilder::new("small");
        let a = b.add_task("a", Cycles::new(2_000_000));
        let c = b.add_task("b", Cycles::new(2_000_000));
        b.add_edge(a, c, Cycles::new(100_000)).unwrap();
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(2);
        for i in 0..2 {
            let blk = rm.add_block(format!("p{i}"), Bits::from_kbits(40.0));
            rm.assign(TaskId::new(i), blk).unwrap();
        }
        Application::new("small", g, rm.build(), ExecutionMode::Batch, 10.0).unwrap()
    }

    fn run(app: &Application, arch: &Architecture, m: &Mapping, cfg: &SimConfig) -> FaultReport {
        let s = ScalingVector::all_nominal(arch);
        let trace = simulate_execution(app, arch, m, &s).unwrap();
        inject(app, arch, m, &s, &trace, cfg).unwrap()
    }

    #[test]
    fn experienced_matches_expectation_statistically() {
        let app = small_app();
        let arch = arch(2);
        let m = Mapping::from_groups(&[&[0], &[1]], 2).unwrap();
        let mut sum = 0.0f64;
        let mut expect = 0.0f64;
        for seed in 0..40 {
            let r = run(&app, &arch, &m, &SimConfig::seeded(seed));
            sum += r.total_experienced as f64;
            expect = r.gamma_expected;
        }
        let mean = sum / 40.0;
        let rel = (mean - expect).abs() / expect;
        assert!(rel < 0.05, "MC mean {mean} vs expectation {expect}");
    }

    #[test]
    fn masked_plus_experienced_cover_whole_space() {
        let app = small_app();
        let arch = arch(2);
        let m = Mapping::from_groups(&[&[0], &[1]], 2).unwrap();
        let r = run(&app, &arch, &m, &SimConfig::seeded(3));
        // The space is ~537 kbit while the working set is 40 kbit per core:
        // most strikes are masked.
        assert!(r.total_injected > r.total_experienced);
        for cf in &r.per_core {
            assert!(cf.injected >= cf.experienced);
        }
    }

    #[test]
    fn per_cycle_mode_agrees_with_segmented() {
        // A deliberately tiny run so the literal per-cycle walk stays fast
        // in debug builds.
        let mut b = TaskGraphBuilder::new("tiny");
        let a = b.add_task("a", Cycles::new(150_000));
        let c = b.add_task("b", Cycles::new(150_000));
        b.add_edge(a, c, Cycles::new(10_000)).unwrap();
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(2);
        for i in 0..2 {
            let blk = rm.add_block(format!("p{i}"), Bits::from_kbits(40.0));
            rm.assign(TaskId::new(i), blk).unwrap();
        }
        let app = Application::new("tiny", g, rm.build(), ExecutionMode::Batch, 10.0).unwrap();
        let arch = arch(2);
        let m = Mapping::from_groups(&[&[0], &[1]], 2).unwrap();
        let mut seg_sum = 0u64;
        let mut lit_sum = 0u64;
        for seed in 0..6 {
            let mut cfg = SimConfig::seeded(seed);
            cfg.ser = sea_arch::SerModel::calibrated(3e-6); // boost statistics
            cfg.mode = InjectionMode::Segmented;
            seg_sum += run(&app, &arch, &m, &cfg).total_experienced;
            cfg.mode = InjectionMode::PerCycle;
            lit_sum += run(&app, &arch, &m, &cfg).total_experienced;
        }
        let rel = (seg_sum as f64 - lit_sum as f64).abs() / seg_sum as f64;
        assert!(rel < 0.1, "segmented {seg_sum} vs per-cycle {lit_sum}");
    }

    #[test]
    fn per_cycle_mode_rejects_long_runs() {
        let app = sea_taskgraph::mpeg2::application();
        let arch = arch(4);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        let mut cfg = SimConfig::seeded(0);
        cfg.mode = InjectionMode::PerCycle;
        assert!(matches!(
            inject(&app, &arch, &m, &s, &trace, &cfg).unwrap_err(),
            SimError::RunTooLongForPerCycle { .. }
        ));
    }

    #[test]
    fn detailed_events_are_capped_and_plausible() {
        let app = small_app();
        let arch = arch(2);
        let m = Mapping::from_groups(&[&[0], &[1]], 2).unwrap();
        let mut cfg = SimConfig::seeded(1);
        cfg.ser = sea_arch::SerModel::calibrated(1e-6);
        cfg.max_detailed_events = 50;
        let s = ScalingVector::all_nominal(&arch);
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        let r = inject(&app, &arch, &m, &s, &trace, &cfg).unwrap();
        assert!(r.events.len() <= 50);
        assert!(!r.events.is_empty());
        for e in &r.events {
            assert!(e.experienced);
            assert!(e.block.is_some());
            assert!(e.time_s >= 0.0 && e.time_s <= trace.tm_seconds + 1e-12);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let app = small_app();
        let arch = arch(2);
        let m = Mapping::from_groups(&[&[0], &[1]], 2).unwrap();
        let a = run(&app, &arch, &m, &SimConfig::seeded(11));
        let b = run(&app, &arch, &m, &SimConfig::seeded(11));
        assert_eq!(a, b);
    }

    #[test]
    fn lower_voltage_raises_experienced_counts() {
        let app = small_app();
        let arch = arch(2);
        let m = Mapping::from_groups(&[&[0], &[1]], 2).unwrap();
        let cfg = SimConfig::seeded(5);
        let s1 = ScalingVector::all_nominal(&arch);
        let s3 = ScalingVector::all_lowest(&arch);
        let t1 = simulate_execution(&app, &arch, &m, &s1).unwrap();
        let t3 = simulate_execution(&app, &arch, &m, &s3).unwrap();
        let r1 = inject(&app, &arch, &m, &s1, &t1, &cfg).unwrap();
        let r3 = inject(&app, &arch, &m, &s3, &t3, &cfg).unwrap();
        assert!(
            r3.gamma_expected > 3.0 * r1.gamma_expected,
            "s=3 must raise Γ: {} vs {}",
            r3.gamma_expected,
            r1.gamma_expected
        );
    }

    #[test]
    fn busy_only_exposure_reduces_counts() {
        let app = small_app();
        let arch = arch(2);
        // Both tasks on core 1: core 2 idles, so BusyOnly zeroes core 2 and
        // shortens nothing else; with WholeRun core 2 contributes nothing
        // anyway (empty working set) but core 1 is identical. Use a mapping
        // with an idle-but-loaded core instead: both tasks on core 1, and
        // compare against a split mapping.
        let serial = Mapping::from_groups(&[&[0, 1]], 2).unwrap();
        let s = ScalingVector::all_nominal(&arch);
        let trace = simulate_execution(&app, &arch, &serial, &s).unwrap();
        let mut whole_cfg = SimConfig::seeded(2);
        whole_cfg.exposure = ExposurePolicy::WholeRun;
        let mut busy_cfg = SimConfig::seeded(2);
        busy_cfg.exposure = ExposurePolicy::BusyOnly;
        let whole = inject(&app, &arch, &serial, &s, &trace, &whole_cfg).unwrap();
        let busy = inject(&app, &arch, &serial, &s, &trace, &busy_cfg).unwrap();
        // Serial execution keeps core 1 busy 100% of the time, so the two
        // policies coincide here.
        assert!((whole.gamma_expected - busy.gamma_expected).abs() / whole.gamma_expected < 1e-9);
    }
}
