//! Discrete-event MPSoC simulation with SEU fault injection.
//!
//! This crate is the workspace's substitute for the paper's SystemC
//! cycle-accurate simulation and the minimum-intrusive fault-injection flow
//! of the authors' IOLTS'08 technique (paper §II-B, ref. \[11\]):
//!
//! * [`kernel`] — a small discrete-event simulation kernel (time-ordered
//!   event queue with deterministic tie-breaking).
//! * [`engine`] — event-driven execution of a mapped, voltage-scaled
//!   application on the MPSoC: per-core clock domains, dedicated inter-core
//!   links charged on the consumer core, batch and pipelined (per-frame)
//!   execution. Produces a measured [`engine::ExecutionTrace`]; the list
//!   scheduler of `sea-sched` *estimates* the same quantities.
//! * [`fault`] — Poisson SEU injection over each core's full register space
//!   (register file + caches + private memory). An injected upset landing
//!   inside the core's *allocated* working set is **experienced**; hits on
//!   unused bits are masked. `E[experienced] = λ_i · R_i · T_i` matches
//!   eq. (3) exactly.
//! * [`rng`] — numerically robust Poisson sampling for the huge means that
//!   arise from multi-second runs over ~537 kbit register spaces.
//!
//! # Example
//!
//! ```
//! use sea_arch::{Architecture, LevelSet, ScalingVector};
//! use sea_sched::mapping::Mapping;
//! use sea_sim::{simulate_design, SimConfig};
//! use sea_taskgraph::mpeg2;
//!
//! # fn main() -> Result<(), sea_sim::SimError> {
//! let app = mpeg2::application();
//! let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
//! let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4)?;
//! let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch)?;
//! let report = simulate_design(&app, &arch, &mapping, &s, &SimConfig::seeded(7))?;
//! // The Monte-Carlo count clusters around the analytic expectation.
//! let rel = (report.faults.total_experienced as f64 - report.analytic.gamma).abs()
//!     / report.analytic.gamma;
//! assert!(rel < 0.05, "relative deviation {rel}");
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod export;
pub mod fault;
pub mod kernel;
pub mod rng;

pub use engine::{simulate_execution, ExecutionTrace, TaskEvent};
pub use fault::{FaultReport, InjectionMode, SeuEvent};

use std::error::Error;
use std::fmt;

use sea_arch::{Architecture, ScalingVector};
use sea_sched::metrics::{EvalContext, ExposurePolicy, MappingEvaluation};
use sea_sched::{Mapping, SchedError};
use sea_taskgraph::Application;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Underlying scheduling/shape error.
    Sched(SchedError),
    /// A configuration parameter was invalid; the message names it.
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// Literal per-cycle injection was requested for a run too long to
    /// iterate cycle-by-cycle.
    RunTooLongForPerCycle {
        /// Total cycles the run would need.
        cycles: u64,
        /// The configured cap.
        cap: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Sched(e) => write!(f, "scheduling error: {e}"),
            SimError::InvalidConfig { message } => write!(f, "invalid config: {message}"),
            SimError::RunTooLongForPerCycle { cycles, cap } => write!(
                f,
                "per-cycle injection infeasible: {cycles} cycles exceeds cap {cap}"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for SimError {
    fn from(e: SchedError) -> Self {
        SimError::Sched(e)
    }
}

impl From<sea_arch::ArchError> for SimError {
    fn from(e: sea_arch::ArchError) -> Self {
        SimError::Sched(SchedError::Arch(e))
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed for fault injection (simulation itself is deterministic).
    pub seed: u64,
    /// SER model; defaults to the paper calibration at 10⁻⁹ SEU/bit/cycle.
    pub ser: sea_arch::SerModel,
    /// Register exposure policy (see `sea_sched::metrics`).
    pub exposure: ExposurePolicy,
    /// Injection acceleration mode.
    pub mode: InjectionMode,
    /// At most this many individual SEU events are materialized with
    /// time/location detail; the rest are only counted.
    pub max_detailed_events: usize,
}

impl SimConfig {
    /// Default configuration with the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ser: sea_arch::SerModel::default(),
            exposure: ExposurePolicy::default(),
            mode: InjectionMode::Segmented,
            max_detailed_events: 1_000,
        }
    }
}

/// Complete result of simulating one design point.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Measured execution trace.
    pub trace: ExecutionTrace,
    /// Monte-Carlo fault-injection outcome.
    pub faults: FaultReport,
    /// Analytic evaluation of the same design point (eqs. 3/5/6/7/8) for
    /// comparison — `faults.total_experienced` clusters around
    /// `analytic.gamma`.
    pub analytic: MappingEvaluation,
}

/// Simulates one design point end-to-end: event-driven execution followed by
/// fault injection, plus the analytic evaluation for cross-checking.
///
/// # Errors
///
/// Returns [`SimError::Sched`] for shape mismatches and
/// [`SimError::RunTooLongForPerCycle`] when literal injection is infeasible.
pub fn simulate_design(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    let trace = simulate_execution(app, arch, mapping, scaling)?;
    let faults = fault::inject(app, arch, mapping, scaling, &trace, config)?;
    let analytic = EvalContext::new(app, arch)
        .with_ser(config.ser)
        .with_exposure(config.exposure)
        .evaluate(mapping, scaling)?;
    Ok(SimReport {
        trace,
        faults,
        analytic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_is_well_behaved() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<SimError>();
        let e: SimError = SchedError::IncompleteMapping.into();
        assert!(e.to_string().contains("scheduling error"));
        assert!(Error::source(&e).is_some());
    }
}
