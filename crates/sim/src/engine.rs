//! Event-driven execution of a mapped application on the MPSoC.
//!
//! Unlike the list scheduler of `sea-sched` (which *estimates* timing for
//! the optimizer's inner loop), this engine *measures* it: cores are
//! event-driven agents that greedily dispatch their highest-priority ready
//! task instance whenever they fall idle. In pipelined mode every iteration
//! (video frame) is simulated individually, so pipeline fill, drain and
//! cross-iteration overlap emerge from the event dynamics rather than from
//! the `fill + (I−1)·period` closed form.

use serde::{Deserialize, Serialize};

use sea_arch::{Architecture, CoreId, ScalingVector};
use sea_sched::Mapping;
use sea_taskgraph::{Application, TaskId};

use crate::kernel::EventQueue;
use crate::SimError;

/// One executed task instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskEvent {
    /// The task.
    pub task: TaskId,
    /// Iteration (frame) index, 0-based; always 0 in batch mode.
    pub iteration: u32,
    /// Core that executed the instance.
    pub core: CoreId,
    /// Start time in seconds.
    pub start_s: f64,
    /// Finish time in seconds.
    pub finish_s: f64,
}

/// Measured outcome of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Measured multiprocessor execution time in seconds.
    pub tm_seconds: f64,
    /// Busy seconds per core (computation + inbound cross-core comm).
    pub busy_s: Vec<f64>,
    /// Every executed task instance, in completion order.
    pub events: Vec<TaskEvent>,
    /// Iterations executed.
    pub iterations: u32,
}

impl ExecutionTrace {
    /// Utilization `α_i` of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn alpha(&self, core: CoreId) -> f64 {
        if self.tm_seconds > 0.0 {
            (self.busy_s[core.index()] / self.tm_seconds).min(1.0)
        } else {
            0.0
        }
    }
}

/// Identifies a task instance during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Instance {
    task: usize,
    iteration: u32,
}

/// Simulates the execution of `app` under `mapping` and `scaling`.
///
/// # Errors
///
/// Returns [`SimError::Sched`] when the mapping, application and
/// architecture shapes disagree.
pub fn simulate_execution(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
) -> Result<ExecutionTrace, SimError> {
    // Reuse the scheduler's shape validation by asking it for a schedule of
    // shapes only; cheaper to validate directly:
    if mapping.n_tasks() != app.graph().len() {
        return Err(SimError::Sched(sea_sched::SchedError::ShapeMismatch {
            what: format!(
                "mapping covers {} tasks, application has {}",
                mapping.n_tasks(),
                app.graph().len()
            ),
        }));
    }
    if mapping.n_cores() != arch.n_cores() || scaling.len() != arch.n_cores() {
        return Err(SimError::Sched(sea_sched::SchedError::ShapeMismatch {
            what: "core counts of mapping/scaling/architecture disagree".into(),
        }));
    }

    let g = app.graph();
    let n = g.len();
    let iterations = app.mode().iterations();
    let scale = 1.0 / f64::from(iterations);
    let bl = g.bottom_levels();
    // Effective throughput; matches the list scheduler's timing model.
    let freq: Vec<f64> = arch
        .cores()
        .map(|c| arch.effective_frequency(c, scaling))
        .collect();

    // Per-instance predecessor counts, iteration-major layout.
    let idx = |inst: Instance| inst.iteration as usize * n + inst.task;
    let total = n * iterations as usize;
    let mut pending: Vec<u32> = Vec::with_capacity(total);
    for _ in 0..iterations {
        for t in g.task_ids() {
            pending.push(u32::try_from(g.predecessors(t).len()).expect("small graphs"));
        }
    }

    // Per-core ready pools.
    let mut ready: Vec<Vec<Instance>> = vec![Vec::new(); arch.n_cores()];
    for t in g.task_ids() {
        if g.predecessors(t).is_empty() {
            ready[mapping.core_of(t).index()].push(Instance {
                task: t.index(),
                iteration: 0,
            });
        }
    }

    #[derive(Debug)]
    enum Ev {
        Finished { core: usize, inst: Instance },
    }

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut core_idle = vec![true; arch.n_cores()];
    let mut busy = vec![0.0f64; arch.n_cores()];
    let mut finish_time = vec![f64::NAN; total];
    let mut events: Vec<TaskEvent> = Vec::with_capacity(total);
    let mut completed = 0usize;
    let mut now = 0.0f64;

    // Dispatch helper: start the best ready instance on an idle core.
    // Priority: iteration asc (older frames drain first — anything else
    // lets an upstream core run hundreds of frames ahead and starve the
    // downstream cores), then bottom level desc, then task id asc.
    let pick =
        |pool: &mut Vec<Instance>, bl: &[sea_taskgraph::units::Cycles]| -> Option<Instance> {
            if pool.is_empty() {
                return None;
            }
            let mut best = 0usize;
            for i in 1..pool.len() {
                let a = pool[i];
                let b = pool[best];
                let key_a = (a.iteration, std::cmp::Reverse(bl[a.task]), a.task);
                let key_b = (b.iteration, std::cmp::Reverse(bl[b.task]), b.task);
                if key_a < key_b {
                    best = i;
                }
            }
            Some(pool.swap_remove(best))
        };

    loop {
        // Dispatch on every idle core with ready work.
        for c in 0..arch.n_cores() {
            if !core_idle[c] {
                continue;
            }
            if let Some(inst) = pick(&mut ready[c], &bl) {
                let t = TaskId::new(inst.task);
                // Inbound cross-core communication occupies the consumer
                // core (eq. 7 counts d_jk in T_i).
                let mut comm_cycles = 0.0f64;
                for &(p, comm) in g.predecessors(t) {
                    if mapping.core_of(p).index() != c {
                        comm_cycles += comm.as_f64() * scale;
                    }
                }
                let dur = (g.task(t).computation().as_f64() * scale + comm_cycles) / freq[c];
                let end = now + dur;
                core_idle[c] = false;
                busy[c] += dur;
                events.push(TaskEvent {
                    task: t,
                    iteration: inst.iteration,
                    core: CoreId::new(c),
                    start_s: now,
                    finish_s: end,
                });
                queue.push(end, Ev::Finished { core: c, inst });
            }
        }

        match queue.pop() {
            None => break,
            Some((time, Ev::Finished { core, inst })) => {
                now = time;
                core_idle[core] = true;
                finish_time[idx(inst)] = time;
                completed += 1;

                // Same-iteration successors become ready.
                let t = TaskId::new(inst.task);
                for &(s, _) in g.successors(t) {
                    let succ = Instance {
                        task: s.index(),
                        iteration: inst.iteration,
                    };
                    pending[idx(succ)] -= 1;
                    if pending[idx(succ)] == 0 {
                        ready[mapping.core_of(s).index()].push(succ);
                    }
                }
                // Next iteration of a root task becomes ready once the
                // current instance completes (stream front advances).
                if g.predecessors(t).is_empty() && inst.iteration + 1 < iterations {
                    let next = Instance {
                        task: inst.task,
                        iteration: inst.iteration + 1,
                    };
                    ready[mapping.core_of(t).index()].push(next);
                }
                // Drain any other finish events at the same instant before
                // re-dispatching (handled naturally by the loop).
            }
        }
    }

    debug_assert_eq!(completed, total, "every instance must complete");
    let tm = events.iter().map(|e| e.finish_s).fold(0.0f64, f64::max);
    Ok(ExecutionTrace {
        tm_seconds: tm,
        busy_s: busy,
        events,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::LevelSet;
    use sea_sched::schedule::list_schedule;
    use sea_taskgraph::graph::TaskGraphBuilder;
    use sea_taskgraph::registers::RegisterModelBuilder;
    use sea_taskgraph::units::{Bits, Cycles};
    use sea_taskgraph::ExecutionMode;

    fn arch(n: usize) -> Architecture {
        Architecture::homogeneous(n, LevelSet::arm7_three_level())
    }

    fn fork_join(mode: ExecutionMode) -> Application {
        let mut b = TaskGraphBuilder::new("forkjoin");
        let a = b.add_task("a", Cycles::new(200_000_000));
        let c = b.add_task("b", Cycles::new(200_000_000));
        let j = b.add_task("join", Cycles::new(200_000_000));
        b.add_edge(a, j, Cycles::new(20_000_000)).unwrap();
        b.add_edge(c, j, Cycles::new(20_000_000)).unwrap();
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(3);
        for i in 0..3 {
            let blk = rm.add_block(format!("p{i}"), Bits::new(1000));
            rm.assign(TaskId::new(i), blk).unwrap();
        }
        Application::new("forkjoin", g, rm.build(), mode, 100.0).unwrap()
    }

    #[test]
    fn batch_matches_list_scheduler_exactly_on_simple_graph() {
        let app = fork_join(ExecutionMode::Batch);
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        let sched = list_schedule(&app, &arch, &m, &s).unwrap();
        assert!((trace.tm_seconds - sched.makespan_s()).abs() < 1e-9);
        for c in 0..2 {
            assert!((trace.busy_s[c] - sched.busy_per_core()[c]).abs() < 1e-9);
        }
    }

    #[test]
    fn precedence_holds_for_every_event() {
        let app = fork_join(ExecutionMode::Batch);
        let arch = arch(3);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0], &[1], &[2]], 3).unwrap();
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        let find = |t: usize| {
            trace
                .events
                .iter()
                .find(|e| e.task == TaskId::new(t))
                .copied()
                .unwrap()
        };
        assert!(find(2).start_s >= find(0).finish_s - 1e-12);
        assert!(find(2).start_s >= find(1).finish_s - 1e-12);
    }

    #[test]
    fn pipelined_executes_every_instance() {
        let app = fork_join(ExecutionMode::Pipelined { iterations: 25 });
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        assert_eq!(trace.events.len(), 3 * 25);
        assert_eq!(trace.iterations, 25);
    }

    #[test]
    fn pipelined_tm_close_to_scheduler_estimate() {
        let app = fork_join(ExecutionMode::Pipelined { iterations: 50 });
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        let sched = list_schedule(&app, &arch, &m, &s).unwrap();
        let rel = (trace.tm_seconds - sched.makespan_s()).abs() / sched.makespan_s();
        assert!(
            rel < 0.05,
            "simulated {} vs estimated {}",
            trace.tm_seconds,
            sched.makespan_s()
        );
    }

    #[test]
    fn pipelined_overlaps_iterations() {
        // With the producer and consumer on different cores, the stream must
        // overlap: total time well below serial (no-overlap) execution.
        let mut b = TaskGraphBuilder::new("2stage");
        let p = b.add_task("p", Cycles::new(100_000_000));
        let q = b.add_task("q", Cycles::new(100_000_000));
        b.add_edge(p, q, Cycles::ZERO).unwrap();
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(2);
        for i in 0..2 {
            let blk = rm.add_block(format!("p{i}"), Bits::new(8));
            rm.assign(TaskId::new(i), blk).unwrap();
        }
        let app = Application::new(
            "2stage",
            g,
            rm.build(),
            ExecutionMode::Pipelined { iterations: 100 },
            100.0,
        )
        .unwrap();
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0], &[1]], 2).unwrap();
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        // Each stage instance: 1e6 cycles = 5 ms at 200 MHz. Serial: 1 s.
        // Pipelined: ~0.5 s + one fill stage.
        assert!(trace.tm_seconds < 0.6, "tm {}", trace.tm_seconds);
        assert!(trace.tm_seconds > 0.5, "tm {}", trace.tm_seconds);
    }

    #[test]
    fn alpha_reflects_idle_cores() {
        let app = fork_join(ExecutionMode::Batch);
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        assert!(trace.alpha(CoreId::new(0)) > trace.alpha(CoreId::new(1)));
        assert!(trace.alpha(CoreId::new(1)) > 0.0);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let app = fork_join(ExecutionMode::Batch);
        let a2 = arch(2);
        let s = ScalingVector::all_nominal(&a2);
        let m = Mapping::from_groups(&[&[0, 1, 2]], 3).unwrap();
        assert!(simulate_execution(&app, &a2, &m, &s).is_err());
    }

    #[test]
    fn mpeg2_pipelined_meets_deadline_on_proposed_design() {
        let app = sea_taskgraph::mpeg2::application();
        let arch = arch(4);
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let m = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
        let trace = simulate_execution(&app, &arch, &m, &s).unwrap();
        assert_eq!(trace.events.len(), 11 * 437);
        assert!(
            trace.tm_seconds <= app.deadline_s(),
            "proposed Table II design must be feasible: {} s vs {} s",
            trace.tm_seconds,
            app.deadline_s()
        );
    }
}
