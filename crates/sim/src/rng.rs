//! Random samplers for fault injection.
//!
//! Fault counts follow a Poisson process over register bits × cycles
//! (paper §II-B): over a multi-second run at hundreds of MHz across a
//! ~537 kbit register space the means reach 10⁶–10⁷, so the sampler must
//! switch from exact (inverse-transform) sampling to the Gaussian
//! approximation for large means.

use rand::Rng;

/// Mean above which Poisson sampling switches to the Gaussian
/// approximation. At λ = 1000 the relative skew (λ^-½ ≈ 3%) is already well
/// below the Monte-Carlo noise the tests tolerate.
pub const POISSON_NORMAL_THRESHOLD: f64 = 1_000.0;

/// Draws a Poisson-distributed count with the given mean.
///
/// Uses exact inverse-transform sampling (multiplicative Knuth form) for
/// small means and the rounded, clamped Gaussian approximation
/// `N(mean, mean)` above [`POISSON_NORMAL_THRESHOLD`].
///
/// # Panics
///
/// Panics if `mean` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "Poisson mean must be finite and non-negative, got {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean < POISSON_NORMAL_THRESHOLD {
        poisson_knuth(rng, mean)
    } else {
        let z = standard_normal(rng);
        let x = mean + z * mean.sqrt();
        if x < 0.0 {
            0
        } else {
            x.round() as u64
        }
    }
}

/// Exact Poisson sampling via Knuth's multiplicative method, with the
/// exponent folded in chunks to avoid underflow for means up to the
/// Gaussian threshold.
fn poisson_knuth<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    // Work with log-probabilities: count arrivals until the summed
    // exponential inter-arrival times exceed the mean.
    let mut sum = 0.0f64;
    let mut count = 0u64;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        sum -= u.ln();
        if sum > mean {
            return count;
        }
        count += 1;
    }
}

/// Draws a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        (mean, var)
    }

    #[test]
    fn zero_mean_yields_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn small_mean_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<u64> = (0..20_000).map(|_| poisson(&mut rng, 3.5)).collect();
        let (mean, var) = stats(&samples);
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
        assert!((var - 3.5).abs() < 0.25, "var {var}");
    }

    #[test]
    fn moderate_mean_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..5_000).map(|_| poisson(&mut rng, 400.0)).collect();
        let (mean, var) = stats(&samples);
        assert!((mean - 400.0).abs() < 2.0, "mean {mean}");
        assert!((var / 400.0 - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn large_mean_uses_gaussian_branch() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = 2.5e6;
        let samples: Vec<u64> = (0..2_000).map(|_| poisson(&mut rng, m)).collect();
        let (mean, var) = stats(&samples);
        assert!((mean / m - 1.0).abs() < 1e-3, "mean {mean}");
        assert!((var / m - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    #[should_panic(expected = "Poisson mean")]
    fn rejects_negative_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = poisson(&mut rng, -1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| poisson(&mut rng, 10.0)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| poisson(&mut rng, 10.0)).collect()
        };
        assert_eq!(a, b);
    }
}
