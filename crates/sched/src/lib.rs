//! Task mapping, list scheduling and the analytic `TM`/`R`/`Γ` metrics of
//! the DATE 2010 paper (§IV-B, eqs. 3–8).
//!
//! * [`mapping`] — assignment of tasks to cores, with the neighbourhood
//!   moves used by the search-based optimizations.
//! * [`schedule`] — a deterministic list scheduler supporting the two
//!   execution models: one-shot *batch* DAG execution (random graphs) and
//!   *pipelined* streaming execution (the MPEG-2 decoder, one graph
//!   iteration per frame).
//! * [`metrics`] — the evaluation context that turns (application,
//!   architecture, mapping, scaling vector) into multiprocessor execution
//!   time `TM` (eq. 6), per-core times `T_i` (eq. 7), register usage `R_i`
//!   (eq. 8), dynamic power `P` (eq. 5) and expected SEUs `Γ` (eq. 3).
//! * [`evaluator`] — the scratch-buffer [`Evaluator`], the allocation-free
//!   form of the same objective used by the optimizers' hot loops.
//! * [`incremental`] — the delta-evaluation [`IncrementalEvaluator`]: a
//!   cached-schedule wrapper that replays only the suffix a single
//!   neighbourhood move can invalidate, bitwise identical to the full
//!   path (see the README's "Engine internals" section).
//! * [`bounds`] — mapping-independent lower bounds on `TM`
//!   ([`tm_lower_bound`]), the foundation of `sea-opt`'s bound-and-prune
//!   scaling enumeration.
//!
//! # Example
//!
//! ```
//! use sea_arch::{Architecture, LevelSet, ScalingVector};
//! use sea_sched::mapping::Mapping;
//! use sea_sched::metrics::EvalContext;
//! use sea_taskgraph::mpeg2;
//!
//! # fn main() -> Result<(), sea_sched::SchedError> {
//! let app = mpeg2::application();
//! let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
//! // The proposed design of Table II, Exp:4.
//! let mapping = Mapping::from_groups(&[
//!     &[0, 1, 2, 3, 4, 5],
//!     &[6, 7],
//!     &[8],
//!     &[9, 10],
//! ], 4)?;
//! let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch)?;
//! let eval = EvalContext::new(&app, &arch).evaluate(&mapping, &s)?;
//! assert!(eval.tm_seconds > 0.0);
//! assert!(eval.gamma > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod bounds;
pub mod evaluator;
pub mod incremental;
pub mod mapping;
pub mod metrics;
pub mod recovery;
pub mod schedule;

pub use bounds::{prune_default, tm_lower_bound};
pub use evaluator::Evaluator;
pub use incremental::{
    fallback_cutoff, incremental_default, summaries_bitwise_eq, IncrementalEvaluator,
    IncrementalStats,
};
pub use mapping::{Mapping, Move};
pub use metrics::{CoreEval, EvalContext, EvalSummary, ExposurePolicy, MappingEvaluation};
pub use schedule::{Schedule, ScheduledTask};

use std::error::Error;
use std::fmt;

use sea_arch::ArchError;
use sea_taskgraph::GraphError;

/// Errors produced by mapping construction, scheduling or evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// A task id was outside the graph, or a core id outside the
    /// architecture.
    OutOfRange {
        /// Description of the offending id.
        what: String,
    },
    /// A mapping did not cover every task exactly once.
    IncompleteMapping,
    /// The mapping and evaluation context disagree on task or core counts.
    ShapeMismatch {
        /// Description of the mismatch.
        what: String,
    },
    /// An underlying architecture error.
    Arch(ArchError),
    /// An underlying task-graph error.
    Graph(GraphError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::OutOfRange { what } => write!(f, "id out of range: {what}"),
            SchedError::IncompleteMapping => {
                write!(f, "mapping does not cover every task exactly once")
            }
            SchedError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            SchedError::Arch(e) => write!(f, "architecture error: {e}"),
            SchedError::Graph(e) => write!(f, "task graph error: {e}"),
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Arch(e) => Some(e),
            SchedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for SchedError {
    fn from(e: ArchError) -> Self {
        SchedError::Arch(e)
    }
}

impl From<GraphError> for SchedError {
    fn from(e: GraphError) -> Self {
        SchedError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: SchedError = ArchError::WrongCoreCount {
            got: 1,
            expected: 2,
        }
        .into();
        assert!(e.to_string().contains("architecture error"));
        let e: SchedError = GraphError::Cyclic.into();
        assert!(e.to_string().contains("task graph error"));
        assert!(Error::source(&e).is_some());
    }
}
