//! Task-to-core mappings and the neighbourhood moves of the search-based
//! optimizations (paper Fig. 7, "task movement in M for neighbouring
//! solution").

use std::fmt;

use serde::{Deserialize, Serialize};

use sea_arch::CoreId;
use sea_taskgraph::TaskId;

use crate::SchedError;

/// A complete assignment of every task to one core.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// `assign[t]` = core of task `t`.
    assign: Vec<CoreId>,
    n_cores: usize,
}

impl Mapping {
    /// Creates a mapping from a per-task core vector.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::OutOfRange`] if any core index is `≥ n_cores`
    /// and [`SchedError::IncompleteMapping`] for an empty assignment.
    pub fn try_new(assign: Vec<CoreId>, n_cores: usize) -> Result<Self, SchedError> {
        if assign.is_empty() {
            return Err(SchedError::IncompleteMapping);
        }
        for (t, c) in assign.iter().enumerate() {
            if c.index() >= n_cores {
                return Err(SchedError::OutOfRange {
                    what: format!("task t{} mapped to {} of {} cores", t + 1, c, n_cores),
                });
            }
        }
        Ok(Mapping { assign, n_cores })
    }

    /// Creates a mapping from per-core task groups (0-based task indices),
    /// the notation of Table II. Cores may be empty.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::IncompleteMapping`] if the groups do not cover
    /// the union of the mentioned tasks exactly once, and
    /// [`SchedError::OutOfRange`] if there are more groups than cores.
    pub fn from_groups(groups: &[&[usize]], n_cores: usize) -> Result<Self, SchedError> {
        if groups.len() > n_cores {
            return Err(SchedError::OutOfRange {
                what: format!("{} groups for {} cores", groups.len(), n_cores),
            });
        }
        let n_tasks: usize = groups.iter().map(|g| g.len()).sum();
        let mut assign = vec![None; n_tasks];
        for (c, group) in groups.iter().enumerate() {
            for &t in group.iter() {
                if t >= n_tasks || assign[t].is_some() {
                    return Err(SchedError::IncompleteMapping);
                }
                assign[t] = Some(CoreId::new(c));
            }
        }
        let assign: Vec<CoreId> = assign
            .into_iter()
            .map(|c| c.expect("all covered"))
            .collect();
        Mapping::try_new(assign, n_cores)
    }

    /// Maps every task to core 0 (useful as a degenerate baseline).
    #[must_use]
    pub fn all_on_one_core(n_tasks: usize, n_cores: usize) -> Self {
        Mapping {
            assign: vec![CoreId::new(0); n_tasks],
            n_cores,
        }
    }

    /// Number of tasks covered.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.assign.len()
    }

    /// Number of cores in the target architecture.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Core of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn core_of(&self, task: TaskId) -> CoreId {
        self.assign[task.index()]
    }

    /// Tasks mapped on `core`, in task-id order, without allocating
    /// (the borrowing variant of [`Mapping::tasks_on`] for hot paths).
    pub fn tasks_on_iter(&self, core: CoreId) -> impl Iterator<Item = TaskId> + '_ {
        self.assign
            .iter()
            .enumerate()
            .filter(move |&(_, c)| *c == core)
            .map(|(t, _)| TaskId::new(t))
    }

    /// Tasks mapped on `core`, in task-id order.
    #[must_use]
    pub fn tasks_on(&self, core: CoreId) -> Vec<TaskId> {
        self.tasks_on_iter(core).collect()
    }

    /// Number of tasks mapped on `core` (allocation-free).
    #[must_use]
    pub fn count_on(&self, core: CoreId) -> usize {
        self.tasks_on_iter(core).count()
    }

    /// Fills `counts` with the per-core task counts (reusing its storage),
    /// the occupancy cache the searches maintain incrementally via
    /// [`Mapping::apply`]'s returned inverse.
    pub fn count_per_core_into(&self, counts: &mut Vec<usize>) {
        counts.clear();
        counts.resize(self.n_cores, 0);
        for c in &self.assign {
            counts[c.index()] += 1;
        }
    }

    /// All per-core groups, in core order (empty cores yield empty groups).
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<TaskId>> {
        let mut out = vec![Vec::new(); self.n_cores];
        for (t, c) in self.assign.iter().enumerate() {
            out[c.index()].push(TaskId::new(t));
        }
        out
    }

    /// True if every core holds at least one task (the paper's
    /// `InitialSEAMapping` guarantees this when `N ≥ C`).
    #[must_use]
    pub fn uses_all_cores(&self) -> bool {
        let mut used = vec![false; self.n_cores];
        for c in &self.assign {
            used[c.index()] = true;
        }
        used.into_iter().all(|u| u)
    }

    /// Applies a move in place. Returns the inverse move for backtracking.
    ///
    /// # Panics
    ///
    /// Panics if the move references tasks or cores out of range.
    pub fn apply(&mut self, mv: Move) -> Move {
        match mv {
            Move::Relocate { task, to } => {
                assert!(to.index() < self.n_cores, "{to} out of range");
                let from = self.assign[task.index()];
                self.assign[task.index()] = to;
                Move::Relocate { task, to: from }
            }
            Move::Swap { a, b } => {
                self.assign.swap(a.index(), b.index());
                Move::Swap { a, b }
            }
        }
    }

    /// Returns a copy with the move applied.
    #[must_use]
    pub fn with_move(&self, mv: Move) -> Self {
        let mut next = self.clone();
        next.apply(mv);
        next
    }

    /// Enumerates the full task-movement neighbourhood lazily, in the
    /// deterministic order of [`Mapping::neighbourhood`]: every relocation
    /// of a task to a different core, then every swap of two tasks on
    /// different cores. This is the "maximum two task movements"
    /// neighbourhood of the paper's `OptimizedMapping` (a swap moves two
    /// tasks, a relocation one). The iterator borrows the mapping and
    /// performs no heap allocation.
    pub fn neighbourhood_iter(&self) -> impl Iterator<Item = Move> + '_ {
        let n = self.assign.len();
        let n_cores = self.n_cores;
        let relocations = (0..n).flat_map(move |t| {
            (0..n_cores)
                .filter(move |&c| self.assign[t].index() != c)
                .map(move |c| Move::Relocate {
                    task: TaskId::new(t),
                    to: CoreId::new(c),
                })
        });
        let swaps = (0..n).flat_map(move |a| {
            ((a + 1)..n)
                .filter(move |&b| self.assign[a] != self.assign[b])
                .map(move |b| Move::Swap {
                    a: TaskId::new(a),
                    b: TaskId::new(b),
                })
        });
        relocations.chain(swaps)
    }

    /// Size of [`Mapping::neighbourhood`] without materializing it:
    /// `N·(C−1)` relocations plus the cross-core task pairs.
    #[must_use]
    pub fn neighbourhood_len(&self) -> usize {
        let n = self.assign.len();
        let mut swaps = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                if self.assign[a] != self.assign[b] {
                    swaps += 1;
                }
            }
        }
        n * (self.n_cores - 1) + swaps
    }

    /// The `index`-th move of [`Mapping::neighbourhood`] without
    /// materializing the list (`None` past the end). Relocations are
    /// addressed in O(1); swaps by a scan over task pairs. Together with
    /// [`Mapping::neighbourhood_len`] this lets a search sample the
    /// neighbourhood uniformly with zero heap allocation, drawing the same
    /// move the materialized `Vec<Move>` would yield at the same index.
    #[must_use]
    pub fn nth_neighbourhood_move(&self, index: usize) -> Option<Move> {
        let n = self.assign.len();
        let per_task = self.n_cores - 1;
        let reloc_total = n * per_task;
        if index < reloc_total {
            let t = index / per_task;
            let k = index % per_task;
            let own = self.assign[t].index();
            let c = if k < own { k } else { k + 1 };
            return Some(Move::Relocate {
                task: TaskId::new(t),
                to: CoreId::new(c),
            });
        }
        let mut rest = index - reloc_total;
        for a in 0..n {
            for b in (a + 1)..n {
                if self.assign[a] != self.assign[b] {
                    if rest == 0 {
                        return Some(Move::Swap {
                            a: TaskId::new(a),
                            b: TaskId::new(b),
                        });
                    }
                    rest -= 1;
                }
            }
        }
        None
    }

    /// Materialized neighbourhood (see [`Mapping::neighbourhood_iter`]).
    #[must_use]
    pub fn neighbourhood(&self) -> Vec<Move> {
        self.neighbourhood_iter().collect()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, group) in self.groups().iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{}:", CoreId::new(i))?;
            for t in group {
                write!(f, " {t}")?;
            }
        }
        Ok(())
    }
}

/// One neighbourhood move over a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Move {
    /// Move `task` to core `to`.
    Relocate {
        /// The task to move.
        task: TaskId,
        /// Destination core.
        to: CoreId,
    },
    /// Exchange the cores of tasks `a` and `b`.
    Swap {
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
    },
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Move::Relocate { task, to } => write!(f, "move {task} -> {to}"),
            Move::Swap { a, b } => write!(f, "swap {a} <-> {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId::new(i)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn from_groups_matches_table2_notation() {
        let m = Mapping::from_groups(&[&[0, 1, 2], &[3, 4], &[5, 6, 7, 8, 9], &[10]], 4).unwrap();
        assert_eq!(m.core_of(t(0)), c(0));
        assert_eq!(m.core_of(t(4)), c(1));
        assert_eq!(m.core_of(t(9)), c(2));
        assert_eq!(m.core_of(t(10)), c(3));
        assert!(m.uses_all_cores());
        assert_eq!(m.n_tasks(), 11);
    }

    #[test]
    fn from_groups_rejects_double_coverage() {
        assert!(Mapping::from_groups(&[&[0, 1], &[1]], 2).is_err());
        assert!(
            Mapping::from_groups(&[&[0, 2]], 2).is_err(),
            "gap at task 1"
        );
        assert!(Mapping::from_groups(&[&[0], &[1], &[2]], 2).is_err());
    }

    #[test]
    fn try_new_validates_cores() {
        assert!(Mapping::try_new(vec![c(0), c(5)], 2).is_err());
        assert!(Mapping::try_new(vec![], 2).is_err());
    }

    #[test]
    fn relocate_and_inverse() {
        let mut m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let inv = m.apply(Move::Relocate {
            task: t(0),
            to: c(1),
        });
        assert_eq!(m.core_of(t(0)), c(1));
        m.apply(inv);
        assert_eq!(m.core_of(t(0)), c(0));
    }

    #[test]
    fn swap_exchanges_cores() {
        let mut m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        m.apply(Move::Swap { a: t(0), b: t(2) });
        assert_eq!(m.core_of(t(0)), c(1));
        assert_eq!(m.core_of(t(2)), c(0));
    }

    #[test]
    fn neighbourhood_counts() {
        // 3 tasks on 2 cores: 3 relocations (each task has exactly one other
        // core) + swaps between cross-core pairs.
        let m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let n = m.neighbourhood();
        let relocations = n
            .iter()
            .filter(|mv| matches!(mv, Move::Relocate { .. }))
            .count();
        let swaps = n
            .iter()
            .filter(|mv| matches!(mv, Move::Swap { .. }))
            .count();
        assert_eq!(relocations, 3);
        assert_eq!(swaps, 2); // (0,2) and (1,2)
    }

    #[test]
    fn neighbourhood_moves_are_valid() {
        let m = Mapping::from_groups(&[&[0, 1, 2], &[3], &[4]], 3).unwrap();
        for mv in m.neighbourhood() {
            let next = m.with_move(mv);
            assert_ne!(next, m, "a move must change the mapping: {mv}");
        }
    }

    #[test]
    fn lazy_neighbourhood_matches_materialized() {
        for groups in [
            vec![vec![0usize, 1], vec![2]],
            vec![vec![0, 1, 2], vec![3], vec![4, 5]],
            vec![vec![0], vec![1], vec![2], vec![3]],
        ] {
            let refs: Vec<&[usize]> = groups.iter().map(Vec::as_slice).collect();
            let m = Mapping::from_groups(&refs, groups.len()).unwrap();
            let eager = m.neighbourhood();
            let lazy: Vec<Move> = m.neighbourhood_iter().collect();
            assert_eq!(eager, lazy);
            assert_eq!(eager.len(), m.neighbourhood_len());
            for (i, &mv) in eager.iter().enumerate() {
                assert_eq!(m.nth_neighbourhood_move(i), Some(mv), "index {i}");
            }
            assert_eq!(m.nth_neighbourhood_move(eager.len()), None);
        }
    }

    #[test]
    fn borrowing_accessors_match_owned() {
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 3).unwrap();
        for core in 0..3 {
            let c = CoreId::new(core);
            let owned = m.tasks_on(c);
            let lazy: Vec<TaskId> = m.tasks_on_iter(c).collect();
            assert_eq!(owned, lazy);
            assert_eq!(m.count_on(c), owned.len());
        }
        let mut counts = Vec::new();
        m.count_per_core_into(&mut counts);
        assert_eq!(counts, vec![2, 1, 0]);
    }

    #[test]
    fn groups_round_trip() {
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 3).unwrap();
        let g = m.groups();
        assert_eq!(g[0], vec![t(0), t(2)]);
        assert_eq!(g[1], vec![t(1)]);
        assert!(g[2].is_empty());
        assert!(!m.uses_all_cores());
    }

    #[test]
    fn display_is_readable() {
        let m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let s = m.to_string();
        assert!(s.contains("core1: t1 t2"), "got {s}");
        assert!(s.contains("core2: t3"), "got {s}");
    }

    #[test]
    fn all_on_one_core_is_degenerate() {
        let m = Mapping::all_on_one_core(4, 3);
        assert!(!m.uses_all_cores());
        assert_eq!(m.tasks_on(c(0)).len(), 4);
    }
}
