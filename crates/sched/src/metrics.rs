//! Analytic evaluation of a mapped, scaled design (eqs. 3, 5, 6, 7, 8).
//!
//! [`EvalContext::evaluate`] is the objective function used by every
//! optimizer in the workspace: it list-schedules a mapping and derives
//!
//! * `TM` — multiprocessor execution time in seconds (measured on the
//!   schedule; the paper's eq. 6 estimates the same quantity),
//! * `T_i` and `α_i` — per-core busy time (eq. 7) and utilization,
//! * `R_i` — per-core register usage as the union of the mapped tasks'
//!   register blocks (eq. 8), in bits,
//! * `P` — dynamic power (eq. 5),
//! * `Γ` — expected number of SEUs experienced (eq. 3):
//!   `Γ = Σ_i R_i · T_i^exp · λ_i(Vdd_i)`.
//!
//! # Exposure policy
//!
//! The paper's eq. (3) multiplies register usage by the core's execution
//! time in cycles. For the streaming decoder a core's working set stays
//! resident across frames, so the default [`ExposurePolicy::WholeRun`]
//! exposes `R_i` for the whole run (`T_i^exp = TM · f_i`): an SEU striking
//! an idle-but-live register still corrupts state. This reproduces the
//! concave Γ-vs-TM curve of Fig. 3(b). [`ExposurePolicy::BusyOnly`] counts
//! only busy cycles (the literal reading of eq. 7) and is kept as an
//! ablation (`crates/bench`, ablation benches).

use serde::{Deserialize, Serialize};

use sea_arch::power::{dynamic_power_w, watts_to_mw, CoreActivity};
use sea_arch::{Architecture, CoreId, ScalingVector, SerModel, VoltageLevel};
use sea_taskgraph::units::Bits;
use sea_taskgraph::Application;

use crate::mapping::Mapping;
use crate::schedule::{list_schedule, Schedule};
use crate::SchedError;

/// Which cycles expose a core's register working set to SEUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExposurePolicy {
    /// Registers are allocated for the entire multiprocessor run:
    /// `T_i^exp = TM · f_i` (default; see module docs).
    #[default]
    WholeRun,
    /// Registers are only exposed while the core is busy:
    /// `T_i^exp = T_i^busy · f_i`.
    BusyOnly,
}

/// Per-core slice of an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreEval {
    /// The core.
    pub core: CoreId,
    /// Scaling coefficient `s_i`.
    pub coefficient: u8,
    /// Clock frequency in Hz.
    pub f_hz: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Busy time in seconds (computation + inbound cross-core comm).
    pub busy_s: f64,
    /// Utilization `α_i = busy_s / TM`.
    pub alpha: f64,
    /// Register usage `R_i` (eq. 8), bits.
    pub r_bits: Bits,
    /// Exposure time in cycles of this core's clock.
    pub exposure_cycles: f64,
    /// Per-bit-per-cycle SEU rate `λ_i` at this core's voltage.
    pub lambda: f64,
    /// Expected SEUs on this core: `R_i · T_i^exp · λ_i`.
    pub gamma: f64,
}

/// Result of evaluating one `(mapping, scaling)` design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingEvaluation {
    /// Multiprocessor execution time in seconds.
    pub tm_seconds: f64,
    /// `TM` expressed in nominal-frequency clock cycles (Table II reports
    /// cycles; nominal = the level set's s=1 frequency).
    pub tm_nominal_cycles: f64,
    /// True if `TM ≤` the application's deadline.
    pub meets_deadline: bool,
    /// Dynamic power in milliwatts (eq. 5).
    pub power_mw: f64,
    /// Expected SEUs experienced `Γ` (eq. 3).
    pub gamma: f64,
    /// Total register usage `R = Σ_i R_i`, bits.
    pub r_total: Bits,
    /// Per-core breakdown.
    pub per_core: Vec<CoreEval>,
}

impl MappingEvaluation {
    /// Total register usage in the paper's reporting unit (kbit/cycle).
    #[must_use]
    pub fn r_total_kbits(&self) -> f64 {
        self.r_total.as_kbits()
    }

    /// The scalar slice of this evaluation (drops the per-core breakdown).
    #[must_use]
    pub fn summary(&self) -> EvalSummary {
        EvalSummary {
            tm_seconds: self.tm_seconds,
            tm_nominal_cycles: self.tm_nominal_cycles,
            meets_deadline: self.meets_deadline,
            power_mw: self.power_mw,
            gamma: self.gamma,
            r_total: self.r_total,
        }
    }
}

/// The scalar slice of a [`MappingEvaluation`] — everything the optimizers'
/// acceptance and selection rules need, as a `Copy` value so hot search
/// loops can keep, compare and clone scores without heap allocation. The
/// fields carry exactly the values of the corresponding
/// [`MappingEvaluation`] fields ([`crate::evaluator::Evaluator`] computes
/// them with the same operation order, so they are bitwise identical).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Multiprocessor execution time in seconds.
    pub tm_seconds: f64,
    /// `TM` in nominal-frequency clock cycles.
    pub tm_nominal_cycles: f64,
    /// True if `TM ≤` the application's deadline.
    pub meets_deadline: bool,
    /// Dynamic power in milliwatts (eq. 5).
    pub power_mw: f64,
    /// Expected SEUs experienced `Γ` (eq. 3).
    pub gamma: f64,
    /// Total register usage `R = Σ_i R_i`, bits.
    pub r_total: Bits,
}

/// Per-core scalar metrics derived from one core's operating point and
/// schedule slice.
pub(crate) struct CoreScalars {
    pub alpha: f64,
    pub exposure_cycles: f64,
    pub lambda: f64,
    pub gamma: f64,
}

/// The single source of the per-core metric arithmetic (eqs. 3, 7), shared
/// by [`EvalContext::evaluate_scheduled`] and
/// [`crate::evaluator::Evaluator::evaluate`] so the allocating and
/// scratch-buffer paths cannot drift: both must produce bitwise-identical
/// scalars for the same inputs.
pub(crate) fn core_scalars(
    level: VoltageLevel,
    busy: f64,
    tm: f64,
    r_bits: Bits,
    exposure: ExposurePolicy,
    ser: &SerModel,
) -> CoreScalars {
    core_scalars_cached(level, ser.lambda(level.vdd), busy, tm, r_bits, exposure)
}

/// [`core_scalars`] with the SER rate `lambda = ser.lambda(level.vdd)`
/// supplied by the caller. The rate depends only on the core's operating
/// point, so evaluators that hold the scaling fixed across thousands of
/// candidates (`crate::incremental`) compute it once per scaling instead
/// of paying the `exp` per core per evaluation. `core_scalars` delegates
/// here, keeping a single source for the arithmetic.
pub(crate) fn core_scalars_cached(
    level: VoltageLevel,
    lambda: f64,
    busy: f64,
    tm: f64,
    r_bits: Bits,
    exposure: ExposurePolicy,
) -> CoreScalars {
    let alpha = if tm > 0.0 { (busy / tm).min(1.0) } else { 0.0 };
    let exposure_cycles = match exposure {
        ExposurePolicy::WholeRun => tm * level.f_hz,
        ExposurePolicy::BusyOnly => busy * level.f_hz,
    };
    CoreScalars {
        alpha,
        exposure_cycles,
        lambda,
        gamma: r_bits.as_f64() * exposure_cycles * lambda,
    }
}

/// Evaluation context binding an application to an architecture, an SER
/// model and an exposure policy.
#[derive(Debug, Clone)]
pub struct EvalContext<'a> {
    app: &'a Application,
    arch: &'a Architecture,
    ser: SerModel,
    exposure: ExposurePolicy,
}

impl<'a> EvalContext<'a> {
    /// Creates a context with the paper-calibrated SER model and the default
    /// exposure policy.
    #[must_use]
    pub fn new(app: &'a Application, arch: &'a Architecture) -> Self {
        EvalContext {
            app,
            arch,
            ser: SerModel::default(),
            exposure: ExposurePolicy::WholeRun,
        }
    }

    /// Replaces the SER model (non-consuming builder).
    #[must_use]
    pub fn with_ser(mut self, ser: SerModel) -> Self {
        self.ser = ser;
        self
    }

    /// Replaces the exposure policy.
    #[must_use]
    pub fn with_exposure(mut self, exposure: ExposurePolicy) -> Self {
        self.exposure = exposure;
        self
    }

    /// The application under evaluation (returned at the context's full
    /// lifetime, so callers can hold it alongside mutable scratch state).
    #[must_use]
    pub fn app(&self) -> &'a Application {
        self.app
    }

    /// The target architecture (full-lifetime borrow, see [`Self::app`]).
    #[must_use]
    pub fn arch(&self) -> &'a Architecture {
        self.arch
    }

    /// The SER model in use.
    #[must_use]
    pub fn ser(&self) -> &SerModel {
        &self.ser
    }

    /// The exposure policy in use.
    #[must_use]
    pub fn exposure(&self) -> ExposurePolicy {
        self.exposure
    }

    /// List-schedules the design point (see [`crate::schedule`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError::ShapeMismatch`] for inconsistent shapes.
    pub fn schedule(
        &self,
        mapping: &Mapping,
        scaling: &ScalingVector,
    ) -> Result<Schedule, SchedError> {
        list_schedule(self.app, self.arch, mapping, scaling)
    }

    /// Evaluates the design point: schedule, then derive `TM`, `P`, `R`, `Γ`.
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError::ShapeMismatch`] for inconsistent shapes.
    pub fn evaluate(
        &self,
        mapping: &Mapping,
        scaling: &ScalingVector,
    ) -> Result<MappingEvaluation, SchedError> {
        let schedule = self.schedule(mapping, scaling)?;
        Ok(self.evaluate_scheduled(mapping, scaling, &schedule))
    }

    /// Evaluates with a pre-computed schedule (avoids re-scheduling when the
    /// caller needs both the timeline and the metrics).
    #[must_use]
    pub fn evaluate_scheduled(
        &self,
        mapping: &Mapping,
        scaling: &ScalingVector,
        schedule: &Schedule,
    ) -> MappingEvaluation {
        let tm = schedule.makespan_s();
        let registers = self.app.registers();

        let mut per_core = Vec::with_capacity(self.arch.n_cores());
        let mut activities = Vec::with_capacity(self.arch.n_cores());
        let mut gamma = 0.0f64;
        let mut r_total = Bits::ZERO;

        for core in self.arch.cores() {
            let level = self.arch.operating_point(core, scaling);
            let busy = schedule.busy_s(core);
            let r_bits = registers.union_bits(mapping.tasks_on_iter(core));
            let s = core_scalars(level, busy, tm, r_bits, self.exposure, &self.ser);
            gamma += s.gamma;
            r_total += r_bits;
            activities.push(CoreActivity {
                alpha: s.alpha,
                level,
            });
            per_core.push(CoreEval {
                core,
                coefficient: scaling.coefficient(core),
                f_hz: level.f_hz,
                vdd: level.vdd,
                busy_s: busy,
                alpha: s.alpha,
                r_bits,
                exposure_cycles: s.exposure_cycles,
                lambda: s.lambda,
                gamma: s.gamma,
            });
        }

        let power_mw = watts_to_mw(dynamic_power_w(self.arch.c_load_farads(), &activities));
        let nominal_f = self.arch.levels().level(1).f_hz;
        MappingEvaluation {
            tm_seconds: tm,
            tm_nominal_cycles: tm * nominal_f,
            meets_deadline: tm <= self.app.deadline_s(),
            power_mw,
            gamma,
            r_total,
            per_core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::LevelSet;
    use sea_taskgraph::graph::TaskGraphBuilder;
    use sea_taskgraph::registers::RegisterModelBuilder;
    use sea_taskgraph::units::Cycles;
    use sea_taskgraph::{ExecutionMode, TaskId};

    fn arch(n: usize) -> Architecture {
        Architecture::homogeneous(n, LevelSet::arm7_three_level())
    }

    /// Two independent 200e6-cycle tasks; each uses a private 1 kbit block
    /// and both share a 2 kbit block.
    fn app() -> Application {
        let mut b = TaskGraphBuilder::new("pair");
        let a = b.add_task("a", Cycles::new(200_000_000));
        let _ = b.add_task("b", Cycles::new(200_000_000));
        let c = b.add_task("c", Cycles::new(200_000_000));
        b.add_edge(a, c, Cycles::ZERO).unwrap();
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(3);
        for i in 0..3 {
            let blk = rm.add_block(format!("p{i}"), Bits::new(1000));
            rm.assign(TaskId::new(i), blk).unwrap();
        }
        rm.add_shared_block("sh", Bits::new(2000), &[TaskId::new(0), TaskId::new(1)])
            .unwrap();
        Application::new("pair", g, rm.build(), ExecutionMode::Batch, 10.0).unwrap()
    }

    #[test]
    fn gamma_matches_hand_computation() {
        let app = app();
        let arch = arch(2);
        let ctx = EvalContext::new(&app, &arch);
        let m = Mapping::from_groups(&[&[0, 1, 2]], 2).unwrap();
        let s = ScalingVector::all_nominal(&arch);
        let e = ctx.evaluate(&m, &s).unwrap();
        // Serial at 200 MHz: TM = 3 s. Core 1 holds all blocks:
        // R1 = 3*1000 + 2000 = 5000 bit. Core 2 empty.
        assert!((e.tm_seconds - 3.0).abs() < 1e-9);
        assert_eq!(e.r_total, Bits::new(5000));
        let lambda = SerModel::default().lambda(arch.levels().level(1).vdd);
        let expected = 5000.0 * (3.0 * 200e6) * lambda;
        assert!(
            (e.gamma - expected).abs() / expected < 1e-12,
            "gamma {} vs {}",
            e.gamma,
            expected
        );
    }

    #[test]
    fn distributing_shared_block_raises_r() {
        let app = app();
        let arch = arch(2);
        let ctx = EvalContext::new(&app, &arch);
        let s = ScalingVector::all_nominal(&arch);
        let together = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let split = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let e1 = ctx.evaluate(&together, &s).unwrap();
        let e2 = ctx.evaluate(&split, &s).unwrap();
        // Together: {a,b} = 1000+1000+2000, {c} = 1000 -> 5000.
        // Split: {a,c} = 1000+1000+2000, {b} = 1000+2000 -> 7000.
        assert_eq!(e1.r_total, Bits::new(5000));
        assert_eq!(e2.r_total, Bits::new(7000));
    }

    #[test]
    fn lower_voltage_raises_gamma_at_fixed_mapping() {
        let app = app();
        let arch = arch(2);
        let ctx = EvalContext::new(&app, &arch);
        let m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let e1 = ctx
            .evaluate(&m, &ScalingVector::all_nominal(&arch))
            .unwrap();
        let e2 = ctx.evaluate(&m, &ScalingVector::all_lowest(&arch)).unwrap();
        // s=3: cycles unchanged... but WholeRun exposure = TM * f. TM grows
        // 3x, f shrinks 3x -> exposure cycles unchanged; the rate factor
        // (~3.39 at 0.444 V) fully drives the increase.
        assert!(e2.gamma > 3.0 * e1.gamma);
        assert!(e2.gamma < 3.8 * e1.gamma);
    }

    #[test]
    fn power_drops_with_voltage_scaling() {
        let app = app();
        let arch = arch(2);
        let ctx = EvalContext::new(&app, &arch);
        let m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let p1 = ctx
            .evaluate(&m, &ScalingVector::all_nominal(&arch))
            .unwrap()
            .power_mw;
        let p3 = ctx
            .evaluate(&m, &ScalingVector::all_lowest(&arch))
            .unwrap()
            .power_mw;
        assert!(p3 < p1, "lowest voltage must cut power: {p3} vs {p1}");
    }

    #[test]
    fn alpha_bounded_and_busy_consistent() {
        let app = app();
        let arch = arch(2);
        let ctx = EvalContext::new(&app, &arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let s = ScalingVector::all_nominal(&arch);
        let e = ctx.evaluate(&m, &s).unwrap();
        for ce in &e.per_core {
            assert!((0.0..=1.0).contains(&ce.alpha));
            assert!(ce.busy_s <= e.tm_seconds + 1e-12);
        }
        // The bottleneck core defines TM here (no idle gaps on core 1).
        assert!((e.per_core[0].busy_s - e.tm_seconds).abs() < 1e-9);
    }

    #[test]
    fn busy_only_exposure_is_smaller() {
        let app = app();
        let arch = arch(2);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let s = ScalingVector::all_nominal(&arch);
        let whole = EvalContext::new(&app, &arch).evaluate(&m, &s).unwrap();
        let busy = EvalContext::new(&app, &arch)
            .with_exposure(ExposurePolicy::BusyOnly)
            .evaluate(&m, &s)
            .unwrap();
        assert!(busy.gamma < whole.gamma);
    }

    #[test]
    fn deadline_flag() {
        let app = app().with_deadline(0.5).unwrap();
        let arch = arch(2);
        let ctx = EvalContext::new(&app, &arch);
        let m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let e = ctx
            .evaluate(&m, &ScalingVector::all_nominal(&arch))
            .unwrap();
        assert!(!e.meets_deadline);
    }

    #[test]
    fn tm_nominal_cycles_uses_level1() {
        let app = app();
        let arch = arch(2);
        let ctx = EvalContext::new(&app, &arch);
        let m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let e = ctx
            .evaluate(&m, &ScalingVector::all_nominal(&arch))
            .unwrap();
        assert!((e.tm_nominal_cycles - e.tm_seconds * 200e6).abs() < 1.0);
    }

    #[test]
    fn custom_ser_scales_gamma_linearly() {
        let app = app();
        let arch = arch(2);
        let m = Mapping::from_groups(&[&[0, 1], &[2]], 2).unwrap();
        let s = ScalingVector::all_nominal(&arch);
        let base = EvalContext::new(&app, &arch).evaluate(&m, &s).unwrap();
        let tenfold = EvalContext::new(&app, &arch)
            .with_ser(SerModel::calibrated(1e-8))
            .evaluate(&m, &s)
            .unwrap();
        assert!((tenfold.gamma / base.gamma - 10.0).abs() < 1e-9);
    }
}
