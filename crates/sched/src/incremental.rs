//! Delta evaluation: incremental list scheduling for single-move searches.
//!
//! The annealer's hot loop perturbs one accepted mapping by a single
//! [`Move`] — relocate one task or swap two — evaluates the neighbour, and
//! accepts or rejects. The full [`Evaluator`] re-schedules every task for
//! every candidate; [`IncrementalEvaluator`] instead caches the last
//! *accepted* schedule (per-task placements, per-core lanes and busy
//! times, per-core register unions) and replays only what a move can
//! invalidate.
//!
//! # What a `Move` may invalidate
//!
//! The scheduler visits tasks in the graph's static priority order
//! ([`TaskGraphSoa::schedule_order`]), which no move can change. A task's
//! placement depends only on earlier-visited tasks (its predecessors'
//! finish times and its core's lane state) plus its own core assignment.
//! Let `p` be the smallest order position among the moved tasks. Every
//! placement at positions `< p` is therefore *bitwise unchanged*. From
//! `p` onward the evaluator walks the order tracking the move's *cone of
//! influence*: a task is re-placed (through the same `place_task`
//! routine the full pass uses) only if it moved, a predecessor's
//! placement changed, or its core's timeline diverged — everything else
//! provably keeps its committed placement bit for bit and is skipped.
//! Core state is reconstructed lazily the first time a re-placement
//! lands on a core: the lane is the committed lane filtered to
//! earlier-visited clean tasks (insertion never reorders surviving
//! entries) and busy is the committed partial-sum snapshot at `p` plus
//! the clean durations re-added in visit order — the same additions, in
//! the same order, the full pass performs. Per-core register unions
//! depend only on the mapping; because block bits are integers, each
//! union is maintained as block-occupancy counts updated *in place* by
//! the moved tasks' count transitions (reverted on reject). Per-core
//! SER rates (`λ`, an `exp` of the operating voltage) depend only on
//! the scaling, which is fixed across one anneal, and are cached at
//! [`IncrementalEvaluator::prime`].
//!
//! # Fallback rule
//!
//! When `p` falls in the first `1/8` of the order ([`fallback_cutoff`]),
//! the suffix replay covers nearly the whole schedule and the bookkeeping
//! stops paying; the evaluator recomputes from position 0 instead (still
//! reusing cached `λ` and unaffected register unions). Both paths execute
//! identical float operations on identical inputs, so the fallback is a
//! pure performance decision — results are bitwise identical either way.
//!
//! # Determinism cross-check
//!
//! Debug builds re-evaluate every candidate through the full
//! [`Evaluator`] and `debug_assert!` bitwise equality of the summaries,
//! so any drift between the paths fails the test suite immediately. The
//! `SEA_INCREMENTAL=0` environment escape hatch
//! ([`incremental_default`]) routes every call through the full path in
//! release builds too, which CI uses to diff end-to-end reports.

use std::sync::Arc;

use sea_arch::power::watts_to_mw;
use sea_arch::{CoreId, ScalingVector, VoltageLevel};
use sea_taskgraph::units::Bits;
use sea_taskgraph::{ExecutionMode, RegisterModel, TaskGraphSoa, TaskId};

use crate::evaluator::Evaluator;
use crate::mapping::{Mapping, Move};
use crate::metrics::{core_scalars_cached, EvalContext, EvalSummary, MappingEvaluation};
use crate::schedule::{check_shapes, place_task, ScheduledTask};
use crate::SchedError;

/// Numerator of the largest suffix fraction worth replaying.
const FALLBACK_NUM: usize = 7;
/// Denominator of the largest suffix fraction worth replaying.
const FALLBACK_DEN: usize = 8;

/// The smallest order position for which a move is evaluated
/// incrementally: positions below the cutoff would replay more than
/// `7/8` of the schedule, so the evaluator recomputes from position 0
/// instead. Exposed so tests can target the boundary exactly.
#[must_use]
pub fn fallback_cutoff(n: usize) -> usize {
    n - n * FALLBACK_NUM / FALLBACK_DEN
}

/// The process-wide default for incremental evaluation: enabled unless
/// the `SEA_INCREMENTAL` environment variable is set to `0`.
#[must_use]
pub fn incremental_default() -> bool {
    std::env::var("SEA_INCREMENTAL").map_or(true, |v| v.trim() != "0")
}

/// True when every field of two summaries is bit-for-bit identical
/// (`f64` fields compared through `to_bits`, so `-0.0 != 0.0` and NaNs
/// compare by payload — stricter than `PartialEq`).
#[must_use]
pub fn summaries_bitwise_eq(a: &EvalSummary, b: &EvalSummary) -> bool {
    a.tm_seconds.to_bits() == b.tm_seconds.to_bits()
        && a.tm_nominal_cycles.to_bits() == b.tm_nominal_cycles.to_bits()
        && a.meets_deadline == b.meets_deadline
        && a.power_mw.to_bits() == b.power_mw.to_bits()
        && a.gamma.to_bits() == b.gamma.to_bits()
        && a.r_total == b.r_total
}

/// Counters describing how candidates were evaluated (observability for
/// benches and the fallback-boundary tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Full evaluations that (re)established the committed cache.
    pub primes: u64,
    /// Moves evaluated by suffix replay.
    pub incremental: u64,
    /// Moves recomputed from position 0 (blast radius over the
    /// threshold, or no committed cache for the active scaling).
    pub fallback: u64,
    /// Calls delegated verbatim to the full evaluator because
    /// incremental evaluation is disabled.
    pub bypassed: u64,
    /// Tasks actually re-placed across all suffix replays (the cone of
    /// influence), versus `replay_window`: suffix tasks *visited*. Their
    /// ratio is the fraction of the replay window the cone covers.
    pub replayed_tasks: u64,
    /// Total suffix lengths (visit-order positions from the first moved
    /// task to the end) across all suffix replays.
    pub replay_window: u64,
}

/// One complete cached schedule: everything needed to reconstruct any
/// prefix of the static visit order without re-placing a task.
#[derive(Debug, Clone, Default)]
struct ScheduleCache {
    /// Per-task finish seconds, indexed by task id.
    finish: Vec<f64>,
    /// Per-task duration seconds (computation + inbound comm), indexed
    /// by task id. Busy times are re-accumulated from these in visit
    /// order; `finish - start` would round differently.
    dur: Vec<f64>,
    /// The mapping this schedule was computed for.
    core: Vec<CoreId>,
    /// Per-core busy seconds (fill pass).
    busy: Vec<f64>,
    /// Per-core timelines, sorted by start time.
    lanes: Vec<Vec<ScheduledTask>>,
}

impl ScheduleCache {
    fn with_shapes(n_tasks: usize, n_cores: usize) -> Self {
        ScheduleCache {
            finish: Vec::with_capacity(n_tasks),
            dur: Vec::with_capacity(n_tasks),
            core: Vec::with_capacity(n_tasks),
            busy: Vec::with_capacity(n_cores),
            lanes: (0..n_cores).map(|_| Vec::with_capacity(n_tasks)).collect(),
        }
    }
}

/// A full [`Evaluator`] plus the committed-schedule cache that makes
/// single-move candidates cheap.
///
/// The protocol mirrors the annealer's apply/undo loop:
///
/// 1. [`IncrementalEvaluator::prime`] evaluates the current design fully
///    and commits it as the cache base (once per scaling).
/// 2. [`IncrementalEvaluator::evaluate_move`] evaluates `current + move`
///    into a candidate buffer without touching the committed base.
/// 3. [`IncrementalEvaluator::accept`] promotes the candidate to the new
///    base (two buffer swaps); [`IncrementalEvaluator::reject`] simply
///    discards it.
///
/// When disabled (`SEA_INCREMENTAL=0` or
/// [`IncrementalEvaluator::with_enabled`]), every call delegates to the
/// wrapped full evaluator and `accept`/`reject` are no-ops, so callers
/// keep a single code path.
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'a> {
    full: Evaluator<'a>,
    enabled: bool,
    /// True when `committed` holds the schedule of the last accepted
    /// mapping under the cached scaling constants.
    primed: bool,
    /// True when `candidate` holds a just-evaluated move.
    candidate_valid: bool,
    /// Scaling coefficients the cached constants below were derived from.
    scaling: Vec<u8>,
    /// Per-core effective frequency under the cached scaling.
    freq: Vec<f64>,
    /// Per-core operating point under the cached scaling.
    levels: Vec<VoltageLevel>,
    /// Per-core SER rate `λ(vdd)` — caches the `exp` per scaling.
    lambdas: Vec<f64>,
    /// Cost scale for one fill pass (1 / iterations).
    scale: f64,
    /// Nominal (level-1) frequency — architecture constant.
    nominal_f: f64,
    /// Switched-capacitance load — architecture constant.
    c_load: f64,
    /// Register-block count — application constant.
    n_blocks: usize,
    /// Per-core register-block union for the counts state below.
    r_bits: Vec<Bits>,
    /// `n_cores × n_blocks` row-major occupancy counts: how many tasks on
    /// each core use each register block. Bits are integers, so a move's
    /// effect on `r_bits` reduces to count transitions (`1 → 0` removes a
    /// block's bits, `0 → 1` adds them) — no per-core union rescan.
    /// Maintained *in place* (the matrix can dwarf the schedule, so a
    /// copy per candidate would dominate): evaluating a move shifts the
    /// moved tasks' blocks, rejecting shifts them back, accepting keeps
    /// them. `pending_shift` tracks which of the two states the matrix
    /// is in.
    block_counts: Vec<u32>,
    /// The move whose block shift is currently applied to `block_counts`
    /// without having been accepted yet; reverted on reject (or before
    /// the next candidate, whichever comes first).
    pending_shift: Option<Move>,
    committed: ScheduleCache,
    candidate: ScheduleCache,
    /// Prefix snapshots of the *committed* schedule, `(n + 1) × n_cores`
    /// row-major: row `i` is the per-core busy vector before the task at
    /// order position `i` was placed (row 0 all zeros, row `n` final). A
    /// replay from position `p` starts from a `memcpy` of row `p` instead
    /// of re-accumulating `p` durations.
    busy_at: Vec<f64>,
    /// Prefix maxima of the committed finish times in visit order:
    /// `fill_at[i]` is the fold of the first `i` placements' finishes
    /// (seeded 0.0). Exact because `f64::max` over the positive finish
    /// values is order-insensitive bit for bit, so the full pass's fold
    /// over all `n` finishes equals `max(fill_at[p], suffix maxima)`.
    fill_at: Vec<f64>,
    /// Per-task dirty flags for the cone-of-influence replay: a task is
    /// dirty when its placement may differ from the committed one (it
    /// moved, its core's timeline diverged, or a predecessor's placement
    /// changed). Non-dirty suffix tasks are *skipped* — their committed
    /// placements are provably bitwise identical.
    dirty_task: Vec<bool>,
    /// Per-core flag: the core's timeline diverged from the committed
    /// schedule (a moved task left/joined it, or a dirty task was
    /// re-placed on it), so every later task on it must be re-placed.
    dirty_cores: Vec<bool>,
    /// Per-core flag: the candidate lane buffer has been materialized
    /// for the current candidate. Clean cores skip materialization and
    /// keep their committed lane (patched up on accept).
    lane_done: Vec<bool>,
    /// Scratch: per-core busy excluding dirty tasks, maintained in visit
    /// order as the replay loop skips clean tasks (seeded from the
    /// `busy_at` row at the replay start). Materializing a core reads
    /// its clean busy in O(1) — the partial sums equal a re-accumulation
    /// of the same durations in the same order, so they are exact.
    clean_busy: Vec<f64>,
    /// Order position the last candidate was replayed from.
    cand_from_pos: usize,
    stats: IncrementalStats,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Creates an incremental evaluator around a context, building the
    /// graph view and pre-sizing every buffer. Enabled per
    /// [`incremental_default`].
    #[must_use]
    pub fn new(ctx: EvalContext<'a>) -> Self {
        let soa = Arc::new(TaskGraphSoa::new(ctx.app()));
        Self::with_soa(ctx, soa)
    }

    /// Creates an incremental evaluator around a pre-built (typically
    /// [`TaskGraphSoa::shared`]-memoized) graph view.
    #[must_use]
    pub fn with_soa(ctx: EvalContext<'a>, soa: Arc<TaskGraphSoa>) -> Self {
        let n = soa.len();
        let n_cores = ctx.arch().n_cores();
        let n_blocks = ctx.app().registers().blocks().len();
        let nominal_f = ctx.arch().levels().level(1).f_hz;
        let c_load = ctx.arch().c_load_farads();
        let full = Evaluator::with_soa(ctx, soa);
        IncrementalEvaluator {
            full,
            enabled: incremental_default(),
            primed: false,
            candidate_valid: false,
            scaling: Vec::with_capacity(n_cores),
            freq: Vec::with_capacity(n_cores),
            levels: Vec::with_capacity(n_cores),
            lambdas: Vec::with_capacity(n_cores),
            scale: 1.0,
            nominal_f,
            c_load,
            n_blocks,
            r_bits: vec![Bits::ZERO; n_cores],
            block_counts: vec![0; n_cores * n_blocks],
            pending_shift: None,
            committed: ScheduleCache::with_shapes(n, n_cores),
            candidate: ScheduleCache::with_shapes(n, n_cores),
            busy_at: vec![0.0; (n + 1) * n_cores],
            fill_at: vec![0.0; n + 1],
            dirty_task: vec![false; n],
            dirty_cores: vec![false; n_cores],
            lane_done: vec![false; n_cores],
            clean_busy: vec![0.0; n_cores],
            cand_from_pos: 0,
            stats: IncrementalStats::default(),
        }
    }

    /// Overrides whether moves are evaluated incrementally; disabling
    /// routes every call through the full evaluator.
    #[must_use]
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self.primed = false;
        self.candidate_valid = false;
        self
    }

    /// Whether moves are evaluated incrementally.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The wrapped evaluation context.
    #[must_use]
    pub fn ctx(&self) -> &EvalContext<'a> {
        self.full.ctx()
    }

    /// The structure-of-arrays graph view.
    #[must_use]
    pub fn soa(&self) -> &Arc<TaskGraphSoa> {
        self.full.soa()
    }

    /// How candidates have been evaluated so far.
    #[must_use]
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Evaluates a design point through the full evaluator without
    /// touching the committed cache (for warm-start comparisons and
    /// other off-loop evaluations).
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError::ShapeMismatch`] for inconsistent shapes.
    pub fn evaluate_fresh(
        &mut self,
        mapping: &Mapping,
        scaling: &ScalingVector,
    ) -> Result<EvalSummary, SchedError> {
        self.full.evaluate(mapping, scaling)
    }

    /// Full evaluation with the per-core breakdown (off the hot loop).
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError::ShapeMismatch`] for inconsistent shapes.
    pub fn evaluate_full(
        &self,
        mapping: &Mapping,
        scaling: &ScalingVector,
    ) -> Result<MappingEvaluation, SchedError> {
        self.full.evaluate_full(mapping, scaling)
    }

    /// Fully evaluates `mapping` under `scaling`, commits the schedule
    /// as the incremental base and caches the per-scaling constants
    /// (frequencies, operating points, SER rates). Call once per
    /// scaling before a run of [`IncrementalEvaluator::evaluate_move`].
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError::ShapeMismatch`] for inconsistent shapes.
    pub fn prime(
        &mut self,
        mapping: &Mapping,
        scaling: &ScalingVector,
    ) -> Result<EvalSummary, SchedError> {
        if !self.enabled {
            self.stats.bypassed += 1;
            return self.full.evaluate(mapping, scaling);
        }
        check_shapes(self.ctx().app(), self.ctx().arch(), mapping, scaling)?;
        self.load_scaling(scaling);
        let summary = self.compute_candidate(mapping, 0, None);
        self.candidate.summary_commit_guard();
        std::mem::swap(&mut self.committed, &mut self.candidate);
        self.commit_candidate();
        self.primed = true;
        self.candidate_valid = false;
        self.stats.primes += 1;
        Ok(summary)
    }

    /// Evaluates `mapping` (= the committed mapping with `mv` applied)
    /// into the candidate buffer: a suffix replay from the moved tasks'
    /// first order position, or a threshold fallback from position 0.
    /// Follow with [`IncrementalEvaluator::accept`] or
    /// [`IncrementalEvaluator::reject`].
    ///
    /// Without a committed base for the active scaling the candidate is
    /// computed fully (and may still be accepted); callers need not
    /// track priming themselves.
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError::ShapeMismatch`] for inconsistent shapes.
    pub fn evaluate_move(
        &mut self,
        mapping: &Mapping,
        scaling: &ScalingVector,
        mv: Move,
    ) -> Result<EvalSummary, SchedError> {
        if !self.enabled {
            self.stats.bypassed += 1;
            return self.full.evaluate(mapping, scaling);
        }
        let summary = if self.primed && self.scaling == scaling.coefficients() {
            debug_assert_eq!(mapping.n_tasks(), self.soa().len());
            let n = self.soa().len();
            let p = match mv {
                Move::Relocate { task, .. } => self.soa().position(task),
                Move::Swap { a, b } => self.soa().position(a).min(self.soa().position(b)),
            };
            let from_pos = if p < fallback_cutoff(n) {
                self.stats.fallback += 1;
                0
            } else {
                self.stats.incremental += 1;
                p
            };
            self.compute_candidate(mapping, from_pos, Some(mv))
        } else {
            check_shapes(self.ctx().app(), self.ctx().arch(), mapping, scaling)?;
            self.load_scaling(scaling);
            self.stats.fallback += 1;
            self.compute_candidate(mapping, 0, None)
        };
        self.candidate_valid = true;
        #[cfg(debug_assertions)]
        {
            let reference = self.full.evaluate(mapping, scaling)?;
            debug_assert!(
                summaries_bitwise_eq(&summary, &reference),
                "incremental evaluation diverged from the full path for {mv}:\n  incremental: {summary:?}\n  full:        {reference:?}"
            );
        }
        Ok(summary)
    }

    /// Promotes the last evaluated candidate to the committed base (the
    /// caller accepted the move). No-op when disabled or when nothing
    /// was evaluated since the last accept/reject.
    pub fn accept(&mut self) {
        if self.enabled && self.candidate_valid {
            // The candidate's block shift (if any) now describes the
            // committed mapping — keep it.
            self.pending_shift = None;
            std::mem::swap(&mut self.committed, &mut self.candidate);
            self.commit_candidate();
            self.primed = true;
        }
        self.candidate_valid = false;
    }

    /// Finalizes a just-promoted candidate (called right after the
    /// committed/candidate buffer swap). Clean cores were never
    /// materialized into the accepted buffer — their lanes are bitwise
    /// unchanged, so the valid copy is pulled back from the other buffer
    /// (which held the previous committed schedule). The busy/fill
    /// prefix snapshots are then rebuilt for the replayed tail from the
    /// accepted durations and finishes: the same additions, in the same
    /// visit order, that placement performed. Rejects pay none of this.
    fn commit_candidate(&mut self) {
        let Self {
            full,
            committed,
            candidate,
            busy_at,
            fill_at,
            lane_done,
            cand_from_pos,
            ..
        } = self;
        let n_cores = committed.busy.len();
        for ((done, accepted), previous) in lane_done
            .iter()
            .zip(committed.lanes.iter_mut())
            .zip(candidate.lanes.iter_mut())
        {
            if !*done {
                std::mem::swap(accepted, previous);
            }
        }
        let order = full.soa().schedule_order();
        for q in *cand_from_pos..order.len() {
            let ti = order[q].index();
            let ci = committed.core[ti].index();
            busy_at.copy_within(q * n_cores..(q + 1) * n_cores, (q + 1) * n_cores);
            busy_at[(q + 1) * n_cores + ci] += committed.dur[ti];
            fill_at[q + 1] = fill_at[q].max(committed.finish[ti]);
        }
        #[cfg(debug_assertions)]
        for (ci, &b) in committed.busy.iter().enumerate() {
            debug_assert_eq!(
                busy_at[order.len() * n_cores + ci].to_bits(),
                b.to_bits(),
                "rebuilt busy snapshot diverged on core {ci}"
            );
        }
    }

    /// Discards the last evaluated candidate (the caller rejected the
    /// move and undid it); the committed base stays authoritative. The
    /// candidate's block shift is reverted, restoring the occupancy
    /// counts to the committed mapping's.
    pub fn reject(&mut self) {
        if let Some(mv) = self.pending_shift.take() {
            shift_move(
                self.full.ctx().app().registers(),
                self.n_blocks,
                &mut self.block_counts,
                &mut self.r_bits,
                &self.committed.core,
                mv,
                true,
            );
        }
        self.candidate_valid = false;
    }

    /// Caches the per-scaling constants: effective frequencies,
    /// operating points and SER rates per core, and the fill-pass cost
    /// scale. Invalidates the committed base.
    fn load_scaling(&mut self, scaling: &ScalingVector) {
        let Self {
            full,
            scaling: cached,
            freq,
            levels,
            lambdas,
            scale,
            primed,
            ..
        } = self;
        let ctx = full.ctx();
        let arch = ctx.arch();
        let ser = *ctx.ser();
        cached.clear();
        cached.extend_from_slice(scaling.coefficients());
        freq.clear();
        freq.extend(arch.cores().map(|c| arch.effective_frequency(c, scaling)));
        levels.clear();
        lambdas.clear();
        for core in arch.cores() {
            let level = arch.operating_point(core, scaling);
            levels.push(level);
            lambdas.push(ser.lambda(level.vdd));
        }
        *scale = 1.0 / f64::from(ctx.app().mode().iterations());
        *primed = false;
    }

    /// Evaluates `mapping` into the candidate buffer, replaying the
    /// visit order from `from_pos` on prefix state reconstructed from
    /// the committed cache. `delta` is the move separating `mapping`
    /// from the committed base; with it, the suffix replay is restricted
    /// to the move's cone of influence (dirty tasks/cores) and register
    /// unions are updated by occupancy-count transitions instead of
    /// per-core rescans (`None` recomputes everything from scratch).
    /// Shares [`place_task`] with the full pass and accumulates in the
    /// same order, so the result is bitwise identical to a full
    /// evaluation of `mapping`.
    #[allow(clippy::too_many_lines)]
    fn compute_candidate(
        &mut self,
        mapping: &Mapping,
        from_pos: usize,
        delta: Option<Move>,
    ) -> EvalSummary {
        let Self {
            full,
            committed,
            candidate,
            freq,
            scale,
            levels,
            lambdas,
            nominal_f,
            c_load,
            n_blocks,
            r_bits,
            block_counts,
            pending_shift,
            busy_at,
            fill_at,
            dirty_task,
            dirty_cores,
            lane_done,
            clean_busy,
            cand_from_pos,
            stats,
            ..
        } = self;
        let n_blocks = *n_blocks;
        *cand_from_pos = from_pos;
        let soa: &TaskGraphSoa = full.soa();
        let ctx = full.ctx();
        let app = ctx.app();
        let arch = ctx.arch();
        let registers = app.registers();
        let exposure = ctx.exposure();
        let n = soa.len();
        let n_cores = arch.n_cores();
        let order = soa.schedule_order();

        // A shift left in place by a candidate that was never accepted or
        // rejected (protocol misuse) would corrupt the counts — undo it
        // so every path starts from the committed mapping's state.
        if let Some(prev) = pending_shift.take() {
            shift_move(
                registers,
                n_blocks,
                block_counts,
                r_bits,
                &committed.core,
                prev,
                true,
            );
        }

        candidate.lanes.resize_with(n_cores, Vec::new);
        let mut fill = fill_at[from_pos];
        if from_pos == 0 {
            // Full replay: every task re-placed, every lane rebuilt.
            lane_done.fill(true);
            candidate.busy.clear();
            candidate.busy.resize(n_cores, 0.0f64);
            candidate.finish.clear();
            candidate.finish.resize(n, f64::NAN);
            candidate.dur.clear();
            candidate.dur.resize(n, 0.0f64);
            for lane in candidate.lanes.iter_mut() {
                lane.clear();
            }
            for &t in order {
                let placed = place_task(
                    soa,
                    mapping,
                    freq,
                    *scale,
                    t,
                    &mut candidate.finish,
                    &mut candidate.busy,
                    &mut candidate.lanes,
                );
                candidate.dur[t.index()] = placed.dur_s;
                fill = fill.max(candidate.finish[t.index()]);
            }
        } else {
            // Cone-of-influence replay. A suffix task's placement can
            // differ from the committed one only if the task moved, its
            // core's timeline diverged (a moved task left/joined it, or
            // a dirty task was re-placed on it), or a predecessor's
            // placement changed — everything else is bitwise unchanged
            // and simply kept. The visit order is topological, so each
            // task's predecessors are classified before it.
            let mv = delta.expect("suffix replay requires the separating move");
            dirty_task.fill(false);
            dirty_cores.fill(false);
            lane_done.fill(false);
            match mv {
                Move::Relocate { task, to } => {
                    dirty_task[task.index()] = true;
                    dirty_cores[committed.core[task.index()].index()] = true;
                    dirty_cores[to.index()] = true;
                }
                Move::Swap { a, b } => {
                    dirty_task[a.index()] = true;
                    dirty_task[b.index()] = true;
                    dirty_cores[committed.core[a.index()].index()] = true;
                    dirty_cores[committed.core[b.index()].index()] = true;
                }
            }
            // Prefix placements (and skipped suffix placements) are the
            // committed ones; replayed tasks overwrite their slots.
            candidate.finish.clear();
            candidate.finish.extend_from_slice(&committed.finish);
            candidate.dur.clear();
            candidate.dur.extend_from_slice(&committed.dur);
            candidate.busy.clear();
            candidate.busy.extend_from_slice(&committed.busy);
            let row = from_pos * n_cores;
            clean_busy.copy_from_slice(&busy_at[row..row + n_cores]);
            stats.replay_window += (n - from_pos) as u64;
            for (q, &t) in order.iter().enumerate().skip(from_pos) {
                let ti = t.index();
                let c = mapping.core_of(t);
                let ci = c.index();
                let mut dirty = dirty_task[ti] || dirty_cores[ci];
                if !dirty {
                    for &(p, _) in soa.predecessors(t) {
                        if dirty_task[p as usize] {
                            dirty = true;
                            break;
                        }
                    }
                }
                if dirty {
                    stats.replayed_tasks += 1;
                    dirty_task[ti] = true;
                    dirty_cores[ci] = true;
                    if !lane_done[ci] {
                        materialize_lane(
                            soa,
                            committed,
                            dirty_task,
                            q,
                            ci,
                            clean_busy[ci],
                            &mut candidate.lanes[ci],
                            &mut candidate.busy[ci],
                        );
                        lane_done[ci] = true;
                    }
                    let placed = place_task(
                        soa,
                        mapping,
                        freq,
                        *scale,
                        t,
                        &mut candidate.finish,
                        &mut candidate.busy,
                        &mut candidate.lanes,
                    );
                    candidate.dur[ti] = placed.dur_s;
                } else {
                    // Skipped: keep accumulating the core's clean busy in
                    // visit order (a dirty core receives no clean tasks,
                    // so its value freezes exactly at materialization).
                    clean_busy[ci] += candidate.dur[ti];
                }
                fill = fill.max(candidate.finish[ti]);
            }
            // A dirty core that received no placement (e.g. the move's
            // source core emptied of suffix tasks) still needs its lane
            // and busy reconstructed without the departed tasks.
            for ci in 0..n_cores {
                if dirty_cores[ci] && !lane_done[ci] {
                    materialize_lane(
                        soa,
                        committed,
                        dirty_task,
                        n,
                        ci,
                        clean_busy[ci],
                        &mut candidate.lanes[ci],
                        &mut candidate.busy[ci],
                    );
                    lane_done[ci] = true;
                }
            }
        }
        // The core array is the committed one patched by the move (exact:
        // core ids are discrete); without a delta it is rebuilt.
        candidate.core.clear();
        match delta {
            Some(Move::Relocate { task, to }) => {
                candidate.core.extend_from_slice(&committed.core);
                candidate.core[task.index()] = to;
            }
            Some(Move::Swap { a, b }) => {
                candidate.core.extend_from_slice(&committed.core);
                candidate.core.swap(a.index(), b.index());
            }
            None => candidate
                .core
                .extend((0..n).map(|t| mapping.core_of(TaskId::new(t)))),
        }

        // `fill` equals the full pass's fold over all `n` finishes:
        // prefix finishes are bitwise unchanged, their maximum is the
        // `fill_at` snapshot, and `f64::max` over the (strictly positive)
        // finish values is order-insensitive bit for bit.
        let (tm, iter_mult) = match app.mode() {
            ExecutionMode::Batch => (fill, 1.0),
            ExecutionMode::Pipelined { iterations } => {
                let period = candidate.busy.iter().fold(0.0f64, |acc, &b| acc.max(b));
                (
                    fill + period * f64::from(iterations - 1),
                    f64::from(iterations),
                )
            }
        };

        // Register unions: a pure function of the mapping per core. Bits
        // are integers, so each core's union is the (order-insensitive)
        // sum of the bits of its occupied blocks, and a move only shifts
        // occupancy counts for the moved tasks' blocks — applied in place
        // (undone on reject) rather than copied per candidate.
        match delta {
            None => {
                block_counts.fill(0);
                for t in 0..n {
                    let t = TaskId::new(t);
                    let base = mapping.core_of(t).index() * n_blocks;
                    for &b in registers.task_blocks(t) {
                        block_counts[base + b.index()] += 1;
                    }
                }
                for c in 0..n_cores {
                    let row = &block_counts[c * n_blocks..(c + 1) * n_blocks];
                    let mut r = Bits::ZERO;
                    for (blk, &count) in registers.blocks().iter().zip(row) {
                        if count > 0 {
                            r += blk.bits();
                        }
                    }
                    r_bits[c] = r;
                }
            }
            Some(mv) => {
                shift_move(
                    registers,
                    n_blocks,
                    block_counts,
                    r_bits,
                    &committed.core,
                    mv,
                    false,
                );
                *pending_shift = Some(mv);
            }
        }

        // Same accumulation order as the full paths (core order), with
        // the per-scaling λ cache supplying the rates. The power sum
        // reproduces `dynamic_power_w` term by term (left fold from 0.0
        // in core order), fused here to skip the activity staging pass.
        let mut gamma = 0.0f64;
        let mut r_total = Bits::ZERO;
        let mut power_acc = 0.0f64;
        for i in 0..n_cores {
            let level = levels[i];
            let busy = candidate.busy[i] * iter_mult;
            let r = r_bits[i];
            let s = core_scalars_cached(level, lambdas[i], busy, tm, r, exposure);
            gamma += s.gamma;
            r_total += r;
            power_acc += s.alpha * level.f_hz * level.vdd * level.vdd;
        }

        let power_mw = watts_to_mw(power_acc * *c_load);
        EvalSummary {
            tm_seconds: tm,
            tm_nominal_cycles: tm * *nominal_f,
            meets_deadline: tm <= app.deadline_s(),
            power_mw,
            gamma,
            r_total,
        }
    }
}

/// Applies (or, with `revert`, exactly undoes) the occupancy-count
/// transitions of `mv` against the committed core assignment: each moved
/// task's blocks shift between its committed core and its destination.
fn shift_move(
    registers: &RegisterModel,
    n_blocks: usize,
    counts: &mut [u32],
    r_bits: &mut [Bits],
    committed_core: &[CoreId],
    mv: Move,
    revert: bool,
) {
    let mut shift = |task: TaskId, from: CoreId, to: CoreId| {
        if revert {
            shift_blocks(registers, n_blocks, counts, r_bits, task, to, from);
        } else {
            shift_blocks(registers, n_blocks, counts, r_bits, task, from, to);
        }
    };
    match mv {
        Move::Relocate { task, to } => shift(task, committed_core[task.index()], to),
        Move::Swap { a, b } => {
            let ca = committed_core[a.index()];
            let cb = committed_core[b.index()];
            shift(a, ca, cb);
            shift(b, cb, ca);
        }
    }
}

/// Moves one task's register blocks from core `from` to core `to` in the
/// occupancy-count matrix, adjusting the two cores' unions on `1 → 0` /
/// `0 → 1` transitions. Exact because block bits are integers: the union
/// is the sum of the occupied blocks' bits in any order.
fn shift_blocks(
    registers: &RegisterModel,
    n_blocks: usize,
    counts: &mut [u32],
    r_bits: &mut [Bits],
    task: TaskId,
    from: CoreId,
    to: CoreId,
) {
    for &b in registers.task_blocks(task) {
        let bits = registers.block(b).bits();
        let f = from.index() * n_blocks + b.index();
        counts[f] -= 1;
        if counts[f] == 0 {
            r_bits[from.index()] = r_bits[from.index()] - bits;
        }
        let t = to.index() * n_blocks + b.index();
        counts[t] += 1;
        if counts[t] == 1 {
            r_bits[to.index()] = r_bits[to.index()] + bits;
        }
    }
}

/// Reconstructs core `ci`'s lane and busy time as they stand just before
/// visit step `q`, excluding dirty tasks (they are re-placed, or left the
/// core entirely). The lane is the committed lane filtered to
/// earlier-visited clean tasks — insertion never reorders surviving
/// entries, so the filter preserves start order. `clean_busy` is the
/// caller's visit-order partial sum of the core's clean durations (see
/// [`IncrementalEvaluator::clean_busy`]'s field docs).
#[allow(clippy::too_many_arguments)]
fn materialize_lane(
    soa: &TaskGraphSoa,
    committed: &ScheduleCache,
    dirty_task: &[bool],
    q: usize,
    ci: usize,
    clean_busy: f64,
    lane: &mut Vec<ScheduledTask>,
    busy: &mut f64,
) {
    lane.clear();
    lane.extend(
        committed.lanes[ci]
            .iter()
            .filter(|e| soa.position(e.task) < q && !dirty_task[e.task.index()]),
    );
    *busy = clean_busy;
}

impl ScheduleCache {
    /// Shape sanity for a cache about to become the committed base.
    fn summary_commit_guard(&self) {
        debug_assert_eq!(self.core.len(), self.finish.len());
        debug_assert_eq!(self.busy.len(), self.lanes.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::{Architecture, LevelSet};
    use sea_taskgraph::{fig8, mpeg2, Application};

    fn setup(app: &Application, cores: usize) -> (Architecture, Mapping) {
        let arch = Architecture::homogeneous(cores, LevelSet::arm7_three_level());
        let n = app.graph().len();
        let assign: Vec<CoreId> = (0..n).map(|t| CoreId::new(t % cores)).collect();
        (arch, Mapping::try_new(assign, cores).unwrap())
    }

    fn walk_neighbourhood(app: &Application, cores: usize) {
        let (arch, mut current) = setup(app, cores);
        let ctx = EvalContext::new(app, &arch);
        let mut ev = IncrementalEvaluator::new(ctx.clone()).with_enabled(true);
        let mut reference = Evaluator::new(ctx.clone());
        for s in [
            ScalingVector::all_nominal(&arch),
            ScalingVector::uniform(2, &arch).unwrap(),
        ] {
            let primed = ev.prime(&current, &s).unwrap();
            assert!(summaries_bitwise_eq(
                &primed,
                &reference.evaluate(&current, &s).unwrap()
            ));
            // Evaluate every neighbour; accept every third move.
            let moves: Vec<Move> = current.neighbourhood();
            for (i, mv) in moves.into_iter().enumerate() {
                let inverse = current.apply(mv);
                let fast = ev.evaluate_move(&current, &s, mv).unwrap();
                let full = reference.evaluate(&current, &s).unwrap();
                assert!(
                    summaries_bitwise_eq(&fast, &full),
                    "divergence on {mv}: {fast:?} vs {full:?}"
                );
                if i % 3 == 0 {
                    ev.accept();
                } else {
                    ev.reject();
                    current.apply(inverse);
                }
            }
        }
        let stats = ev.stats();
        assert!(
            stats.incremental > 0,
            "no incremental evaluations: {stats:?}"
        );
        assert_eq!(stats.bypassed, 0);
    }

    #[test]
    fn matches_full_evaluator_on_mpeg2_neighbourhood() {
        walk_neighbourhood(&mpeg2::application(), 4);
    }

    #[test]
    fn matches_full_evaluator_on_fig8_neighbourhood() {
        walk_neighbourhood(&fig8::application(), 3);
    }

    #[test]
    fn fallback_and_incremental_branches_both_taken() {
        let app = mpeg2::application();
        let (arch, mut current) = setup(&app, 4);
        let ctx = EvalContext::new(&app, &arch);
        let mut ev = IncrementalEvaluator::new(ctx).with_enabled(true);
        let s = ScalingVector::all_nominal(&arch);
        ev.prime(&current, &s).unwrap();
        let n = ev.soa().len();
        let cutoff = fallback_cutoff(n);
        assert!(cutoff > 0, "mpeg2 order must have a fallback region");

        // A move on the first-visited task replays everything: fallback.
        let early = ev.soa().schedule_order()[0];
        let to = CoreId::new((current.core_of(early).index() + 1) % 4);
        let mv = Move::Relocate { task: early, to };
        let inverse = current.apply(mv);
        ev.evaluate_move(&current, &s, mv).unwrap();
        ev.reject();
        current.apply(inverse);
        assert_eq!(ev.stats().fallback, 1);
        assert_eq!(ev.stats().incremental, 0);

        // A move exactly at the cutoff position goes incremental.
        let boundary = ev.soa().schedule_order()[cutoff];
        let to = CoreId::new((current.core_of(boundary).index() + 1) % 4);
        let mv = Move::Relocate { task: boundary, to };
        current.apply(mv);
        ev.evaluate_move(&current, &s, mv).unwrap();
        ev.accept();
        assert_eq!(ev.stats().incremental, 1);

        // One position before the cutoff falls back again.
        let below = ev.soa().schedule_order()[cutoff - 1];
        let to = CoreId::new((current.core_of(below).index() + 1) % 4);
        let mv = Move::Relocate { task: below, to };
        current.apply(mv);
        ev.evaluate_move(&current, &s, mv).unwrap();
        ev.accept();
        assert_eq!(ev.stats().fallback, 2);
    }

    #[test]
    fn disabled_mode_delegates_to_full_path() {
        let app = mpeg2::application();
        let (arch, mut current) = setup(&app, 4);
        let ctx = EvalContext::new(&app, &arch);
        let mut ev = IncrementalEvaluator::new(ctx.clone()).with_enabled(false);
        let mut reference = Evaluator::new(ctx);
        let s = ScalingVector::all_nominal(&arch);
        let primed = ev.prime(&current, &s).unwrap();
        assert!(summaries_bitwise_eq(
            &primed,
            &reference.evaluate(&current, &s).unwrap()
        ));
        let mv = current.nth_neighbourhood_move(0).unwrap();
        current.apply(mv);
        let fast = ev.evaluate_move(&current, &s, mv).unwrap();
        assert!(summaries_bitwise_eq(
            &fast,
            &reference.evaluate(&current, &s).unwrap()
        ));
        ev.accept();
        ev.reject();
        let stats = ev.stats();
        assert_eq!(stats.bypassed, 2);
        assert_eq!(stats.incremental + stats.fallback + stats.primes, 0);
    }

    #[test]
    fn unprimed_moves_recover_without_explicit_prime() {
        let app = fig8::application();
        let (arch, mut current) = setup(&app, 3);
        let ctx = EvalContext::new(&app, &arch);
        let mut ev = IncrementalEvaluator::new(ctx.clone()).with_enabled(true);
        let mut reference = Evaluator::new(ctx);
        let s = ScalingVector::all_nominal(&arch);
        // No prime: the first move computes fully and can be accepted.
        let mv = current.nth_neighbourhood_move(1).unwrap();
        current.apply(mv);
        let fast = ev.evaluate_move(&current, &s, mv).unwrap();
        assert!(summaries_bitwise_eq(
            &fast,
            &reference.evaluate(&current, &s).unwrap()
        ));
        ev.accept();
        // Subsequent moves run incrementally off the recovered base.
        let mv = current.nth_neighbourhood_move(4).unwrap();
        current.apply(mv);
        let fast = ev.evaluate_move(&current, &s, mv).unwrap();
        assert!(summaries_bitwise_eq(
            &fast,
            &reference.evaluate(&current, &s).unwrap()
        ));
        assert_eq!(ev.stats().fallback, 1);
    }

    #[test]
    fn fallback_cutoff_boundaries() {
        assert_eq!(fallback_cutoff(0), 0);
        assert_eq!(fallback_cutoff(8), 1);
        assert_eq!(fallback_cutoff(11), 2);
        for n in 1..200 {
            let c = fallback_cutoff(n);
            // The suffix replayed from the cutoff is the largest one
            // inside the 7/8 budget, and the cutoff stays in range.
            assert_eq!(n - c, n * FALLBACK_NUM / FALLBACK_DEN);
            assert!(c <= n);
        }
    }
}
