//! Deterministic list scheduling for mapped task graphs (paper §IV-B).
//!
//! The paper's `OptimizedMapping` "employs list scheduling for scheduling
//! tasks \[8\]". We use the classic priority list scheduler with *bottom
//! level* (downstream critical path) priority:
//!
//! * Tasks become ready when all predecessors have finished.
//! * Among ready tasks, the one with the longest downstream critical path
//!   is scheduled first, on the core the mapping assigns it to.
//! * Placement uses the *insertion* policy: a task may start inside an
//!   earlier idle gap of its core's timeline when it fits after the task's
//!   data-ready time. Without insertion, a high-priority task waiting on a
//!   predecessor leaves its core idle even when lower-priority ready work
//!   could run there, which systematically overestimates `TM` relative to
//!   the greedy event-driven dispatch measured by `sea-sim`.
//! * Communication `d_jk` is charged on the consumer core when producer and
//!   consumer sit on different cores (32-bit dedicated links, §II-A), so a
//!   core's busy time matches eq. (7): `T_i = Σ_j (t_j + Σ_k d_jk)`.
//!
//! Two execution models are supported (see `sea_taskgraph::ExecutionMode`):
//! one-shot **batch** execution, and **pipelined** streaming execution where
//! the whole-stream task costs are spread over `I` iterations and throughput
//! is limited by the busiest core; the multiprocessor execution time is
//! `fill + (I − 1) · period` with `period = max_i(work_i / f_i)`.

use serde::{Deserialize, Serialize};

use sea_arch::{Architecture, CoreId, ScalingVector};
use sea_taskgraph::{Application, ExecutionMode, TaskGraphSoa, TaskId};

use crate::mapping::Mapping;
use crate::SchedError;

/// One scheduled execution of a task on a core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledTask {
    /// The task.
    pub task: TaskId,
    /// Start time in seconds (within one iteration for pipelined mode).
    pub start_s: f64,
    /// Finish time in seconds.
    pub finish_s: f64,
}

/// A complete schedule of one application mapping on an architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-core timelines, each sorted by start time.
    per_core: Vec<Vec<ScheduledTask>>,
    /// Multiprocessor execution time `TM` in seconds (eq. 6's quantity,
    /// measured on the schedule rather than estimated).
    makespan_s: f64,
    /// Busy seconds per core (computation + inbound cross-core
    /// communication), the wall-clock version of eq. (7)'s `T_i`.
    busy_s: Vec<f64>,
    /// Steady-state iteration period in seconds (pipelined mode only).
    period_s: Option<f64>,
}

impl Schedule {
    /// Per-core timelines in core order.
    #[must_use]
    pub fn per_core(&self) -> &[Vec<ScheduledTask>] {
        &self.per_core
    }

    /// Multiprocessor execution time in seconds.
    #[must_use]
    pub fn makespan_s(&self) -> f64 {
        self.makespan_s
    }

    /// Busy seconds of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn busy_s(&self, core: CoreId) -> f64 {
        self.busy_s[core.index()]
    }

    /// All per-core busy seconds.
    #[must_use]
    pub fn busy_per_core(&self) -> &[f64] {
        &self.busy_s
    }

    /// Steady-state period for pipelined execution, if applicable.
    #[must_use]
    pub fn period_s(&self) -> Option<f64> {
        self.period_s
    }

    /// Renders a proportional ASCII Gantt chart of the (fill) schedule.
    #[must_use]
    pub fn gantt(&self, width: usize) -> String {
        let mut out = String::new();
        let span = self
            .per_core
            .iter()
            .flatten()
            .map(|e| e.finish_s)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for (i, lane) in self.per_core.iter().enumerate() {
            out.push_str(&format!("{:>6} |", CoreId::new(i).to_string()));
            let mut row = vec![' '; width];
            for e in lane {
                let a = ((e.start_s / span) * width as f64).floor() as usize;
                let b = (((e.finish_s / span) * width as f64).ceil() as usize).min(width);
                let label: Vec<char> = e.task.to_string().chars().collect();
                for (k, slot) in row[a..b].iter_mut().enumerate() {
                    *slot = *label.get(k).unwrap_or(&'#');
                }
            }
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

/// List-schedules `app` under `mapping` and `scaling` on `arch`.
///
/// # Errors
///
/// Returns [`SchedError::ShapeMismatch`] if the mapping does not cover the
/// application's tasks or the architecture's cores.
pub fn list_schedule(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
) -> Result<Schedule, SchedError> {
    check_shapes(app, arch, mapping, scaling)?;
    let iterations = app.mode().iterations();
    let scale = 1.0 / f64::from(iterations);

    // Fill pass: one iteration's worth of work through the DAG.
    let fill = schedule_one_pass(app, arch, mapping, scaling, scale);

    match app.mode() {
        ExecutionMode::Batch => Ok(fill),
        ExecutionMode::Pipelined { iterations } => {
            // Steady state: the busiest core bounds throughput.
            let period = fill.busy_s.iter().fold(0.0f64, |acc, &b| acc.max(b));
            let makespan = fill.makespan_s + period * f64::from(iterations - 1);
            let busy: Vec<f64> = fill
                .busy_s
                .iter()
                .map(|b| b * f64::from(iterations))
                .collect();
            Ok(Schedule {
                per_core: fill.per_core,
                makespan_s: makespan,
                busy_s: busy,
                period_s: Some(period),
            })
        }
    }
}

pub(crate) fn check_shapes(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
) -> Result<(), SchedError> {
    if mapping.n_tasks() != app.graph().len() {
        return Err(SchedError::ShapeMismatch {
            what: format!(
                "mapping covers {} tasks, application has {}",
                mapping.n_tasks(),
                app.graph().len()
            ),
        });
    }
    if mapping.n_cores() != arch.n_cores() {
        return Err(SchedError::ShapeMismatch {
            what: format!(
                "mapping targets {} cores, architecture has {}",
                mapping.n_cores(),
                arch.n_cores()
            ),
        });
    }
    if scaling.len() != arch.n_cores() {
        return Err(SchedError::ShapeMismatch {
            what: format!(
                "scaling vector covers {} cores, architecture has {}",
                scaling.len(),
                arch.n_cores()
            ),
        });
    }
    Ok(())
}

/// Reusable buffers for repeated list scheduling of one application on one
/// architecture. `ScheduleScratch::with_shapes` pre-sizes every buffer so
/// the **first** `schedule_one_pass_into` call already runs without heap
/// allocation (lanes keep their capacity across candidates). Owned by
/// [`crate::evaluator::Evaluator`], which is the intended consumer.
#[derive(Debug, Default, Clone)]
pub struct ScheduleScratch {
    finish: Vec<f64>,
    freq: Vec<f64>,
    /// Busy seconds per core for the last scheduled fill pass.
    pub(crate) busy: Vec<f64>,
    /// Per-core timelines for the last scheduled fill pass.
    pub(crate) lanes: Vec<Vec<ScheduledTask>>,
}

impl ScheduleScratch {
    /// Pre-sizes the buffers for an `n_tasks`-task application on an
    /// `n_cores`-core architecture: each lane can hold every task, so no
    /// schedule shape can trigger a reallocation.
    #[must_use]
    pub(crate) fn with_shapes(n_tasks: usize, n_cores: usize) -> Self {
        ScheduleScratch {
            finish: Vec::with_capacity(n_tasks),
            freq: Vec::with_capacity(n_cores),
            busy: Vec::with_capacity(n_cores),
            lanes: (0..n_cores).map(|_| Vec::with_capacity(n_tasks)).collect(),
        }
    }
}

/// Schedules one pass of the DAG with costs scaled by `scale`
/// (1.0 for batch, 1/iterations for the pipelined fill pass).
fn schedule_one_pass(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
    scale: f64,
) -> Schedule {
    let soa = TaskGraphSoa::new(app);
    let mut scratch = ScheduleScratch::with_shapes(soa.len(), arch.n_cores());
    let makespan = schedule_one_pass_into(arch, mapping, scaling, scale, &soa, &mut scratch);
    Schedule {
        per_core: std::mem::take(&mut scratch.lanes),
        makespan_s: makespan,
        busy_s: std::mem::take(&mut scratch.busy),
        period_s: None,
    }
}

/// One task's computed placement, as produced by [`place_task`] (the
/// start and finish times land in the core's lane directly; the duration
/// is returned so the incremental cache can record it without
/// re-deriving it from `finish - start`, which rounds differently).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Placement {
    pub(crate) dur_s: f64,
}

/// Places one task on its mapped core's timeline: computes the data-ready
/// time and duration (inbound cross-core communication is charged on the
/// consumer core, eq. 7), finds the earliest insertion slot, and records
/// the placement into `finish`/`busy`/`lanes`.
///
/// This is the *single* placement routine shared by the full pass and the
/// incremental suffix replay (`crate::incremental`), so the two paths
/// cannot drift bitwise: identical inputs run identical float operations.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn place_task(
    soa: &TaskGraphSoa,
    mapping: &Mapping,
    freq: &[f64],
    scale: f64,
    t: TaskId,
    finish: &mut [f64],
    busy: &mut [f64],
    lanes: &mut [Vec<ScheduledTask>],
) -> Placement {
    let core = mapping.core_of(t);
    let f = freq[core.index()];

    // Earliest data-ready time: all producers done.
    let mut ready_s = 0.0f64;
    let mut comm_cycles = 0.0f64;
    for &(p, comm) in soa.predecessors(t) {
        ready_s = ready_s.max(finish[p as usize]);
        if mapping.core_of(TaskId::new(p as usize)) != core {
            comm_cycles += comm * scale;
        }
    }
    // Inbound cross-core communication occupies the consumer core
    // (eq. 7 counts d_jk in T_i).
    let dur = (soa.wcec(t) * scale + comm_cycles) / f;

    // Insertion placement: earliest slot on the core's timeline (an
    // inter-task gap or the tail) that starts at or after `ready_s`
    // and fits `dur`. The lane stays sorted by start time.
    let lane = &mut lanes[core.index()];
    let mut pos = lane.len();
    let mut start = ready_s;
    let mut cursor = 0.0f64;
    for (i, e) in lane.iter().enumerate() {
        let gap_start = cursor.max(ready_s);
        if gap_start + dur <= e.start_s {
            pos = i;
            start = gap_start;
            break;
        }
        cursor = e.finish_s;
    }
    if pos == lane.len() {
        start = cursor.max(ready_s);
    }
    let end = start + dur;
    finish[t.index()] = end;
    busy[core.index()] += dur;
    lane.insert(
        pos,
        ScheduledTask {
            task: t,
            start_s: start,
            finish_s: end,
        },
    );
    Placement { dur_s: dur }
}

/// The allocation-free core of [`schedule_one_pass`]: schedules one pass of
/// the DAG into `scratch`'s buffers (busy times and per-core lanes are left
/// in the scratch) and returns the pass makespan in seconds.
///
/// The visit sequence is the SoA's precomputed static order — highest
/// bottom level first, ties to the smaller task id — which depends only on
/// the graph (see [`TaskGraphSoa::schedule_order`]), so the per-step ready
/// list and priority scan of classic list scheduling disappear entirely.
pub(crate) fn schedule_one_pass_into(
    arch: &Architecture,
    mapping: &Mapping,
    scaling: &ScalingVector,
    scale: f64,
    soa: &TaskGraphSoa,
    scratch: &mut ScheduleScratch,
) -> f64 {
    let n = soa.len();
    let ScheduleScratch {
        finish,
        freq,
        busy,
        lanes,
    } = scratch;

    // Effective throughput (cycles of useful work per second); the raw
    // clock stays with the electrical models (power, SEU exposure).
    freq.clear();
    freq.extend(arch.cores().map(|c| arch.effective_frequency(c, scaling)));

    finish.clear();
    finish.resize(n, f64::NAN);
    busy.clear();
    busy.resize(arch.n_cores(), 0.0f64);
    lanes.resize_with(arch.n_cores(), Vec::new);
    for lane in lanes.iter_mut() {
        lane.clear();
    }

    for &t in soa.schedule_order() {
        place_task(soa, mapping, freq, scale, t, finish, busy, lanes);
    }

    finish.iter().fold(0.0f64, |acc, &x| acc.max(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::LevelSet;
    use sea_taskgraph::graph::TaskGraphBuilder;
    use sea_taskgraph::registers::RegisterModelBuilder;
    use sea_taskgraph::units::{Bits, Cycles};

    fn arch(n: usize) -> Architecture {
        Architecture::homogeneous(n, LevelSet::arm7_three_level())
    }

    /// Two independent tasks of 200e6 cycles each + a join task.
    fn fork_join(mode: ExecutionMode) -> Application {
        let mut b = TaskGraphBuilder::new("forkjoin");
        let a = b.add_task("a", Cycles::new(200_000_000));
        let c = b.add_task("b", Cycles::new(200_000_000));
        let j = b.add_task("join", Cycles::new(200_000_000));
        b.add_edge(a, j, Cycles::new(20_000_000)).unwrap();
        b.add_edge(c, j, Cycles::new(20_000_000)).unwrap();
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(3);
        for i in 0..3 {
            let blk = rm.add_block(format!("p{i}"), Bits::new(1000));
            rm.assign(TaskId::new(i), blk).unwrap();
        }
        Application::new("forkjoin", g, rm.build(), mode, 100.0).unwrap()
    }

    #[test]
    fn parallel_mapping_beats_serial() {
        let app = fork_join(ExecutionMode::Batch);
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let serial = Mapping::from_groups(&[&[0, 1, 2]], 2).unwrap();
        let parallel = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let sm = list_schedule(&app, &arch, &serial, &s).unwrap();
        let pm = list_schedule(&app, &arch, &parallel, &s).unwrap();
        assert!(pm.makespan_s() < sm.makespan_s());
        // Serial on one 200 MHz core: 600e6 cycles = 3 s, no comm.
        assert!((sm.makespan_s() - 3.0).abs() < 1e-9);
        // Parallel: a and b overlap (1 s), join waits for b's comm:
        // start = 1.0, duration = (200e6 + 20e6 cross-core comm)/200e6.
        assert!((pm.makespan_s() - 2.1).abs() < 1e-9);
    }

    #[test]
    fn cross_core_comm_charged_to_consumer() {
        let app = fork_join(ExecutionMode::Batch);
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let parallel = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let sched = list_schedule(&app, &arch, &parallel, &s).unwrap();
        // Core 1 busy: a (1 s) + join (1 s + 0.1 s comm from b) = 2.1 s.
        assert!((sched.busy_s(CoreId::new(0)) - 2.1).abs() < 1e-9);
        // Core 2 busy: only b.
        assert!((sched.busy_s(CoreId::new(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_scaling_slows_execution() {
        let app = fork_join(ExecutionMode::Batch);
        let arch = arch(2);
        let nominal = ScalingVector::all_nominal(&arch);
        let lowest = ScalingVector::all_lowest(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let fast = list_schedule(&app, &arch, &m, &nominal).unwrap();
        let slow = list_schedule(&app, &arch, &m, &lowest).unwrap();
        // s=3 runs at f/3: makespan scales by 3.
        assert!((slow.makespan_s() / fast.makespan_s() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_throughput_bounded_by_busiest_core() {
        let app = fork_join(ExecutionMode::Pipelined { iterations: 100 });
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let sched = list_schedule(&app, &arch, &m, &s).unwrap();
        // Per-iteration bottleneck: core 1 runs (200e6 + 200e6 + 20e6)/100
        // cycles = 4.2e6 cycles = 21 ms.
        let period = sched.period_s().unwrap();
        assert!((period - 0.021).abs() < 1e-9, "period {period}");
        // Makespan = fill + 99 * period and fill <= 2 * period.
        assert!(sched.makespan_s() > 99.0 * period);
        assert!(sched.makespan_s() < 101.0 * period + 0.1);
    }

    #[test]
    fn pipelined_busy_scales_with_iterations() {
        let app = fork_join(ExecutionMode::Pipelined { iterations: 10 });
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let sched = list_schedule(&app, &arch, &m, &s).unwrap();
        // Core 2 runs task b ten times: 10 * 1e9/... = 10 * (200e6/10)/200e6 s each? No:
        // per-iteration cost = 200e6/10 cycles = 0.1 s; ten iterations = 1 s total.
        assert!((sched.busy_s(CoreId::new(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn precedence_respected_in_schedule() {
        let app = fork_join(ExecutionMode::Batch);
        let arch = arch(3);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0], &[1], &[2]], 3).unwrap();
        let sched = list_schedule(&app, &arch, &m, &s).unwrap();
        let find = |t: usize| {
            sched
                .per_core()
                .iter()
                .flatten()
                .find(|e| e.task == TaskId::new(t))
                .copied()
                .unwrap()
        };
        let join = find(2);
        assert!(join.start_s >= find(0).finish_s);
        assert!(join.start_s >= find(1).finish_s);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let app = fork_join(ExecutionMode::Batch);
        let a2 = arch(2);
        let a3 = arch(3);
        let s2 = ScalingVector::all_nominal(&a2);
        let m = Mapping::from_groups(&[&[0, 1, 2]], 3).unwrap();
        assert!(matches!(
            list_schedule(&app, &a2, &m, &s2).unwrap_err(),
            SchedError::ShapeMismatch { .. }
        ));
        let m2 = Mapping::from_groups(&[&[0, 1, 2]], 2).unwrap();
        assert!(matches!(
            list_schedule(&app, &a3, &m2, &s2).unwrap_err(),
            SchedError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn gantt_renders_every_core() {
        let app = fork_join(ExecutionMode::Batch);
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let sched = list_schedule(&app, &arch, &m, &s).unwrap();
        let g = sched.gantt(60);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains("core1"));
        assert!(g.contains("core2"));
    }

    #[test]
    fn priority_prefers_critical_path() {
        // Chain head has larger bottom level than an independent task, so it
        // runs first when both are mapped on the same core.
        let mut b = TaskGraphBuilder::new("prio");
        let head = b.add_task("head", Cycles::new(100_000_000));
        let tail = b.add_task("tail", Cycles::new(400_000_000));
        let _solo = b.add_task("solo", Cycles::new(100_000_000));
        b.add_edge(head, tail, Cycles::ZERO).unwrap();
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(3);
        for i in 0..3 {
            let blk = rm.add_block(format!("p{i}"), Bits::new(8));
            rm.assign(TaskId::new(i), blk).unwrap();
        }
        let app = Application::new("prio", g, rm.build(), ExecutionMode::Batch, 10.0).unwrap();
        let arch = arch(2);
        let s = ScalingVector::all_nominal(&arch);
        let m = Mapping::from_groups(&[&[0, 2], &[1]], 2).unwrap();
        let sched = list_schedule(&app, &arch, &m, &s).unwrap();
        let lane0 = &sched.per_core()[0];
        assert_eq!(lane0[0].task, TaskId::new(0), "head first");
        assert_eq!(lane0[1].task, TaskId::new(2));
    }
}
