//! Mapping-independent lower bounds on the multiprocessor execution
//! time `TM`.
//!
//! For a fixed (application, architecture, scaling vector) the list
//! scheduler's makespan depends on the mapping, but two relaxations do
//! not:
//!
//! * **Critical path**: every task runs somewhere, at best on the
//!   fastest effective frequency `f_max = max_i f(i, s)`, and precedence
//!   forces the computation-only critical path `CP` (communication is
//!   dropped — a bound quantifying over *all* mappings cannot assume any
//!   edge crosses cores) to execute serially. Hence
//!   `TM ≥ CP / f_max`.
//! * **Work / capacity**: the platform retires at most `Σ_i f(i, s)`
//!   useful cycles per second, and `Σ_t wcec_t` cycles must retire, so
//!   `TM ≥ Σ wcec / Σ f` (for each core, `TM ≥ busy_i ≥ work_i / f_i`;
//!   multiply by `f_i` and sum).
//!
//! Both drop communication and idle time, so
//! `TM_lb = max(CP / f_max, Σ wcec / Σ f)` is a true lower bound for
//! **any** mapping — the pruning contract in `sea-opt` rests on this.
//!
//! Pipelined execution (`TM = fill + (I − 1) · period`, costs scaled by
//! `1/I`) gets the same treatment per component: the fill pass is a
//! batch pass at scale `1/I`, and the steady-state period is the busiest
//! core's per-iteration busy time, bounded below by both the
//! work/capacity argument and the heaviest single task on the fastest
//! core. The fill makespan also dominates every core's busy time, hence
//! dominates the period bound.
//!
//! Soundness at the float level: the bound is computed in `f64` with a
//! small *downward* safety factor ([`BOUND_SLACK`]) applied before any
//! comparison, so rounding in either direction cannot promote the bound
//! above a makespan the scheduler would actually produce. The property
//! test in `tests/properties.rs` pins `tm_lower_bound ≤ tm_seconds`
//! across randomized graphs, mappings and scalings.

use sea_arch::{Architecture, ScalingVector};
use sea_taskgraph::{ExecutionMode, TaskGraphSoa};

/// Relative slack multiplied into the raw bound before it is compared
/// against anything: the analytic bound and the scheduler accumulate
/// rounding differently, and a bound used for *pruning* must never
/// exceed an achievable makespan. One part in 10⁹ dwarfs any plausible
/// accumulated `f64` rounding at the paper's problem sizes while being
/// far too small to mask a genuinely feasible design.
pub const BOUND_SLACK: f64 = 1.0 - 1e-9;

/// A provable lower bound (in seconds) on `TM` over **all** mappings of
/// the application behind `soa` onto `arch` under `scaling`, already
/// multiplied by [`BOUND_SLACK`].
///
/// Comparing `tm_lower_bound(..) > deadline` is therefore a sound
/// infeasibility test: when it holds, *no* mapping meets the deadline
/// (`meets_deadline` is `tm_seconds <= deadline`).
///
/// # Panics
///
/// Panics if `scaling` does not cover `arch`'s cores (callers obtain
/// both from the same architecture).
#[must_use]
pub fn tm_lower_bound(
    soa: &TaskGraphSoa,
    mode: ExecutionMode,
    arch: &Architecture,
    scaling: &ScalingVector,
) -> f64 {
    assert_eq!(
        scaling.len(),
        arch.n_cores(),
        "scaling vector does not cover the architecture"
    );
    let mut f_max = 0.0f64;
    let mut f_sum = 0.0f64;
    for core in arch.cores() {
        let f = arch.effective_frequency(core, scaling);
        f_max = f_max.max(f);
        f_sum += f;
    }
    if f_max <= 0.0 || soa.is_empty() {
        return 0.0;
    }

    let raw = match mode {
        ExecutionMode::Batch => (soa.comp_critical_path() / f_max).max(soa.total_wcec() / f_sum),
        ExecutionMode::Pipelined { iterations } => {
            let scale = 1.0 / f64::from(iterations);
            // Steady state: the busiest core bounds throughput. Its
            // per-iteration busy time is at least the mean work per
            // capacity, and at least the heaviest task at top speed.
            let period_lb = (soa.total_wcec() * scale / f_sum).max(soa.max_wcec() * scale / f_max);
            // Fill pass: a batch pass at scale 1/I; its makespan also
            // dominates every busy time, hence the period bound.
            let fill_lb = (soa.comp_critical_path() * scale / f_max).max(period_lb);
            fill_lb + f64::from(iterations - 1) * period_lb
        }
    };
    raw * BOUND_SLACK
}

/// The process-wide default for bound-based scaling pruning: enabled
/// unless the `SEA_PRUNE` environment variable is set to `0` (the
/// verification mode — doomed chunks are searched anyway and asserted
/// infeasible, mirroring `SEA_INCREMENTAL=0`).
#[must_use]
pub fn prune_default() -> bool {
    std::env::var("SEA_PRUNE").map_or(true, |v| v.trim() != "0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::LevelSet;
    use sea_taskgraph::{fig8, mpeg2, Application};

    use crate::mapping::Mapping;
    use crate::metrics::EvalContext;

    /// Uniform vectors at every level plus a few mixed ones.
    fn some_scalings(arch: &Architecture) -> Vec<ScalingVector> {
        let n = arch.n_cores();
        let levels = arch.levels().len() as u8;
        let mut out: Vec<ScalingVector> = (1..=levels)
            .map(|s| ScalingVector::uniform(s, arch).unwrap())
            .collect();
        let mixed: Vec<u8> = (0..n).map(|i| 1 + (i as u8) % levels).collect();
        out.push(ScalingVector::try_new(mixed, arch).unwrap());
        out
    }

    fn check_bound_under(app: &Application, arch: &Architecture, mappings: &[Mapping]) {
        let soa = TaskGraphSoa::new(app);
        let ctx = EvalContext::new(app, arch);
        for s in some_scalings(arch) {
            let lb = tm_lower_bound(&soa, app.mode(), arch, &s);
            for m in mappings {
                let tm = ctx.evaluate(m, &s).unwrap().tm_seconds;
                assert!(
                    lb <= tm,
                    "bound {lb} exceeds achieved TM {tm} at scaling {s}"
                );
            }
        }
    }

    fn round_robin(n_tasks: usize, n_cores: usize) -> Mapping {
        Mapping::try_new(
            (0..n_tasks)
                .map(|i| sea_arch::CoreId::new(i % n_cores))
                .collect(),
            n_cores,
        )
        .unwrap()
    }

    fn serial(n_tasks: usize, n_cores: usize) -> Mapping {
        Mapping::try_new(
            (0..n_tasks).map(|_| sea_arch::CoreId::new(0)).collect(),
            n_cores,
        )
        .unwrap()
    }

    #[test]
    fn bound_below_every_mpeg2_mapping() {
        let app = mpeg2::application();
        let n = app.graph().len();
        for arch in [
            Architecture::homogeneous(4, LevelSet::arm7_three_level()),
            Architecture::arm7_calibrated(4, LevelSet::arm7_four_level()),
        ] {
            check_bound_under(&app, &arch, &[round_robin(n, 4), serial(n, 4)]);
        }
    }

    #[test]
    fn bound_below_every_fig8_mapping() {
        let app = fig8::application();
        let n = app.graph().len();
        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        check_bound_under(&app, &arch, &[round_robin(n, 3), serial(n, 3)]);
    }

    #[test]
    fn bound_is_positive_and_monotone_in_scaling_depth() {
        // Scaling every core deeper slows every frequency, so the bound
        // cannot shrink.
        let app = mpeg2::application();
        let soa = TaskGraphSoa::new(&app);
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let mut last = 0.0f64;
        for s in 1..=3u8 {
            let sv = ScalingVector::uniform(s, &arch).unwrap();
            let lb = tm_lower_bound(&soa, app.mode(), &arch, &sv);
            assert!(lb > 0.0);
            assert!(lb >= last, "bound fell from {last} to {lb} at s={s}");
            last = lb;
        }
    }

    #[test]
    fn pipelined_bound_below_pipelined_makespan() {
        // mpeg2 is pipelined; also check a deeper iteration count by
        // rebuilding the application in batch mode for contrast.
        let app = mpeg2::application();
        assert!(matches!(app.mode(), ExecutionMode::Pipelined { .. }));
        let arch = Architecture::arm7_calibrated(4, LevelSet::arm7_three_level());
        let n = app.graph().len();
        check_bound_under(&app, &arch, &[round_robin(n, 4), serial(n, 4)]);
    }
}
