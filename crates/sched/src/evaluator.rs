//! Scratch-buffer evaluation of `(mapping, scaling)` design points.
//!
//! [`EvalContext::evaluate`] allocates a fresh ready list, per-core lanes,
//! frequency table and per-core breakdown for every call — fine for a
//! handful of evaluations, ruinous for an annealer that evaluates tens of
//! thousands of candidates per voltage scaling. [`Evaluator`] wraps a
//! context together with reusable buffers so that, after the first call,
//! scheduling and evaluating a candidate performs **zero steady-state heap
//! allocation**: lanes keep their capacity, the register-block mask and
//! activity table are reset in place, and the graph's bottom levels (which
//! never change) are computed once.
//!
//! [`Evaluator::evaluate`] returns the `Copy` [`EvalSummary`] rather than a
//! full [`MappingEvaluation`]; the scalar fields are computed with the same
//! operation order as [`EvalContext::evaluate`], so the two paths agree
//! bitwise — a search driven by summaries reaches exactly the decisions the
//! allocating path would. [`Evaluator::evaluate_full`] produces the full
//! per-core breakdown (off the hot path, e.g. for the returned best design).

use std::sync::Arc;

use sea_arch::power::{dynamic_power_w, watts_to_mw, CoreActivity};
use sea_arch::ScalingVector;
use sea_taskgraph::units::Bits;
use sea_taskgraph::{ExecutionMode, TaskGraphSoa};

use crate::mapping::Mapping;
use crate::metrics::{core_scalars, EvalContext, EvalSummary, MappingEvaluation};
use crate::schedule::{check_shapes, schedule_one_pass_into, ScheduleScratch};
use crate::SchedError;

/// Reusable evaluation engine for one `(application, architecture)` pair.
///
/// Construction sizes every scratch buffer from the application and
/// architecture shapes, so even the **first** [`Evaluator::evaluate`]
/// performs no heap allocation. The evaluator is cheap enough to create
/// per worker thread — each thread of a parallel search owns one.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    ctx: EvalContext<'a>,
    /// Structure-of-arrays graph view (bottom levels, CSR adjacency and
    /// the static schedule order), fixed for the application.
    soa: Arc<TaskGraphSoa>,
    sched: ScheduleScratch,
    /// Register-block occupancy mask, reset per core per evaluation.
    block_mask: Vec<bool>,
    activities: Vec<CoreActivity>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator around a context, building the graph's
    /// structure-of-arrays view and sizing the scratch buffers.
    #[must_use]
    pub fn new(ctx: EvalContext<'a>) -> Self {
        let soa = Arc::new(TaskGraphSoa::new(ctx.app()));
        Self::with_soa(ctx, soa)
    }

    /// Creates an evaluator around a pre-built (typically
    /// [`TaskGraphSoa::shared`]-memoized) graph view, skipping the
    /// per-evaluator rebuild when many workers share one application.
    #[must_use]
    pub fn with_soa(ctx: EvalContext<'a>, soa: Arc<TaskGraphSoa>) -> Self {
        debug_assert_eq!(
            soa.len(),
            ctx.app().graph().len(),
            "SoA/application mismatch"
        );
        let n_blocks = ctx.app().registers().blocks().len();
        let n_cores = ctx.arch().n_cores();
        let sched = ScheduleScratch::with_shapes(soa.len(), n_cores);
        Evaluator {
            ctx,
            soa,
            sched,
            block_mask: vec![false; n_blocks],
            activities: Vec::with_capacity(n_cores),
        }
    }

    /// The wrapped evaluation context.
    #[must_use]
    pub fn ctx(&self) -> &EvalContext<'a> {
        &self.ctx
    }

    /// The structure-of-arrays graph view this evaluator schedules from.
    #[must_use]
    pub fn soa(&self) -> &Arc<TaskGraphSoa> {
        &self.soa
    }

    /// Evaluates a design point into a [`EvalSummary`] without steady-state
    /// heap allocation. Numerically identical to
    /// `EvalContext::evaluate(..)` followed by [`MappingEvaluation::summary`].
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError::ShapeMismatch`] for inconsistent shapes.
    pub fn evaluate(
        &mut self,
        mapping: &Mapping,
        scaling: &ScalingVector,
    ) -> Result<EvalSummary, SchedError> {
        let app = self.ctx.app();
        let arch = self.ctx.arch();
        check_shapes(app, arch, mapping, scaling)?;
        let ser = *self.ctx.ser();
        let exposure = self.ctx.exposure();

        let iterations = app.mode().iterations();
        let scale = 1.0 / f64::from(iterations);
        let fill_makespan =
            schedule_one_pass_into(arch, mapping, scaling, scale, &self.soa, &mut self.sched);
        // Mirror `list_schedule`'s pipelined adjustment: throughput is
        // bounded by the busiest core, and whole-run busy time scales with
        // the iteration count.
        let (tm, iter_mult) = match app.mode() {
            ExecutionMode::Batch => (fill_makespan, 1.0),
            ExecutionMode::Pipelined { iterations } => {
                let period = self.sched.busy.iter().fold(0.0f64, |acc, &b| acc.max(b));
                (
                    fill_makespan + period * f64::from(iterations - 1),
                    f64::from(iterations),
                )
            }
        };

        let registers = app.registers();
        self.activities.clear();
        let mut gamma = 0.0f64;
        let mut r_total = Bits::ZERO;
        for core in arch.cores() {
            let level = arch.operating_point(core, scaling);
            let busy = self.sched.busy[core.index()] * iter_mult;
            // Union of the mapped tasks' register blocks via the reusable
            // mask (same additions, hence the same Bits total, as
            // `union_bits` without its per-call allocation).
            self.block_mask.fill(false);
            let mut r_bits = Bits::ZERO;
            for t in mapping.tasks_on_iter(core) {
                r_bits += registers.union_add(&mut self.block_mask, t);
            }
            let s = core_scalars(level, busy, tm, r_bits, exposure, &ser);
            gamma += s.gamma;
            r_total += r_bits;
            self.activities.push(CoreActivity {
                alpha: s.alpha,
                level,
            });
        }

        let power_mw = watts_to_mw(dynamic_power_w(arch.c_load_farads(), &self.activities));
        let nominal_f = arch.levels().level(1).f_hz;
        Ok(EvalSummary {
            tm_seconds: tm,
            tm_nominal_cycles: tm * nominal_f,
            meets_deadline: tm <= app.deadline_s(),
            power_mw,
            gamma,
            r_total,
        })
    }

    /// Full evaluation with the per-core breakdown, via the allocating
    /// [`EvalContext::evaluate`] path (use off the hot loop, e.g. for the
    /// final best design).
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError::ShapeMismatch`] for inconsistent shapes.
    pub fn evaluate_full(
        &self,
        mapping: &Mapping,
        scaling: &ScalingVector,
    ) -> Result<MappingEvaluation, SchedError> {
        self.ctx.evaluate(mapping, scaling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_arch::{Architecture, LevelSet};
    use sea_taskgraph::generator::RandomGraphConfig;
    use sea_taskgraph::{fig8, mpeg2, Application};

    fn assert_summary_matches_context(app: &Application, cores: usize) {
        let arch = Architecture::homogeneous(cores, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(app, &arch);
        let mut ev = Evaluator::new(ctx.clone());
        let n = app.graph().len();
        // A few deterministic mappings across a few scalings.
        for seed in 0..4usize {
            let assign: Vec<sea_arch::CoreId> = (0..n)
                .map(|t| sea_arch::CoreId::new((t * 7 + seed) % cores))
                .collect();
            let mapping = Mapping::try_new(assign, cores).unwrap();
            for s in [
                ScalingVector::all_nominal(&arch),
                ScalingVector::all_lowest(&arch),
                ScalingVector::uniform(2, &arch).unwrap(),
            ] {
                let full = ctx.evaluate(&mapping, &s).unwrap().summary();
                let fast = ev.evaluate(&mapping, &s).unwrap();
                assert_eq!(full.tm_seconds.to_bits(), fast.tm_seconds.to_bits());
                assert_eq!(full.gamma.to_bits(), fast.gamma.to_bits());
                assert_eq!(full.power_mw.to_bits(), fast.power_mw.to_bits());
                assert_eq!(full, fast);
            }
        }
    }

    #[test]
    fn summary_bitwise_identical_to_context_on_mpeg2() {
        assert_summary_matches_context(&mpeg2::application(), 4);
    }

    #[test]
    fn summary_bitwise_identical_to_context_on_fig8() {
        assert_summary_matches_context(&fig8::application(), 3);
    }

    #[test]
    fn summary_bitwise_identical_to_context_on_random_batch_graph() {
        let app = RandomGraphConfig::paper(25).generate(9).unwrap();
        assert_summary_matches_context(&app, 3);
    }

    #[test]
    fn shape_mismatch_propagates() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let mut ev = Evaluator::new(EvalContext::new(&app, &arch));
        let bad = Mapping::all_on_one_core(app.graph().len(), 3);
        let s = ScalingVector::all_nominal(&arch);
        assert!(matches!(
            ev.evaluate(&bad, &s).unwrap_err(),
            SchedError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn evaluate_full_agrees_with_summary() {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let mut ev = Evaluator::new(EvalContext::new(&app, &arch));
        let m = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
        let s = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let summary = ev.evaluate(&m, &s).unwrap();
        let full = ev.evaluate_full(&m, &s).unwrap();
        assert_eq!(full.summary(), summary);
    }
}
