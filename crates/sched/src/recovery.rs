//! Recovery-aware analysis: what the expected SEU count means for a design
//! that *reacts* to upsets.
//!
//! The paper optimizes the raw number of SEUs experienced; its related
//! work (refs. \[5\]–\[8\]: time/information redundancy, re-execution,
//! checkpointing) supplies the standard recovery mechanisms layered on
//! top. This module closes that loop analytically: given a design's
//! evaluation (per-core `Γ_i`, busy times, utilization) and a
//! [`RecoveryPolicy`], it derives the expected recovery overhead and
//! whether the real-time constraint still holds *with* recovery — so the
//! optimizer's Γ reduction translates directly into reclaimed deadline
//! slack.
//!
//! The model is intentionally first-order (expected values, no queueing):
//!
//! * **Re-execution** — every *detected* upset that lands during a task's
//!   execution re-runs the affected task; the expected cost per event is
//!   the utilization-weighted mean task duration on the core.
//! * **Checkpointing** — state is saved every `interval_s`; a detected
//!   upset rolls back half an interval on average, plus the checkpoint
//!   save overhead accrued over the run (Zhang & Chakrabarty, ref. \[7\]).
//! * Undetected upsets (coverage < 1) remain as residual Γ — the quantity
//!   the paper's optimization minimizes.

use serde::{Deserialize, Serialize};

use crate::metrics::MappingEvaluation;

/// How the system responds to a detected SEU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// No recovery: every experienced SEU is a potential failure.
    None,
    /// Re-execute the task that was running when the upset struck.
    ReExecution {
        /// Fraction of upsets that are detected, `0..=1`.
        detection_coverage: f64,
    },
    /// Periodic checkpointing with rollback.
    Checkpointing {
        /// Fraction of upsets that are detected, `0..=1`.
        detection_coverage: f64,
        /// Checkpoint interval in seconds.
        interval_s: f64,
        /// Time to save one checkpoint, in seconds.
        save_cost_s: f64,
    },
}

impl RecoveryPolicy {
    /// Detection coverage of the policy (0 for [`RecoveryPolicy::None`]).
    #[must_use]
    pub fn detection_coverage(&self) -> f64 {
        match *self {
            RecoveryPolicy::None => 0.0,
            RecoveryPolicy::ReExecution { detection_coverage }
            | RecoveryPolicy::Checkpointing {
                detection_coverage, ..
            } => detection_coverage.clamp(0.0, 1.0),
        }
    }
}

/// Outcome of the recovery analysis for one design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Expected number of detected (recovered) upsets.
    pub expected_recoveries: f64,
    /// Expected undetected upsets (residual Γ).
    pub residual_gamma: f64,
    /// Expected total recovery overhead in seconds (re-execution time or
    /// rollback + checkpoint saves).
    pub expected_overhead_s: f64,
    /// `TM` including the expected recovery overhead.
    pub tm_with_recovery_s: f64,
    /// True if the design still meets the deadline with recovery included.
    pub meets_deadline_with_recovery: bool,
}

/// Analyzes a design under a recovery policy.
///
/// The re-executable unit is one task *instance*: in pipelined (streaming)
/// execution each task runs once per iteration (frame), so its mean
/// duration is `busy_s / (tasks_on_core · iterations)`. The caller
/// supplies per-core task counts and the iteration count because the
/// evaluation does not retain the mapping or the execution mode.
///
/// # Panics
///
/// Panics if `task_counts` does not match the evaluation's core count, if
/// `iterations` is zero, or if a checkpoint interval is not positive.
#[must_use]
pub fn analyze(
    eval: &MappingEvaluation,
    task_counts: &[usize],
    iterations: u32,
    deadline_s: f64,
    policy: RecoveryPolicy,
) -> RecoveryReport {
    assert_eq!(
        task_counts.len(),
        eval.per_core.len(),
        "task counts must cover every core"
    );
    assert!(iterations > 0, "iterations must be at least 1");
    let coverage = policy.detection_coverage();
    let detected: f64 = eval.gamma * coverage;
    let residual = eval.gamma - detected;

    let overhead = match policy {
        RecoveryPolicy::None => 0.0,
        RecoveryPolicy::ReExecution { .. } => {
            // Per core: detected events on that core × mean duration of one
            // task instance on that core.
            eval.per_core
                .iter()
                .zip(task_counts)
                .map(|(core, &n)| {
                    if n == 0 || core.busy_s <= 0.0 {
                        return 0.0;
                    }
                    let instances = n as f64 * f64::from(iterations);
                    let mean_instance_s = core.busy_s / instances;
                    core.gamma * coverage * mean_instance_s
                })
                .sum()
        }
        RecoveryPolicy::Checkpointing {
            interval_s,
            save_cost_s,
            ..
        } => {
            assert!(interval_s > 0.0, "checkpoint interval must be positive");
            // Rollback: half an interval per detected event; saves: one per
            // interval of busy time on every core.
            let rollback = detected * interval_s / 2.0;
            let saves: f64 = eval
                .per_core
                .iter()
                .map(|core| (core.busy_s / interval_s).floor() * save_cost_s)
                .sum();
            rollback + saves
        }
    };

    // Recovery work serializes on the struck core; as a first-order bound
    // we charge it all to the makespan.
    let tm_with_recovery = eval.tm_seconds + overhead;
    RecoveryReport {
        expected_recoveries: detected,
        residual_gamma: residual,
        expected_overhead_s: overhead,
        tm_with_recovery_s: tm_with_recovery,
        meets_deadline_with_recovery: tm_with_recovery <= deadline_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;
    use crate::metrics::EvalContext;
    use sea_arch::{Architecture, LevelSet, ScalingVector, SerModel};
    use sea_taskgraph::mpeg2;

    fn design(ser: f64) -> (MappingEvaluation, Vec<usize>, f64) {
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let mapping =
            Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
        let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let eval = EvalContext::new(&app, &arch)
            .with_ser(SerModel::calibrated(ser))
            .evaluate(&mapping, &scaling)
            .unwrap();
        let counts: Vec<usize> = mapping.groups().iter().map(Vec::len).collect();
        (eval, counts, app.deadline_s())
    }

    #[test]
    fn none_policy_passes_gamma_through() {
        let (eval, counts, deadline) = design(1e-9);
        let r = analyze(&eval, &counts, 437, deadline, RecoveryPolicy::None);
        assert_eq!(r.expected_recoveries, 0.0);
        assert_eq!(r.residual_gamma, eval.gamma);
        assert_eq!(r.expected_overhead_s, 0.0);
        assert_eq!(r.tm_with_recovery_s, eval.tm_seconds);
    }

    #[test]
    fn full_coverage_removes_residual() {
        let (eval, counts, deadline) = design(1e-15);
        let r = analyze(
            &eval,
            &counts,
            437,
            deadline,
            RecoveryPolicy::ReExecution {
                detection_coverage: 1.0,
            },
        );
        assert!(r.residual_gamma.abs() < 1e-12);
        assert!((r.expected_recoveries - eval.gamma).abs() < 1e-12);
        assert!(r.expected_overhead_s > 0.0);
    }

    #[test]
    fn partial_coverage_splits_gamma() {
        let (eval, counts, deadline) = design(1e-12);
        let r = analyze(
            &eval,
            &counts,
            437,
            deadline,
            RecoveryPolicy::ReExecution {
                detection_coverage: 0.8,
            },
        );
        assert!((r.expected_recoveries - 0.8 * eval.gamma).abs() < 1e-9);
        assert!((r.residual_gamma - 0.2 * eval.gamma).abs() < 1e-9);
    }

    #[test]
    fn rare_upsets_keep_deadline_frequent_ones_break_it() {
        // At a realistic (low) SER the recovery overhead is negligible.
        let (eval, counts, deadline) = design(1e-15);
        let r = analyze(
            &eval,
            &counts,
            437,
            deadline,
            RecoveryPolicy::ReExecution {
                detection_coverage: 1.0,
            },
        );
        assert!(r.meets_deadline_with_recovery);
        // At the paper's (accelerated) SER the decoder cannot re-execute
        // its way out: hundreds of thousands of expected upsets.
        let (eval, counts, deadline) = design(1e-9);
        let r = analyze(
            &eval,
            &counts,
            437,
            deadline,
            RecoveryPolicy::ReExecution {
                detection_coverage: 1.0,
            },
        );
        assert!(!r.meets_deadline_with_recovery);
    }

    #[test]
    fn lower_gamma_design_has_lower_recovery_overhead() {
        // The whole point of the paper: fewer SEUs => cheaper recovery.
        let app = mpeg2::application();
        let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
        let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
        let ctx = EvalContext::new(&app, &arch).with_ser(SerModel::calibrated(1e-12));
        let localized =
            Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
        let distributed =
            Mapping::from_groups(&[&[0, 4, 8], &[1, 5, 9], &[2, 6, 10], &[3, 7]], 4).unwrap();
        let e1 = ctx.evaluate(&localized, &scaling).unwrap();
        let e2 = ctx.evaluate(&distributed, &scaling).unwrap();
        let policy = RecoveryPolicy::ReExecution {
            detection_coverage: 1.0,
        };
        let c1: Vec<usize> = localized.groups().iter().map(Vec::len).collect();
        let c2: Vec<usize> = distributed.groups().iter().map(Vec::len).collect();
        let r1 = analyze(&e1, &c1, 437, app.deadline_s(), policy);
        let r2 = analyze(&e2, &c2, 437, app.deadline_s(), policy);
        if e1.gamma < e2.gamma {
            assert!(r1.expected_recoveries < r2.expected_recoveries);
        } else {
            assert!(r2.expected_recoveries <= r1.expected_recoveries);
        }
    }

    #[test]
    fn checkpointing_charges_saves_and_rollbacks() {
        let (eval, counts, deadline) = design(1e-13);
        let r = analyze(
            &eval,
            &counts,
            437,
            deadline,
            RecoveryPolicy::Checkpointing {
                detection_coverage: 1.0,
                interval_s: 0.1,
                save_cost_s: 1e-4,
            },
        );
        // Saves alone: busy seconds / 0.1 per core at 0.1 ms each.
        let min_saves: f64 = eval
            .per_core
            .iter()
            .map(|c| (c.busy_s / 0.1).floor() * 1e-4)
            .sum();
        assert!(r.expected_overhead_s >= min_saves);
        assert!(r.meets_deadline_with_recovery);
    }

    #[test]
    fn shorter_checkpoint_interval_trades_saves_for_rollback() {
        let (eval, counts, deadline) = design(1e-11);
        let coarse = analyze(
            &eval,
            &counts,
            437,
            deadline,
            RecoveryPolicy::Checkpointing {
                detection_coverage: 1.0,
                interval_s: 1.0,
                save_cost_s: 1e-4,
            },
        );
        let fine = analyze(
            &eval,
            &counts,
            437,
            deadline,
            RecoveryPolicy::Checkpointing {
                detection_coverage: 1.0,
                interval_s: 0.01,
                save_cost_s: 1e-4,
            },
        );
        // Fine intervals roll back less per event.
        let rollback = |r: &RecoveryReport, interval: f64| r.expected_recoveries * interval / 2.0;
        assert!(rollback(&fine, 0.01) < rollback(&coarse, 1.0));
    }

    #[test]
    #[should_panic(expected = "task counts")]
    fn mismatched_task_counts_panic() {
        let (eval, _, deadline) = design(1e-9);
        let _ = analyze(&eval, &[1, 2], 437, deadline, RecoveryPolicy::None);
    }
}
