//! Shared helpers for the per-table/per-figure Criterion benches.
//!
//! Every bench in `benches/` regenerates one artefact of the paper — it
//! prints the reproduced rows/series once (so `cargo bench` output doubles
//! as a reproduction log) and then measures the runtime of the underlying
//! computation at the smoke effort level.

use criterion::Criterion;

/// Criterion configuration for the experiment benches: small sample counts
/// because a single iteration already runs a full (smoke-budget) design
/// space exploration.
#[must_use]
pub fn experiment_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

/// Criterion configuration for micro-kernels (schedulers, samplers).
#[must_use]
pub fn kernel_criterion() -> Criterion {
    Criterion::default()
        .sample_size(50)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1))
}
