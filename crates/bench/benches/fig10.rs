//! Bench + regeneration of Fig. 10: Exp:3 vs Exp:4 across core counts.

use criterion::{criterion_group, criterion_main, Criterion};
use sea_experiments::{fig10, EffortProfile};
use sea_taskgraph::generator::RandomGraphConfig;

fn bench_fig10(c: &mut Criterion) {
    let seed = EffortProfile::Smoke.seed();
    let app60 = RandomGraphConfig::paper(60).generate(seed).expect("valid");
    let fig = fig10::run_on(&app60, &[2, 3, 4, 5, 6], EffortProfile::Smoke).expect("Fig. 10");
    eprintln!("\n{}", fig.to_table().to_ascii());
    eprintln!(
        "[fig10] proposed Gamma win rate vs Exp:3: {:.0}%",
        fig.proposed_win_rate() * 100.0
    );

    let app30 = RandomGraphConfig::paper(30).generate(seed).expect("valid");
    c.bench_function("fig10/30_tasks_3_to_4_cores", |b| {
        b.iter(|| fig10::run_on(&app30, &[3, 4], EffortProfile::Smoke).expect("Fig. 10"));
    });
}

criterion_group! {
    name = benches;
    config = sea_bench::experiment_criterion();
    targets = bench_fig10
}
criterion_main!(benches);
