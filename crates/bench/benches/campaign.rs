//! Campaign-engine benches: scheduling overhead of the shared worker
//! pool versus a bare sequential loop over the same units.
//!
//! At `jobs = 1` the pool takes the no-thread path (a plain loop plus
//! per-unit record construction and sink calls), so its units/sec should
//! track the direct loop within ~2 % — the pool must be free when it
//! cannot help. At `jobs > 1` on a multi-core host the same unit list
//! fans out across scenarios; on a single-core container the parallel
//! path only demonstrates bounded overhead.

use std::time::Instant;

use criterion::{black_box, Criterion};
use sea_campaign::{parse_campaign, run_unit, run_units, NullSink};

/// Many cheap units: random-mapping sweeps are pure evaluation (no
/// annealing), so the per-unit work is small and fixed — the right
/// regime for measuring scheduling overhead rather than search time.
const SPEC: &str = "\
name = \"bench\"
budget = \"fast\"

[scenario]
name = \"sweeps\"
kind = \"sweep\"
apps = \"mpeg2, fig8, random:20, random:30\"
cores = \"2,3,4\"
count = 6
scales = \"1,2\"
seeds = \"42\"
";

fn main() {
    let units = parse_campaign(SPEC).expect("well-formed spec").expand();
    eprintln!("\n[campaign] {} sweep units per run", units.len());

    let mut c = Criterion::default().sample_size(20);
    c.bench_function("campaign/sequential direct loop", |b| {
        b.iter(|| {
            let results: Vec<_> = units
                .iter()
                .map(|u| run_unit(u).expect("unit runs"))
                .collect();
            black_box(results.len())
        })
    });
    c.bench_function("campaign/pool jobs=1", |b| {
        b.iter(|| {
            let results = run_units(&units, 1, &mut NullSink).expect("campaign runs");
            black_box(results.len())
        })
    });
    c.bench_function("campaign/pool jobs=4", |b| {
        b.iter(|| {
            let results = run_units(&units, 4, &mut NullSink).expect("campaign runs");
            black_box(results.len())
        })
    });

    // Direct overhead check (the <2 % target at jobs = 1): one warm
    // timing pass per path over the identical unit list.
    let samples = 10;
    let time = |f: &dyn Fn() -> usize| {
        let t0 = Instant::now();
        for _ in 0..samples {
            black_box(f());
        }
        t0.elapsed().as_secs_f64() / f64::from(samples)
    };
    let direct = time(&|| {
        let mut done = 0usize;
        for unit in &units {
            black_box(run_unit(unit).expect("unit runs"));
            done += 1;
        }
        done
    });
    let pooled = time(&|| {
        run_units(&units, 1, &mut NullSink)
            .expect("campaign runs")
            .len()
    });
    eprintln!(
        "[campaign] direct {:.3} ms/run, pool(jobs=1) {:.3} ms/run, overhead {:+.2}%",
        direct * 1e3,
        pooled * 1e3,
        (pooled / direct - 1.0) * 100.0
    );
}
