//! Bench + regeneration of Table III: the proposed flow across
//! architecture allocations and applications.
//!
//! The measured body uses the MPEG-2 row over 2–4 cores; the full printed
//! artefact additionally covers a 20- and a 40-task random workload so the
//! bench log shows the published trends without multi-minute runtimes.
//! (`cargo run --release -p sea-experiments --bin reproduce paper`
//! regenerates the complete six-workload table.)

use criterion::{criterion_group, criterion_main, Criterion};
use sea_experiments::{table3, EffortProfile};
use sea_taskgraph::generator::RandomGraphConfig;
use sea_taskgraph::mpeg2;

fn bench_table3(c: &mut Criterion) {
    let seed = EffortProfile::Smoke.seed();
    let mut workloads = vec![("MPEG-2".to_string(), mpeg2::application())];
    for n in [20usize, 40] {
        workloads.push((
            format!("{n} tasks"),
            RandomGraphConfig::paper(n).generate(seed).expect("valid"),
        ));
    }
    let t3 = table3::run_on(&workloads, &[2, 3, 4, 5, 6], EffortProfile::Smoke).expect("Table III");
    eprintln!("\n{}", t3.to_table().to_ascii());
    for (label, monotone, total) in t3.gamma_monotonicity() {
        eprintln!("[table3] Gamma growth [{label}]: {monotone}/{total} steps monotone");
    }

    let mpeg_only = vec![("MPEG-2".to_string(), mpeg2::application())];
    c.bench_function("table3/mpeg2_2_to_4_cores", |b| {
        b.iter(|| table3::run_on(&mpeg_only, &[2, 3, 4], EffortProfile::Smoke).expect("row"));
    });
}

criterion_group! {
    name = benches;
    config = sea_bench::experiment_criterion();
    targets = bench_table3
}
criterion_main!(benches);
