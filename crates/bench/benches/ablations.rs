//! Ablation benches: exposure policy, seed contribution, SER sensitivity,
//! Monte-Carlo validation.

use criterion::{criterion_group, criterion_main, Criterion};
use sea_experiments::ablations::{
    exposure_ablation, mc_validation, reference_design, seed_ablation, ser_sensitivity,
};
use sea_opt::SearchBudget;

fn bench_ablations(c: &mut Criterion) {
    let (app, arch, mapping, scaling) = reference_design();

    let exp = exposure_ablation(&app, &arch, &mapping, &scaling).expect("exposure");
    eprintln!(
        "\n[ablations] exposure: whole-run Gamma = {:.3e}, busy-only = {:.3e} ({:.0}%)",
        exp.gamma_whole_run,
        exp.gamma_busy_only,
        exp.gamma_busy_only / exp.gamma_whole_run * 100.0
    );

    let seed_ab = seed_ablation(
        &app,
        &arch,
        &scaling,
        SearchBudget {
            max_evaluations: 1_000,
            max_stale_sweeps: 2,
            time_limit: None,
        },
        9,
    )
    .expect("seed ablation");
    eprintln!(
        "[ablations] seed: SEA -> {:.3e}, balanced -> {:.3e}, raw SEA seed {:.3e}",
        seed_ab.gamma_from_sea_seed, seed_ab.gamma_from_balanced_seed, seed_ab.gamma_sea_seed_raw
    );

    let sens =
        ser_sensitivity(&app, &arch, &mapping, &scaling, &[1e-10, 1e-9, 1e-8]).expect("SER sweep");
    for (ser, gamma) in &sens {
        eprintln!("[ablations] SER {ser:.0e} -> Gamma {gamma:.3e}");
    }

    let rows = mc_validation(
        &app,
        &[("Exp:4".into(), mapping.clone(), scaling.clone())],
        13,
    )
    .expect("MC validation");
    eprintln!(
        "[ablations] MC: simulated {} vs analytic {:.3e} ({:.2}% dev)",
        rows[0].experienced,
        rows[0].gamma_analytic,
        rows[0].rel_deviation * 100.0
    );

    c.bench_function("ablations/exposure_pair", |b| {
        b.iter(|| exposure_ablation(&app, &arch, &mapping, &scaling).expect("exposure"));
    });
    c.bench_function("ablations/mc_injection_run", |b| {
        b.iter(|| {
            mc_validation(
                &app,
                &[("Exp:4".into(), mapping.clone(), scaling.clone())],
                13,
            )
            .expect("MC")
        });
    });
}

criterion_group! {
    name = benches;
    config = sea_bench::experiment_criterion();
    targets = bench_ablations
}
criterion_main!(benches);
