//! Bench + regeneration of Fig. 9: matched-scaling comparison of the
//! baselines against the proposed design.

use criterion::{criterion_group, criterion_main, Criterion};
use sea_experiments::{fig9, table2, EffortProfile};

fn bench_fig9(c: &mut Criterion) {
    let t2 = table2::run(EffortProfile::Smoke, 4).expect("Table II");
    let f9 = fig9::from_table2(&t2).expect("Fig. 9");
    eprintln!("\n{}", f9.to_table().to_ascii());

    c.bench_function("fig9/matched_scaling_comparison", |b| {
        b.iter(|| fig9::from_table2(&t2).expect("Fig. 9"));
    });
}

criterion_group! {
    name = benches;
    config = sea_bench::experiment_criterion();
    targets = bench_fig9
}
criterion_main!(benches);
