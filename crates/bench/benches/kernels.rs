//! Micro-benchmarks of the hot kernels underlying every experiment: list
//! scheduling, design-point evaluation, SEU injection sampling, the DES
//! engine and the scaling enumeration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sea_arch::{Architecture, LevelSet, ScalingVector};
use sea_opt::ScalingIter;
use sea_sched::metrics::EvalContext;
use sea_sched::Mapping;
use sea_sim::{simulate_execution, SimConfig};
use sea_taskgraph::generator::RandomGraphConfig;
use sea_taskgraph::mpeg2;

fn bench_kernels(c: &mut Criterion) {
    let app = mpeg2::application();
    let arch = Architecture::arm7_calibrated(4, LevelSet::arm7_three_level());
    let ctx = EvalContext::new(&app, &arch);
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();

    c.bench_function("kernels/list_schedule_mpeg2", |b| {
        b.iter(|| ctx.schedule(&mapping, &scaling).expect("schedulable"));
    });
    c.bench_function("kernels/evaluate_mpeg2", |b| {
        b.iter(|| ctx.evaluate(&mapping, &scaling).expect("evaluable"));
    });
    c.bench_function("kernels/des_engine_mpeg2_437_frames", |b| {
        b.iter(|| simulate_execution(&app, &arch, &mapping, &scaling).expect("runs"));
    });
    c.bench_function("kernels/fault_injection_mpeg2", |b| {
        let trace = simulate_execution(&app, &arch, &mapping, &scaling).expect("runs");
        let cfg = SimConfig::seeded(7);
        b.iter(|| {
            sea_sim::fault::inject(&app, &arch, &mapping, &scaling, &trace, &cfg).expect("injects")
        });
    });

    // A 100-task random workload: evaluation at scale.
    let big = RandomGraphConfig::paper(100).generate(1).unwrap();
    let arch6 = Architecture::arm7_calibrated(6, LevelSet::arm7_three_level());
    let ctx6 = EvalContext::new(&big, &arch6);
    let mapping6 =
        Mapping::try_new((0..100).map(|i| sea_arch::CoreId::new(i % 6)).collect(), 6).unwrap();
    let scaling6 = ScalingVector::uniform(2, &arch6).unwrap();
    c.bench_function("kernels/evaluate_random100_6cores", |b| {
        b.iter(|| ctx6.evaluate(&mapping6, &scaling6).expect("evaluable"));
    });

    c.bench_function("kernels/scaling_iter_6c_4l", |b| {
        b.iter(|| ScalingIter::new(6, 4).count());
    });

    // The prune test itself: one bound per (scaling, chunk-member); must
    // stay trivial next to even a single schedule call.
    let soa6 = sea_taskgraph::TaskGraphSoa::new(&big);
    c.bench_function("kernels/tm_lower_bound_random100_6cores", |b| {
        b.iter(|| sea_sched::tm_lower_bound(&soa6, big.mode(), &arch6, &scaling6));
    });

    c.bench_function("kernels/poisson_large_mean", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| {
                let mut acc = 0u64;
                for _ in 0..100 {
                    acc += sea_sim::rng::poisson(&mut rng, 2.5e6);
                }
                acc
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = sea_bench::kernel_criterion();
    targets = bench_kernels
}
criterion_main!(benches);
