//! Bench + regeneration of Fig. 11: the voltage-scaling level study.

use criterion::{criterion_group, criterion_main, Criterion};
use sea_experiments::{fig11, EffortProfile};
use sea_taskgraph::generator::RandomGraphConfig;

fn bench_fig11(c: &mut Criterion) {
    let seed = EffortProfile::Smoke.seed();
    let app60 = RandomGraphConfig::paper(60).generate(seed).expect("valid");
    let fig = fig11::run_on(&app60, 6, EffortProfile::Smoke).expect("Fig. 11");
    eprintln!("\n{}", fig.to_table().to_ascii());
    let iso = fig11::level_isolation(&app60, 6, EffortProfile::Smoke).expect("isolation");
    eprintln!("[fig11] fixed-mapping level isolation (busy-cycle Gamma):");
    for (levels, p, g) in &iso {
        eprintln!("[fig11]   {levels} levels: P = {p:.2} mW, Gamma = {g:.3e}");
    }

    let app24 = RandomGraphConfig::paper(24).generate(seed).expect("valid");
    c.bench_function("fig11/24_tasks_3_cores_3_level_sets", |b| {
        b.iter(|| fig11::run_on(&app24, 3, EffortProfile::Smoke).expect("Fig. 11"));
    });
}

criterion_group! {
    name = benches;
    config = sea_bench::experiment_criterion();
    targets = bench_fig11
}
criterion_main!(benches);
