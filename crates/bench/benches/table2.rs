//! Bench + regeneration of Table II: the four-experiment comparison on the
//! four-core MPEG-2 decoder.

use criterion::{criterion_group, criterion_main, Criterion};
use sea_experiments::{table2, EffortProfile};

fn bench_table2(c: &mut Criterion) {
    let t2 = table2::run(EffortProfile::Smoke, 4).expect("Table II");
    eprintln!("\n{}", t2.to_table().to_ascii());
    let violations = t2.shape_violations();
    eprintln!("[table2] shape violations: {violations:?}");

    c.bench_function("table2/four_experiments_smoke", |b| {
        b.iter(|| table2::run(EffortProfile::Smoke, 4).expect("Table II"));
    });
}

criterion_group! {
    name = benches;
    config = sea_bench::experiment_criterion();
    targets = bench_table2
}
criterion_main!(benches);
