//! Engine benchmarks for the allocation-free DSE pipeline:
//!
//! * evaluations/second of the seed clone-per-candidate path
//!   (`Mapping::with_move` + `EvalContext::evaluate`) vs. the scratch
//!   [`Evaluator`] with the in-place apply/undo move protocol vs. the
//!   delta-based [`IncrementalEvaluator`] replaying only the affected
//!   schedule suffix;
//! * full-optimizer wall-clock on `OptimizerConfig::paper(4)` / MPEG-2 as
//!   a function of `--jobs` (the outcome is bitwise identical for every
//!   job count, so the ratio is pure speedup).
//!
//! The binary also *asserts* the engine's no-alloc contract before timing
//! anything: a counting global allocator checks that both evaluators,
//! pre-sized at construction, never touch the allocator — from the very
//! first call, not merely at steady state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, Criterion};
use sea_arch::{Architecture, CoreId, LevelSet, ScalingVector};
use sea_opt::{DesignOptimizer, OptimizerConfig, SearchBudget};
use sea_sched::evaluator::Evaluator;
use sea_sched::metrics::EvalContext;
use sea_sched::{IncrementalEvaluator, Mapping};
use sea_taskgraph::generator::RandomGraphConfig;
use sea_taskgraph::mpeg2;

/// Counts allocator entries (alloc/realloc); frees are uncounted — the
/// contract under test is "no new memory", not "no churn".
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let app = mpeg2::application();
    let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
    let ctx = EvalContext::new(&app, &arch);
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
    // One full neighbourhood sweep per sample (the annealer's unit of work).
    let moves = mapping.neighbourhood();

    // No-alloc contract, from call one: scratch construction pre-sizes
    // every buffer from the (app, arch) shapes, so not even the first
    // evaluation may allocate.
    {
        let mut ev = Evaluator::new(ctx.clone());
        let mut m = mapping.clone();
        let before = allocations();
        for &mv in &moves {
            let inverse = m.apply(mv);
            black_box(ev.evaluate(&m, &scaling).unwrap().gamma);
            m.apply(inverse);
        }
        assert_eq!(
            allocations(),
            before,
            "scratch Evaluator allocated during its first neighbourhood sweep"
        );
    }
    {
        let mut ev = IncrementalEvaluator::new(ctx.clone());
        let mut m = mapping.clone();
        let before = allocations();
        ev.prime(&m, &scaling).unwrap();
        for (i, &mv) in moves.iter().enumerate() {
            let inverse = m.apply(mv);
            black_box(ev.evaluate_move(&m, &scaling, mv).unwrap().gamma);
            if i % 3 == 0 {
                ev.accept();
            } else {
                ev.reject();
                m.apply(inverse);
            }
        }
        assert_eq!(
            allocations(),
            before,
            "IncrementalEvaluator allocated during prime or its first sweep"
        );
    }

    let mut c = Criterion::default().sample_size(20);
    c.bench_function("engine/evaluate seed clone-per-candidate", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &mv in &moves {
                let candidate = mapping.with_move(mv);
                acc += ctx.evaluate(&candidate, &scaling).unwrap().gamma;
            }
            black_box(acc)
        })
    });
    c.bench_function("engine/evaluate scratch apply-undo", |b| {
        let mut ev = Evaluator::new(ctx.clone());
        let mut m = mapping.clone();
        b.iter(|| {
            let mut acc = 0.0f64;
            for &mv in &moves {
                let inverse = m.apply(mv);
                acc += ev.evaluate(&m, &scaling).unwrap().gamma;
                m.apply(inverse);
            }
            black_box(acc)
        })
    });
    c.bench_function("engine/evaluate incremental neighbourhood sweep", |b| {
        let mut ev = IncrementalEvaluator::new(ctx.clone());
        let mut m = mapping.clone();
        ev.prime(&m, &scaling).unwrap();
        b.iter(|| {
            let mut acc = 0.0f64;
            for &mv in &moves {
                let inverse = m.apply(mv);
                acc += ev.evaluate_move(&m, &scaling, mv).unwrap().gamma;
                ev.reject();
                m.apply(inverse);
            }
            black_box(acc)
        })
    });

    // The same scratch-vs-delta comparison on a paper §V random workload
    // (100 tasks, 8 cores): the regime ROADMAP's larger design spaces live
    // in. The scratch evaluator pays O(cores × tasks) register-union
    // rescans per candidate on top of the O(tasks) placement pass; the
    // delta path replays only the move's cone of influence and shifts
    // occupancy counts. Dense random graphs cascade (the cone covers
    // ~70 % of the replay window here), so expect ~1.2–1.6× on the sweep
    // average — late-order relocations, whose cones stay narrow, are the
    // ~10× outliers. A deterministic stride keeps the sweep to ~1/16 of
    // the ~5k neighbourhood moves so one sample stays in the tens of
    // milliseconds.
    let app100 = RandomGraphConfig::paper(100)
        .generate(7)
        .expect("paper(100) generates");
    let arch8 = Architecture::homogeneous(8, LevelSet::arm7_three_level());
    let ctx100 = EvalContext::new(&app100, &arch8);
    let scaling8 = ScalingVector::uniform(2, &arch8).unwrap();
    let mapping100 = Mapping::try_new((0..100).map(|t| CoreId::new(t % 8)).collect(), 8).unwrap();
    let moves100: Vec<_> = mapping100.neighbourhood().into_iter().step_by(16).collect();
    let mut c = Criterion::default().sample_size(10);
    c.bench_function("engine/evaluate random100x8 scratch sweep", |b| {
        let mut ev = Evaluator::new(ctx100.clone());
        let mut m = mapping100.clone();
        b.iter(|| {
            let mut acc = 0.0f64;
            for &mv in &moves100 {
                let inverse = m.apply(mv);
                acc += ev.evaluate(&m, &scaling8).unwrap().gamma;
                m.apply(inverse);
            }
            black_box(acc)
        })
    });
    c.bench_function("engine/evaluate random100x8 incremental sweep", |b| {
        let mut ev = IncrementalEvaluator::new(ctx100.clone());
        let mut m = mapping100.clone();
        ev.prime(&m, &scaling8).unwrap();
        b.iter(|| {
            let mut acc = 0.0f64;
            for &mv in &moves100 {
                let inverse = m.apply(mv);
                acc += ev.evaluate_move(&m, &scaling8, mv).unwrap().gamma;
                ev.reject();
                m.apply(inverse);
            }
            black_box(acc)
        })
    });

    // Full-flow scaling: 15 scalings × 60k evaluations (paper budget).
    let mut c = Criterion::default().sample_size(3);
    for jobs in [1, 2, 4, 8] {
        c.bench_function(
            &format!("engine/optimize paper(4) mpeg2 jobs={jobs}"),
            |b| {
                b.iter(|| {
                    let out = DesignOptimizer::new(OptimizerConfig::paper(4).with_jobs(jobs))
                        .optimize(&app)
                        .unwrap();
                    black_box(out.total_evaluations)
                })
            },
        );
    }

    // Bound-and-prune on a deadline-tight mpeg2 (38% of the nominal
    // deadline): 12 of 15 scalings carry a TM lower bound past the
    // deadline, so the pruned run searches only 3. `verify` is the
    // SEA_PRUNE=0 mode, which searches doomed chunks anyway and asserts
    // them infeasible — the ratio of these two benches is the pruning
    // speedup on this workload, with a byte-identical winner.
    let tight = app
        .with_deadline(app.deadline_s() * 0.38)
        .expect("positive deadline");
    let mut c = Criterion::default().sample_size(10);
    for (label, prune) in [("pruned", true), ("verify", false)] {
        c.bench_function(
            &format!("engine/optimize fast(4) mpeg2@d0.38 {label}"),
            |b| {
                b.iter(|| {
                    // The campaign configuration: calibrated platform
                    // overhead (the bound only bites there) at fast budget.
                    let mut config = OptimizerConfig::paper(4).with_jobs(1).with_prune(prune);
                    config.budget = SearchBudget::fast();
                    let out = DesignOptimizer::new(config).optimize(&tight).unwrap();
                    black_box(out.total_evaluations)
                })
            },
        );
    }

    criterion::write_summary(env!("CARGO_CRATE_NAME"));
}
