//! Engine benchmarks for the allocation-free DSE pipeline:
//!
//! * evaluations/second of the seed clone-per-candidate path
//!   (`Mapping::with_move` + `EvalContext::evaluate`) vs. the scratch
//!   [`Evaluator`] with the in-place apply/undo move protocol;
//! * full-optimizer wall-clock on `OptimizerConfig::paper(4)` / MPEG-2 as
//!   a function of `--jobs` (the outcome is bitwise identical for every
//!   job count, so the ratio is pure speedup).

use criterion::{black_box, Criterion};
use sea_arch::{Architecture, LevelSet, ScalingVector};
use sea_opt::{DesignOptimizer, OptimizerConfig};
use sea_sched::evaluator::Evaluator;
use sea_sched::metrics::EvalContext;
use sea_sched::Mapping;
use sea_taskgraph::mpeg2;

fn main() {
    let app = mpeg2::application();
    let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
    let ctx = EvalContext::new(&app, &arch);
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
    // One full neighbourhood sweep per sample (the annealer's unit of work).
    let moves = mapping.neighbourhood();

    let mut c = Criterion::default().sample_size(20);
    c.bench_function("engine/evaluate seed clone-per-candidate", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &mv in &moves {
                let candidate = mapping.with_move(mv);
                acc += ctx.evaluate(&candidate, &scaling).unwrap().gamma;
            }
            black_box(acc)
        })
    });
    c.bench_function("engine/evaluate scratch apply-undo", |b| {
        let mut ev = Evaluator::new(ctx.clone());
        let mut m = mapping.clone();
        b.iter(|| {
            let mut acc = 0.0f64;
            for &mv in &moves {
                let inverse = m.apply(mv);
                acc += ev.evaluate(&m, &scaling).unwrap().gamma;
                m.apply(inverse);
            }
            black_box(acc)
        })
    });

    // Full-flow scaling: 15 scalings × 60k evaluations (paper budget).
    let mut c = Criterion::default().sample_size(3);
    for jobs in [1, 2, 4, 8] {
        c.bench_function(
            &format!("engine/optimize paper(4) mpeg2 jobs={jobs}"),
            |b| {
                b.iter(|| {
                    let out = DesignOptimizer::new(OptimizerConfig::paper(4).with_jobs(jobs))
                        .optimize(&app)
                        .unwrap();
                    black_box(out.total_evaluations)
                })
            },
        );
    }
}
