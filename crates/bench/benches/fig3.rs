//! Bench + regeneration of Fig. 3: the 120-random-mapping study.

use criterion::{criterion_group, criterion_main, Criterion};
use sea_experiments::fig3;

fn bench_fig3(c: &mut Criterion) {
    // Regenerate and print the artefact once.
    let fig = fig3::run(120, 42).expect("Fig. 3 sweep");
    let s = fig.summary();
    eprintln!(
        "\n[fig3] corr(TM,R) = {:+.3}  Gamma s2/s1 = {:.2}x  TM s2/s1 = {:.2}x",
        s.corr_tm_r, s.gamma_ratio, s.tm_ratio
    );
    eprintln!(
        "[fig3] Gamma concavity edges: {:.2}x / {:.2}x over minimum",
        s.gamma_edge_over_min_low, s.gamma_edge_over_min_high
    );

    c.bench_function("fig3/sweep_120_mappings", |b| {
        b.iter(|| fig3::run(120, 42).expect("sweep"));
    });
    c.bench_function("fig3/sweep_30_mappings", |b| {
        b.iter(|| fig3::run(30, 42).expect("sweep"));
    });
}

criterion_group! {
    name = benches;
    config = sea_bench::experiment_criterion();
    targets = bench_fig3
}
criterion_main!(benches);
