//! Client verbs for the daemon: submit, watch, status, cancel, stop.
//!
//! Every verb opens one connection, sends one client frame (whose body
//! opens with the handshake line — clients have no Hello round-trip, so
//! the version check rides the verb itself), and reads the reply.
//! [`submit_watch`] keeps its connection open after the
//! [`FrameKind::Accepted`] reply and subscribes on it: per-completion
//! JSONL records stream to one writer, the final report to another, so
//! a caller can keep progress on stderr and the report bytes alone on
//! stdout (comparable with `cmp` against a local `campaign --format
//! jsonl` run).

use std::io::Write;
use std::net::TcpStream;

use sea_campaign::CampaignError;
use sea_dist::frame::{handshake_line, read_frame, write_frame, Frame, FrameKind};

use crate::terr;

/// What the daemon accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Daemon-assigned campaign id (stable for the daemon's lifetime;
    /// re-submitting an identical spec returns the same id).
    pub campaign_id: u64,
    /// Hex spec hash ([`sea_campaign::units_hash`] of the expansion).
    pub spec_hash: String,
    /// How many units the spec expands to.
    pub n_units: usize,
}

fn connect(addr: &str) -> Result<TcpStream, CampaignError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| terr(format!("cannot connect to daemon {addr}: {e}")))?;
    sea_dist::configure_stream(&stream)
        .map_err(|e| terr(format!("cannot configure the daemon socket: {e}")))?;
    Ok(stream)
}

/// A client frame body: handshake line, newline, payload.
fn verb_body(payload: &str) -> Vec<u8> {
    format!("{}\n{payload}", handshake_line()).into_bytes()
}

fn read_reply(stream: &mut TcpStream) -> Result<Frame, CampaignError> {
    match read_frame(stream) {
        Ok(frame) if frame.kind == FrameKind::Refuse => Err(terr(format!(
            "daemon refused: {}",
            frame.text().map(str::to_owned).unwrap_or_default()
        ))),
        Ok(frame) => Ok(frame),
        Err(e) => Err(terr(format!("daemon reply failed: {e}"))),
    }
}

fn expect_text(frame: &Frame, kind: FrameKind) -> Result<String, CampaignError> {
    if frame.kind != kind {
        return Err(terr(format!(
            "expected a {kind:?} frame, got {:?}",
            frame.kind
        )));
    }
    frame
        .text()
        .map(str::to_owned)
        .map_err(|e| terr(e.to_string()))
}

fn parse_accepted(body: &str) -> Result<SubmitOutcome, CampaignError> {
    let mut parts = body.split_whitespace();
    let outcome = (|| {
        Some(SubmitOutcome {
            campaign_id: parts.next()?.parse().ok()?,
            spec_hash: parts.next()?.to_string(),
            n_units: parts.next()?.parse().ok()?,
        })
    })();
    match outcome {
        Some(o) if parts.next().is_none() => Ok(o),
        _ => Err(terr(format!("malformed Accepted reply: `{body}`"))),
    }
}

fn submit_on(stream: &mut TcpStream, spec: &str) -> Result<SubmitOutcome, CampaignError> {
    write_frame(stream, FrameKind::Submit, &verb_body(spec))
        .map_err(|e| terr(format!("cannot submit: {e}")))?;
    let reply = read_reply(stream)?;
    parse_accepted(&expect_text(&reply, FrameKind::Accepted)?)
}

/// Submits a campaign spec and returns the daemon's acceptance.
///
/// # Errors
///
/// Connection failures, daemon refusals (spec parse errors, journal
/// failures, version skew) and malformed replies.
pub fn submit(addr: &str, spec: &str) -> Result<SubmitOutcome, CampaignError> {
    submit_on(&mut connect(addr)?, spec)
}

/// Streams a campaign on an open connection: records (one JSONL line
/// each, enumeration order) to `records`, the final report to `report`.
fn watch_on(
    stream: &mut TcpStream,
    campaign_id: u64,
    records: &mut dyn Write,
    report: &mut dyn Write,
) -> Result<(), CampaignError> {
    write_frame(
        stream,
        FrameKind::Subscribe,
        &verb_body(&campaign_id.to_string()),
    )
    .map_err(|e| terr(format!("cannot subscribe: {e}")))?;
    loop {
        let frame = read_reply(stream)?;
        match frame.kind {
            FrameKind::Record => {
                let line = expect_text(&frame, FrameKind::Record)?;
                writeln!(records, "{line}")
                    .map_err(|e| terr(format!("cannot write a record: {e}")))?;
            }
            FrameKind::Report => {
                report
                    .write_all(&frame.body)
                    .map_err(|e| terr(format!("cannot write the report: {e}")))?;
                return Ok(());
            }
            other => {
                return Err(terr(format!(
                    "expected a Record or Report frame, got {other:?}"
                )));
            }
        }
    }
}

/// Submits a spec and watches it to completion on the same connection.
///
/// Streamed record lines go to `records`, the final report bytes to
/// `report` — their concatenation is byte-identical (record stream ==
/// report), so either writer alone reproduces a local run's JSONL
/// output.
///
/// # Errors
///
/// Everything [`submit`] raises, plus a dropped subscription (daemon
/// stopped or campaign cancelled mid-watch).
pub fn submit_watch(
    addr: &str,
    spec: &str,
    records: &mut dyn Write,
    report: &mut dyn Write,
) -> Result<SubmitOutcome, CampaignError> {
    let mut stream = connect(addr)?;
    let outcome = submit_on(&mut stream, spec)?;
    watch_on(&mut stream, outcome.campaign_id, records, report)?;
    Ok(outcome)
}

/// Fetches the daemon's status report (JSON: per-campaign progress,
/// per-worker fleet stats, fleet totals).
///
/// # Errors
///
/// Connection failures and daemon refusals.
pub fn status(addr: &str) -> Result<String, CampaignError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, FrameKind::Status, &verb_body(""))
        .map_err(|e| terr(format!("cannot request status: {e}")))?;
    let reply = read_reply(&mut stream)?;
    expect_text(&reply, FrameKind::StatusReport)
}

/// Cancels a campaign; returns the daemon's human-readable outcome.
///
/// # Errors
///
/// Connection failures and daemon refusals (unknown campaign id).
pub fn cancel(addr: &str, campaign_id: u64) -> Result<String, CampaignError> {
    let mut stream = connect(addr)?;
    write_frame(
        &mut stream,
        FrameKind::Cancel,
        &verb_body(&campaign_id.to_string()),
    )
    .map_err(|e| terr(format!("cannot cancel: {e}")))?;
    let reply = read_reply(&mut stream)?;
    expect_text(&reply, FrameKind::Done)
}

/// Stops the daemon cleanly; returns its human-readable sign-off.
///
/// # Errors
///
/// Connection failures and daemon refusals.
pub fn stop(addr: &str) -> Result<String, CampaignError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, FrameKind::Stop, &verb_body(""))
        .map_err(|e| terr(format!("cannot request a stop: {e}")))?;
    let reply = read_reply(&mut stream)?;
    expect_text(&reply, FrameKind::Done)
}
