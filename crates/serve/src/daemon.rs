//! The coordinator daemon: a long-running service multiplexing many
//! campaigns over one shared worker fleet.
//!
//! Where `sea_dist::serve_units` runs *one* campaign to completion and
//! exits, [`run_daemon`] accepts campaign *submissions* over the same
//! frame protocol, keeps one [`RunState`] per registered campaign, and
//! schedules every campaign's pending units onto whichever workers are
//! connected. Workers speak the unmodified worker dialect (Hello / Work
//! / Result / Heartbeat) — a worker cannot tell a daemon from a
//! single-campaign coordinator; clients speak the service verbs added in
//! protocol version 2 (Submit / Subscribe / Status / Cancel / Stop).
//!
//! **Fairness.** Dispatch walks the campaign registry round-robin: each
//! time a worker asks for work, the cursor starts at the campaign after
//! the one that last dispatched, so no submission starves behind an
//! earlier, larger one. Within a campaign, units leave in
//! [`dispatch_order`] — most expensive first, the same cost model as the
//! local pool. Results slot by enumeration index, so scheduling affects
//! wall-clock only, never a report.
//!
//! **Cross-campaign dedupe.** [`unit_hash`] excludes the presentation
//! fields (enumeration index, scenario label), so identical units in
//! different campaigns share one content hash. The daemon keeps a
//! *followers* map from in-flight content hash to every `(campaign,
//! index)` pair interested in it: a unit about to be dispatched whose
//! hash is already in flight registers as a follower instead, and the
//! one verified result fans out to every follower through
//! [`sea_campaign::decode_result`] (which rewrites the presentation
//! fields per campaign). Overlapping units evaluate exactly once
//! fleet-wide.
//!
//! **Caching.** The shared content-addressed cache is probed at
//! *dispatch* time: a hit completes the unit without network traffic and
//! is attributed to the worker whose dispatch path probed it (a
//! worker-local hit on the unmodified wire is invisible to the daemon,
//! so the dispatch-path probe is the honest per-worker statistic). The
//! trade-off of probing at dispatch rather than at submission: a
//! fully-warm campaign still needs at least one connected worker to
//! drain its queue.
//!
//! **Durability.** With a journal directory configured, every campaign
//! write-ahead journals to `<spec_hash>.jsonl` exactly like a local
//! `--resume` run. After a daemon restart, re-submitting the same spec
//! resumes from the journal: restored records stream first, only the
//! missing units are dispatched, and the final report is byte-identical.
//!
//! **Streaming.** Subscribers receive one [`FrameKind::Record`] per
//! completed unit, *released in enumeration order* (record `i` is held
//! back until every record before it has been released), then the final
//! [`FrameKind::Report`]. Holding the stream to enumeration order makes
//! the concatenation of streamed lines byte-identical to the final JSONL
//! report — and to a local `campaign --format jsonl` run of the same
//! spec — regardless of completion interleaving or other in-flight
//! campaigns.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use sea_campaign::{
    decode_result, dispatch_order, json_record, jsonl_report, open_journal, parse_campaign,
    unit_hash, units_hash, Cache, CampaignError, Completion, ContentHash, NullSink, RunState, Unit,
    UnitRecord,
};
use sea_dist::frame::{check_handshake, handshake_line, read_frame, write_frame, Frame, FrameKind};
use sea_dist::wire;

use crate::terr;

/// Daemon configuration.
pub struct DaemonConfig {
    /// Shared content-addressed result cache, probed on the dispatch path
    /// and published to as verified results arrive. One cache serves
    /// every campaign.
    pub cache: Option<Cache>,
    /// Directory for per-campaign write-ahead journals, one
    /// `<spec_hash>.jsonl` per submitted spec. `None` disables
    /// durability (a daemon restart forgets progress the cache does not
    /// hold).
    pub journal_dir: Option<PathBuf>,
    /// How long a worker holding an in-flight unit may stay silent
    /// before it is presumed dead and its unit re-queued.
    pub heartbeat_timeout: Duration,
}

impl DaemonConfig {
    /// No cache, no journal directory, the default 30 s heartbeat
    /// timeout.
    #[must_use]
    pub fn new() -> Self {
        DaemonConfig {
            cache: None,
            journal_dir: None,
            heartbeat_timeout: Duration::from_secs(30),
        }
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig::new()
    }
}

/// Per-worker fleet statistics, accumulated per connection.
///
/// A worker that reconnects after a daemon restart or dropped connection
/// gets a fresh connection id and therefore a fresh row — the stats
/// describe connection sessions, the unit of accounting the daemon can
/// actually observe.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Units this worker evaluated to a verified result.
    pub completed: usize,
    /// Cache hits probed on this worker's dispatch path (served without
    /// dispatching).
    pub cache_hits: usize,
    /// Hard unit errors this worker reported.
    pub errors: usize,
    /// Total wall time of this worker's completed units.
    pub busy: Duration,
}

impl WorkerStats {
    /// Mean wall time per completed unit, in milliseconds (0 when none
    /// completed).
    #[must_use]
    pub fn mean_unit_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let n = self.completed as f64;
            self.busy.as_secs_f64() * 1000.0 / n
        }
    }
}

/// What the daemon did over its lifetime, returned when a
/// [`FrameKind::Stop`] shuts it down.
#[derive(Debug, Default)]
pub struct DaemonReport {
    /// Campaigns submitted (including re-attached duplicates only once).
    pub campaigns: usize,
    /// Campaigns that finished with a complete report.
    pub completed: usize,
    /// Campaigns cancelled by a client.
    pub cancelled: usize,
    /// Units evaluated by the fleet (one per verified result frame).
    pub evaluated: usize,
    /// Extra completions produced by cross-campaign dedupe fan-out
    /// (follower completions beyond each result's first).
    pub deduped: usize,
    /// Per-connection worker statistics, connection-id ascending.
    pub workers: Vec<(u64, WorkerStats)>,
}

/// Events the listener/reader threads feed the daemon loop.
enum Event {
    Connected(u64, TcpStream),
    Frame(u64, Frame),
    Gone(u64),
}

/// What a connection has identified itself as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// No frame seen yet.
    New,
    /// Sent a Hello: speaks the worker dialect.
    Worker,
    /// Sent a client verb: speaks the service dialect.
    Client,
}

/// The unit a worker is evaluating right now.
#[derive(Debug, Clone, Copy)]
struct Ticket {
    /// Registry position of the campaign whose unit body was dispatched.
    campaign: usize,
    /// Enumeration index within that campaign.
    index: usize,
    /// Content hash of the dispatched unit (the followers-map key).
    hash: ContentHash,
    /// Dispatch instant, for per-worker wall-time accounting.
    since: Instant,
}

/// Per-connection daemon state.
struct Peer {
    stream: TcpStream,
    role: Role,
    ticket: Option<Ticket>,
    last_seen: Instant,
}

/// One registered campaign.
struct CampaignRun {
    name: String,
    spec_hash: ContentHash,
    units: Vec<Unit>,
    /// The engine state machine; `None` once finished or cancelled.
    state: Option<RunState>,
    /// Pending enumeration indices in cost-model dispatch order.
    queue: VecDeque<usize>,
    /// Completed JSONL record lines by enumeration index (errors leave
    /// `None`).
    records: Vec<Option<String>>,
    /// How many leading records have been released to subscribers.
    next_release: usize,
    /// Connection ids streaming this campaign.
    subscribers: Vec<u64>,
    /// `Ok(final JSONL report)` or `Err(reason)` once the campaign is
    /// over.
    outcome: Option<Result<String, String>>,
    /// Units with any completion (restored, evaluated, cache hit, error).
    done: usize,
    executed: usize,
    cache_hits: usize,
    resumed: usize,
    cancelled: bool,
}

impl CampaignRun {
    fn status_label(&self) -> &'static str {
        if self.cancelled {
            "cancelled"
        } else {
            match &self.outcome {
                None => "running",
                Some(Ok(_)) => "complete",
                Some(Err(_)) => "failed",
            }
        }
    }
}

/// Fleet-wide counters for status reports and the final
/// [`DaemonReport`].
#[derive(Default)]
struct FleetTotals {
    evaluated: usize,
    deduped: usize,
}

/// Runs the daemon on `listener` until a client sends
/// [`FrameKind::Stop`].
///
/// Workers and clients connect to the same port; the first frame on a
/// connection decides its dialect. Campaign reports are byte-identical
/// to a local `campaign --jobs N` run of the same spec, regardless of
/// worker count, connection churn or other in-flight campaigns.
///
/// # Errors
///
/// Transport setup failures and an unexpectedly closed event channel.
/// Per-campaign failures (journal append, hard unit errors) fail that
/// campaign's subscribers, not the daemon.
pub fn run_daemon(
    listener: &TcpListener,
    config: &DaemonConfig,
) -> Result<DaemonReport, CampaignError> {
    let local_addr = listener
        .local_addr()
        .map_err(|e| terr(format!("cannot resolve the daemon address: {e}")))?;
    let stop = AtomicBool::new(false);
    // Live-connection registry, exactly as in `sea_dist::serve_units`:
    // registered by the listener before the reader spawns, unregistered
    // by the reader on exit, swept at teardown so blocked readers
    // unblock.
    let accepted: Mutex<HashMap<u64, TcpStream>> = Mutex::new(HashMap::new());
    let (tx, rx) = mpsc::channel::<Event>();

    std::thread::scope(|s| {
        let listener_tx = tx.clone();
        let stop_ref = &stop;
        let accepted_ref = &accepted;
        let listener_handle = s.spawn(move || {
            let tx = listener_tx;
            let mut next_id = 0u64;
            loop {
                let Ok((stream, _addr)) = listener.accept() else {
                    break;
                };
                if stop_ref.load(Ordering::SeqCst) {
                    break; // the teardown wake-up
                }
                if sea_dist::configure_stream(&stream).is_err() {
                    continue;
                }
                let id = next_id;
                next_id += 1;
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                accepted_ref.lock().unwrap().insert(id, write_half);
                let Ok(write_half) = stream.try_clone() else {
                    accepted_ref.lock().unwrap().remove(&id);
                    continue;
                };
                if tx.send(Event::Connected(id, write_half)).is_err() {
                    break;
                }
                let tx = tx.clone();
                s.spawn(move || {
                    let mut stream = stream;
                    loop {
                        match read_frame(&mut stream) {
                            Ok(frame) => {
                                if tx.send(Event::Frame(id, frame)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => {
                                let _ = tx.send(Event::Gone(id));
                                break;
                            }
                        }
                    }
                    accepted_ref.lock().unwrap().remove(&id);
                });
            }
        });

        let result = daemon_loop(config, &rx);

        stop.store(true, Ordering::SeqCst);
        let mut wake_addr = local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake_addr);
        let _ = listener_handle.join();
        for stream in accepted.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        drop(tx);

        result
    })
}

/// Sends a frame to a peer; a failed write means the peer is gone.
fn send(peer: &mut Peer, kind: FrameKind, body: &[u8]) -> bool {
    write_frame(&mut peer.stream, kind, body).is_ok()
}

/// Validates a client verb body (handshake line first) and returns the
/// payload after the newline (empty for bare verbs).
fn client_payload(frame: &Frame) -> Result<String, String> {
    let text =
        std::str::from_utf8(&frame.body).map_err(|_| "frame body is not UTF-8".to_string())?;
    let (line, rest) = match text.split_once('\n') {
        Some((line, rest)) => (line, rest),
        None => (text, ""),
    };
    check_handshake(line.as_bytes())?;
    Ok(rest.to_string())
}

/// Releases completed records to subscribers in enumeration order:
/// record `i` goes out only when every record before it is out, so the
/// streamed lines concatenate to exactly the final report.
fn release_records(run: &mut CampaignRun, peers: &mut HashMap<u64, Peer>) {
    while run.next_release < run.records.len() {
        let Some(line) = run.records[run.next_release].as_deref() else {
            break;
        };
        let mut dead: Vec<u64> = Vec::new();
        for &sub in &run.subscribers {
            match peers.get_mut(&sub) {
                Some(peer) => {
                    if !send(peer, FrameKind::Record, line.as_bytes()) {
                        let _ = peer.stream.shutdown(Shutdown::Both);
                        dead.push(sub);
                    }
                }
                None => dead.push(sub),
            }
        }
        if !dead.is_empty() {
            run.subscribers.retain(|s| !dead.contains(s));
        }
        run.next_release += 1;
    }
}

/// Finishes a campaign: renders the final report (or the failure),
/// stores it for late subscribers, and releases current ones.
fn finish_campaign(run: &mut CampaignRun, peers: &mut HashMap<u64, Peer>) {
    let Some(state) = run.state.take() else {
        return;
    };
    let outcome = match state.finish(&mut NullSink) {
        Ok(outcome) => {
            let records: Vec<UnitRecord> = outcome.records();
            Ok(jsonl_report(&records))
        }
        Err(e) => Err(e.to_string()),
    };
    let (kind, body) = match &outcome {
        Ok(report) => (FrameKind::Report, report.clone()),
        Err(reason) => (FrameKind::Refuse, format!("campaign failed: {reason}")),
    };
    for sub in std::mem::take(&mut run.subscribers) {
        if let Some(peer) = peers.get_mut(&sub) {
            let _ = send(peer, kind, body.as_bytes());
            let _ = peer.stream.shutdown(Shutdown::Both);
        }
    }
    eprintln!(
        "daemon: campaign `{}` {}",
        run.name,
        match &outcome {
            Ok(_) => "complete".to_string(),
            Err(reason) => format!("failed: {reason}"),
        }
    );
    run.outcome = Some(outcome);
}

/// Records one completion on a campaign and drives the streaming /
/// finishing consequences.
fn complete_unit(
    run: &mut CampaignRun,
    index: usize,
    result: Result<sea_campaign::UnitResult, CampaignError>,
    from_cache: bool,
    peers: &mut HashMap<u64, Peer>,
) {
    let Some(state) = run.state.as_mut() else {
        return;
    };
    if state.is_filled(index) {
        return;
    }
    let line = match &result {
        Ok(r) => Some(json_record(&r.record)),
        Err(_) => None,
    };
    let ok = state.complete(
        Completion {
            index,
            result,
            from_cache,
        },
        &mut NullSink,
    );
    run.done += 1;
    if from_cache {
        run.cache_hits += 1;
    } else {
        run.executed += 1;
    }
    if !ok {
        // Journal append failed: the write-ahead guarantee is gone for
        // this campaign; fail it now (the daemon keeps serving others).
        finish_campaign(run, peers);
        return;
    }
    if let Some(line) = line {
        run.records[index] = Some(line);
    }
    release_records(run, peers);
    if run.state.as_ref().is_some_and(|s| s.outstanding() == 0) {
        finish_campaign(run, peers);
    }
}

/// Claims the next dispatchable unit, walking campaigns round-robin from
/// the cursor. Units whose hash is already in flight register as
/// followers; cache hits complete immediately (attributed to
/// `worker_id`); the claimed unit's hash is inserted into the followers
/// map before returning.
#[allow(clippy::too_many_arguments)]
fn next_work(
    campaigns: &mut [CampaignRun],
    cursor: &mut usize,
    followers: &mut HashMap<ContentHash, Vec<(usize, usize)>>,
    cache: Option<&Cache>,
    peers: &mut HashMap<u64, Peer>,
    stats: &mut HashMap<u64, WorkerStats>,
    worker_id: u64,
) -> Option<(usize, usize, ContentHash)> {
    let n = campaigns.len();
    if n == 0 {
        return None;
    }
    for step in 0..n {
        let c = (*cursor + step) % n;
        loop {
            let run = &mut campaigns[c];
            if run.cancelled || run.state.is_none() {
                break;
            }
            let Some(i) = run.queue.pop_front() else {
                break;
            };
            if run.state.as_ref().is_some_and(|s| s.is_filled(i)) {
                continue;
            }
            let hash = unit_hash(&run.units[i]);
            if let Some(list) = followers.get_mut(&hash) {
                // Already evaluating on some worker (possibly for another
                // campaign): ride that evaluation instead of dispatching
                // a duplicate. Registration costs no worker turn.
                list.push((c, i));
                continue;
            }
            if let Some(result) = cache.and_then(|cache| cache.load(&run.units[i])) {
                if let Some(ws) = stats.get_mut(&worker_id) {
                    ws.cache_hits += 1;
                }
                complete_unit(run, i, Ok(result), true, peers);
                continue;
            }
            followers.insert(hash, vec![(c, i)]);
            *cursor = (c + 1) % n;
            return Some((c, i, hash));
        }
    }
    None
}

/// Dispatches work to one idle worker. Returns `false` when the write
/// failed (caller removes the peer).
#[allow(clippy::too_many_arguments)]
fn dispatch_to(
    worker_id: u64,
    campaigns: &mut [CampaignRun],
    cursor: &mut usize,
    followers: &mut HashMap<ContentHash, Vec<(usize, usize)>>,
    cache: Option<&Cache>,
    peers: &mut HashMap<u64, Peer>,
    stats: &mut HashMap<u64, WorkerStats>,
) -> bool {
    let Some((c, i, hash)) =
        next_work(campaigns, cursor, followers, cache, peers, stats, worker_id)
    else {
        return true; // no work: stay idle
    };
    let body = wire::encode_work(i, hash, &campaigns[c].units[i]);
    let undo = |campaigns: &mut [CampaignRun],
                followers: &mut HashMap<ContentHash, Vec<(usize, usize)>>| {
        followers.remove(&hash);
        campaigns[c].queue.push_front(i);
    };
    let Some(peer) = peers.get_mut(&worker_id) else {
        undo(campaigns, followers);
        return true; // peer vanished between events; the unit re-queues
    };
    if write_frame(&mut peer.stream, FrameKind::Work, body.as_bytes()).is_ok() {
        let now = Instant::now();
        peer.ticket = Some(Ticket {
            campaign: c,
            index: i,
            hash,
            since: now,
        });
        peer.last_seen = now;
        true
    } else {
        undo(campaigns, followers);
        false
    }
}

/// Removes one peer: closes its stream, re-queues every follower of its
/// in-flight unit, and forgets its subscriptions.
fn remove_peer(
    peers: &mut HashMap<u64, Peer>,
    id: u64,
    campaigns: &mut [CampaignRun],
    followers: &mut HashMap<ContentHash, Vec<(usize, usize)>>,
) {
    let Some(peer) = peers.remove(&id) else {
        return;
    };
    let _ = peer.stream.shutdown(Shutdown::Both);
    if let Some(ticket) = peer.ticket {
        if let Some(list) = followers.remove(&ticket.hash) {
            for (fc, fi) in list {
                let run = &mut campaigns[fc];
                if !run.cancelled && run.state.as_ref().is_some_and(|s| !s.is_filled(fi)) {
                    run.queue.push_front(fi);
                }
            }
        }
    }
    for run in campaigns.iter_mut() {
        run.subscribers.retain(|&s| s != id);
    }
}

/// Gives queued work to every greeted, idle worker.
fn feed_idle(
    peers: &mut HashMap<u64, Peer>,
    campaigns: &mut [CampaignRun],
    cursor: &mut usize,
    followers: &mut HashMap<ContentHash, Vec<(usize, usize)>>,
    cache: Option<&Cache>,
    stats: &mut HashMap<u64, WorkerStats>,
) {
    let mut ids: Vec<u64> = peers
        .iter()
        .filter(|(_, p)| p.role == Role::Worker && p.ticket.is_none())
        .map(|(&id, _)| id)
        .collect();
    ids.sort_unstable();
    let mut dead: Vec<u64> = Vec::new();
    for id in ids {
        if !dispatch_to(id, campaigns, cursor, followers, cache, peers, stats) {
            dead.push(id);
        }
    }
    for id in dead {
        remove_peer(peers, id, campaigns, followers);
    }
}

/// What became of one Result frame.
enum ResultDisposition {
    Accepted,
    Corrupt(String),
}

/// Verifies a worker's result against its ticket and fans the completion
/// out to every follower of the unit's content hash.
#[allow(clippy::too_many_arguments)]
fn handle_result(
    id: u64,
    frame: &Frame,
    campaigns: &mut [CampaignRun],
    peers: &mut HashMap<u64, Peer>,
    followers: &mut HashMap<ContentHash, Vec<(usize, usize)>>,
    cache: Option<&Cache>,
    stats: &mut HashMap<u64, WorkerStats>,
    totals: &mut FleetTotals,
) -> ResultDisposition {
    let Some(ticket) = peers.get(&id).and_then(|p| p.ticket) else {
        return ResultDisposition::Corrupt("result frame but no unit dispatched".into());
    };
    let text = match frame.text() {
        Ok(t) => t,
        Err(e) => return ResultDisposition::Corrupt(e.to_string()),
    };
    // NOTE: the ticket is cleared only once the result verifies. Every
    // `Corrupt` return leaves it set, so the subsequent peer removal
    // re-queues the unit for every follower — a corrupt stream must cost
    // a connection, never a unit.
    let (index, claimed, entry) = match wire::decode_result_body(text) {
        Ok(parts) => parts,
        Err(e) => return ResultDisposition::Corrupt(e.to_string()),
    };
    if ticket.index != index {
        return ResultDisposition::Corrupt(format!(
            "result for unit {index} but unit {} was dispatched to this worker",
            ticket.index
        ));
    }
    if claimed != ticket.hash {
        return ResultDisposition::Corrupt(format!(
            "result claims hash {}, dispatched {}",
            claimed.to_hex(),
            ticket.hash.to_hex()
        ));
    }
    // Full verification against the unit the daemon actually dispatched:
    // embedded hash, entry checksum, payload decode.
    let primary = match decode_result(entry, &campaigns[ticket.campaign].units[ticket.index]) {
        Ok(r) => r,
        Err(e) => return ResultDisposition::Corrupt(format!("unverifiable result: {e}")),
    };
    if let Some(peer) = peers.get_mut(&id) {
        peer.ticket = None;
    }
    let ws = stats.entry(id).or_default();
    ws.completed += 1;
    ws.busy += ticket.since.elapsed();
    if let Some(cache) = cache {
        // Best-effort publication: a full disk must not fail a campaign.
        let _ = cache.store(&primary);
    }
    let interested = followers.remove(&ticket.hash).unwrap_or_default();
    let mut fanned = 0usize;
    let mut primary_slot = Some(primary);
    for (fc, fi) in interested {
        let run = &mut campaigns[fc];
        if run.cancelled || run.state.is_none() {
            continue;
        }
        let result = if fc == ticket.campaign && fi == ticket.index {
            match primary_slot.take() {
                Some(r) => Ok(r),
                None => decode_result(entry, &run.units[fi])
                    .map_err(|e| terr(format!("unverifiable result for unit {fi}: {e}"))),
            }
        } else {
            // Re-decode against the follower's own unit so the
            // presentation fields (index, scenario) belong to *its*
            // campaign.
            decode_result(entry, &run.units[fi])
                .map_err(|e| terr(format!("unverifiable result for unit {fi}: {e}")))
        };
        complete_unit(run, fi, result, false, peers);
        fanned += 1;
    }
    totals.evaluated += 1;
    totals.deduped += fanned.saturating_sub(1);
    ResultDisposition::Accepted
}

/// Registers a submitted spec (or attaches to the identical one already
/// registered) and returns the Accepted reply body.
fn handle_submit(
    spec: &str,
    campaigns: &mut Vec<CampaignRun>,
    journal_dir: Option<&PathBuf>,
    peers: &mut HashMap<u64, Peer>,
) -> Result<String, String> {
    let campaign = parse_campaign(spec).map_err(|e| e.to_string())?;
    let units = campaign.expand();
    if units.is_empty() {
        return Err("campaign expands to zero units".into());
    }
    let spec_hash = units_hash(&units);
    if let Some(c) = campaigns.iter().position(|r| r.spec_hash == spec_hash) {
        // Same expansion already registered: attach rather than duplicate
        // (re-submitting after a watch disconnect must not re-run
        // anything).
        return Ok(format!(
            "{} {} {}",
            c + 1,
            spec_hash.to_hex(),
            campaigns[c].units.len()
        ));
    }
    let mut prefilled = Vec::new();
    let mut journal = None;
    let mut resumed = 0usize;
    if let Some(dir) = journal_dir {
        let path = dir.join(format!("{}.jsonl", spec_hash.to_hex()));
        let plan = open_journal(&path, &campaign.name, &units)
            .map_err(|e| format!("cannot open the campaign journal: {e}"))?;
        resumed = plan.resumed;
        prefilled = plan.prefilled;
        journal = Some(plan.writer);
    }
    // Capture the restored record lines before `RunState::plan` consumes
    // the prefill: restored records stream to subscribers too.
    let records: Vec<Option<String>> = if prefilled.is_empty() {
        vec![None; units.len()]
    } else {
        prefilled
            .iter()
            .map(|slot| slot.as_ref().map(json_record))
            .collect()
    };
    let state = RunState::plan(&units, prefilled, false, journal);
    let queue: VecDeque<usize> = dispatch_order(&units, state.pending()).into();
    let n_units = units.len();
    campaigns.push(CampaignRun {
        name: campaign.name,
        spec_hash,
        units,
        state: Some(state),
        queue,
        records,
        next_release: 0,
        subscribers: Vec::new(),
        outcome: None,
        done: resumed,
        executed: 0,
        cache_hits: 0,
        resumed,
        cancelled: false,
    });
    let c = campaigns.len() - 1;
    eprintln!(
        "daemon: campaign {} `{}` accepted ({} units, {} resumed)",
        c + 1,
        campaigns[c].name,
        n_units,
        resumed
    );
    // Restored records release immediately; a fully-journaled submission
    // finishes without dispatching anything.
    release_records(&mut campaigns[c], peers);
    if campaigns[c]
        .state
        .as_ref()
        .is_some_and(|s| s.outstanding() == 0)
    {
        finish_campaign(&mut campaigns[c], peers);
    }
    Ok(format!("{} {} {}", c + 1, spec_hash.to_hex(), n_units))
}

/// Cancels one campaign: clears its queue, detaches its follower
/// interest, and disconnects workers whose in-flight unit no other
/// campaign wants (the drop trips the worker's cooperative cancel flag,
/// stopping the evaluation at the next chunk boundary; the worker
/// reconnects on its own).
fn handle_cancel(
    c: usize,
    campaigns: &mut [CampaignRun],
    peers: &mut HashMap<u64, Peer>,
    followers: &mut HashMap<ContentHash, Vec<(usize, usize)>>,
) -> String {
    let run = &mut campaigns[c];
    if let Some(outcome) = &run.outcome {
        return format!(
            "campaign {} already {}",
            c + 1,
            if outcome.is_ok() { "complete" } else { "over" }
        );
    }
    run.cancelled = true;
    run.queue.clear();
    run.state = None; // drops the journal writer; the journal stays on disk
    run.outcome = Some(Err("cancelled".into()));
    let reply = format!(
        "campaign {} cancelled ({}/{} units completed)",
        c + 1,
        run.done,
        run.units.len()
    );
    for sub in std::mem::take(&mut run.subscribers) {
        if let Some(peer) = peers.get_mut(&sub) {
            let _ = send(
                peer,
                FrameKind::Refuse,
                format!("campaign {} cancelled", c + 1).as_bytes(),
            );
            let _ = peer.stream.shutdown(Shutdown::Both);
        }
    }
    // Strip this campaign's interest; a hash left with no followers is
    // work nobody wants — disconnect the worker holding it.
    let mut orphaned: Vec<ContentHash> = Vec::new();
    for (hash, list) in followers.iter_mut() {
        list.retain(|&(fc, _)| fc != c);
        if list.is_empty() {
            orphaned.push(*hash);
        }
    }
    for hash in &orphaned {
        followers.remove(hash);
    }
    let victims: Vec<u64> = peers
        .iter()
        .filter(|(_, p)| p.ticket.is_some_and(|t| orphaned.contains(&t.hash)))
        .map(|(&id, _)| id)
        .collect();
    for id in victims {
        remove_peer(peers, id, campaigns, followers);
    }
    eprintln!("daemon: {reply}");
    reply
}

/// Minimal JSON string escaping for the status report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the status report: per-campaign progress, per-worker fleet
/// stats, fleet totals.
fn status_json(
    campaigns: &[CampaignRun],
    stats: &HashMap<u64, WorkerStats>,
    totals: &FleetTotals,
) -> String {
    let mut out = String::from("{\"campaigns\":[");
    for (c, run) in campaigns.iter().enumerate() {
        if c > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"name\":\"{}\",\"spec_hash\":\"{}\",\"state\":\"{}\",\
             \"units\":{},\"done\":{},\"executed\":{},\"cache_hits\":{},\"resumed\":{}}}",
            c + 1,
            json_escape(&run.name),
            run.spec_hash.to_hex(),
            run.status_label(),
            run.units.len(),
            run.done,
            run.executed,
            run.cache_hits,
            run.resumed,
        ));
    }
    out.push_str("],\"workers\":[");
    let mut ids: Vec<u64> = stats.keys().copied().collect();
    ids.sort_unstable();
    for (k, id) in ids.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let ws = &stats[id];
        out.push_str(&format!(
            "{{\"worker\":{},\"completed\":{},\"cache_hits\":{},\"errors\":{},\"mean_unit_ms\":{:.3}}}",
            id,
            ws.completed,
            ws.cache_hits,
            ws.errors,
            ws.mean_unit_ms(),
        ));
    }
    out.push_str(&format!(
        "],\"fleet\":{{\"evaluated\":{},\"deduped\":{}}}}}",
        totals.evaluated, totals.deduped
    ));
    out
}

/// The daemon's event loop: runs until a client sends Stop.
#[allow(clippy::too_many_lines)]
fn daemon_loop(
    config: &DaemonConfig,
    rx: &mpsc::Receiver<Event>,
) -> Result<DaemonReport, CampaignError> {
    let cache = config.cache.as_ref();
    let journal_dir = config.journal_dir.as_ref();
    let mut campaigns: Vec<CampaignRun> = Vec::new();
    let mut peers: HashMap<u64, Peer> = HashMap::new();
    let mut followers: HashMap<ContentHash, Vec<(usize, usize)>> = HashMap::new();
    let mut stats: HashMap<u64, WorkerStats> = HashMap::new();
    let mut totals = FleetTotals::default();
    let mut cursor = 0usize;
    let tick = config
        .heartbeat_timeout
        .min(Duration::from_secs(1))
        .max(Duration::from_millis(50));
    let mut last_sweep = Instant::now();
    let mut stopping = false;

    while !stopping {
        match rx.recv_timeout(tick) {
            Ok(Event::Connected(id, stream)) => {
                peers.insert(
                    id,
                    Peer {
                        stream,
                        role: Role::New,
                        ticket: None,
                        last_seen: Instant::now(),
                    },
                );
            }
            Ok(Event::Frame(id, frame)) => {
                let Some(peer) = peers.get_mut(&id) else {
                    continue; // already dropped
                };
                peer.last_seen = Instant::now();
                let role = peer.role;
                match (role, frame.kind) {
                    // ---- worker dialect --------------------------------
                    (Role::New, FrameKind::Hello) => match check_handshake(&frame.body) {
                        Ok(()) => {
                            peer.role = Role::Worker;
                            stats.entry(id).or_default();
                            if !send(peer, FrameKind::Welcome, handshake_line().as_bytes())
                                || !dispatch_to(
                                    id,
                                    &mut campaigns,
                                    &mut cursor,
                                    &mut followers,
                                    cache,
                                    &mut peers,
                                    &mut stats,
                                )
                            {
                                remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                            }
                        }
                        Err(reason) => {
                            let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                            remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                        }
                    },
                    (Role::Worker, FrameKind::Heartbeat) => {}
                    (Role::Worker, FrameKind::Result) => {
                        match handle_result(
                            id,
                            &frame,
                            &mut campaigns,
                            &mut peers,
                            &mut followers,
                            cache,
                            &mut stats,
                            &mut totals,
                        ) {
                            ResultDisposition::Accepted => {
                                if !dispatch_to(
                                    id,
                                    &mut campaigns,
                                    &mut cursor,
                                    &mut followers,
                                    cache,
                                    &mut peers,
                                    &mut stats,
                                ) {
                                    remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                                    feed_idle(
                                        &mut peers,
                                        &mut campaigns,
                                        &mut cursor,
                                        &mut followers,
                                        cache,
                                        &mut stats,
                                    );
                                }
                            }
                            ResultDisposition::Corrupt(reason) => {
                                if let Some(peer) = peers.get_mut(&id) {
                                    let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                                }
                                remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                                feed_idle(
                                    &mut peers,
                                    &mut campaigns,
                                    &mut cursor,
                                    &mut followers,
                                    cache,
                                    &mut stats,
                                );
                            }
                        }
                    }
                    (Role::Worker, FrameKind::WorkError) => {
                        let decoded = wire::decode_work_error(frame.text().unwrap_or(""));
                        let ticket = peer.ticket;
                        match (decoded, ticket) {
                            (Ok((index, message)), Some(t)) if t.index == index => {
                                peer.ticket = None;
                                if let Some(ws) = stats.get_mut(&id) {
                                    ws.errors += 1;
                                }
                                for (fc, fi) in followers.remove(&t.hash).unwrap_or_default() {
                                    let run = &mut campaigns[fc];
                                    if run.cancelled || run.state.is_none() {
                                        continue;
                                    }
                                    complete_unit(
                                        run,
                                        fi,
                                        Err(terr(format!(
                                            "worker reported unit {fi} failed: {message}"
                                        ))),
                                        false,
                                        &mut peers,
                                    );
                                }
                                if !dispatch_to(
                                    id,
                                    &mut campaigns,
                                    &mut cursor,
                                    &mut followers,
                                    cache,
                                    &mut peers,
                                    &mut stats,
                                ) {
                                    remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                                }
                            }
                            _ => {
                                remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                                feed_idle(
                                    &mut peers,
                                    &mut campaigns,
                                    &mut cursor,
                                    &mut followers,
                                    cache,
                                    &mut stats,
                                );
                            }
                        }
                    }
                    // ---- client dialect --------------------------------
                    (Role::New | Role::Client, FrameKind::Submit) => {
                        peer.role = Role::Client;
                        let reply = client_payload(&frame).and_then(|spec| {
                            handle_submit(&spec, &mut campaigns, journal_dir, &mut peers)
                        });
                        let Some(peer) = peers.get_mut(&id) else {
                            continue;
                        };
                        let ok = match reply {
                            Ok(body) => send(peer, FrameKind::Accepted, body.as_bytes()),
                            Err(reason) => {
                                let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                                false
                            }
                        };
                        if !ok {
                            remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                        }
                        // New pending units (or a freshly failed submit)
                        // never reach idle workers by themselves.
                        feed_idle(
                            &mut peers,
                            &mut campaigns,
                            &mut cursor,
                            &mut followers,
                            cache,
                            &mut stats,
                        );
                    }
                    (Role::New | Role::Client, FrameKind::Subscribe) => {
                        peer.role = Role::Client;
                        let id_text = match client_payload(&frame) {
                            Ok(rest) => rest,
                            Err(reason) => {
                                let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                                remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                                continue;
                            }
                        };
                        let c = id_text
                            .trim()
                            .parse::<u64>()
                            .ok()
                            .and_then(|n| n.checked_sub(1))
                            .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
                            .filter(|&c| c < campaigns.len());
                        let Some(c) = c else {
                            let _ = send(
                                peer,
                                FrameKind::Refuse,
                                format!("no campaign `{}`", id_text.trim()).as_bytes(),
                            );
                            remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                            continue;
                        };
                        // Replay what has already been released, then join
                        // the live stream (or receive the stored outcome).
                        let run = &mut campaigns[c];
                        let mut alive = true;
                        for k in 0..run.next_release {
                            if let Some(line) = run.records[k].as_deref() {
                                if !send(peer, FrameKind::Record, line.as_bytes()) {
                                    alive = false;
                                    break;
                                }
                            }
                        }
                        if alive {
                            match &run.outcome {
                                None => run.subscribers.push(id),
                                Some(Ok(report)) => {
                                    let report = report.clone();
                                    let _ = send(peer, FrameKind::Report, report.as_bytes());
                                    let _ = peer.stream.shutdown(Shutdown::Both);
                                }
                                Some(Err(reason)) => {
                                    let reason = format!("campaign failed: {reason}");
                                    let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                                    let _ = peer.stream.shutdown(Shutdown::Both);
                                }
                            }
                        } else {
                            remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                        }
                    }
                    (Role::New | Role::Client, FrameKind::Status) => {
                        peer.role = Role::Client;
                        let reply = match client_payload(&frame) {
                            Ok(_) => Ok(status_json(&campaigns, &stats, &totals)),
                            Err(reason) => Err(reason),
                        };
                        let ok = match reply {
                            Ok(body) => send(peer, FrameKind::StatusReport, body.as_bytes()),
                            Err(reason) => {
                                let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                                false
                            }
                        };
                        if !ok {
                            remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                        }
                    }
                    (Role::New | Role::Client, FrameKind::Cancel) => {
                        peer.role = Role::Client;
                        let target = client_payload(&frame).and_then(|rest| {
                            rest.trim()
                                .parse::<u64>()
                                .ok()
                                .and_then(|n| n.checked_sub(1))
                                .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
                                .filter(|&c| c < campaigns.len())
                                .ok_or_else(|| format!("no campaign `{}`", rest.trim()))
                        });
                        match target {
                            Ok(c) => {
                                let reply =
                                    handle_cancel(c, &mut campaigns, &mut peers, &mut followers);
                                if let Some(peer) = peers.get_mut(&id) {
                                    if !send(peer, FrameKind::Done, reply.as_bytes()) {
                                        remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                                    }
                                }
                            }
                            Err(reason) => {
                                let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                                remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                            }
                        }
                    }
                    (Role::New | Role::Client, FrameKind::Stop) => {
                        peer.role = Role::Client;
                        let reply = match client_payload(&frame) {
                            Ok(_) => {
                                stopping = true;
                                format!(
                                    "daemon stopping: {} campaign(s), {} unit(s) evaluated",
                                    campaigns.len(),
                                    totals.evaluated
                                )
                            }
                            Err(reason) => reason,
                        };
                        let kind = if stopping {
                            FrameKind::Done
                        } else {
                            FrameKind::Refuse
                        };
                        if let Some(peer) = peers.get_mut(&id) {
                            let _ = send(peer, kind, reply.as_bytes());
                        }
                    }
                    // Anything else is a protocol violation.
                    _ => {
                        let _ = send(
                            peer,
                            FrameKind::Refuse,
                            format!("unexpected {:?} frame", frame.kind).as_bytes(),
                        );
                        remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                        feed_idle(
                            &mut peers,
                            &mut campaigns,
                            &mut cursor,
                            &mut followers,
                            cache,
                            &mut stats,
                        );
                    }
                }
            }
            Ok(Event::Gone(id)) => {
                remove_peer(&mut peers, id, &mut campaigns, &mut followers);
                feed_idle(
                    &mut peers,
                    &mut campaigns,
                    &mut cursor,
                    &mut followers,
                    cache,
                    &mut stats,
                );
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(terr("daemon event channel closed unexpectedly"));
            }
        }
        if last_sweep.elapsed() >= tick {
            last_sweep = Instant::now();
            let now = Instant::now();
            let stale: Vec<u64> = peers
                .iter()
                .filter(|(_, p)| {
                    p.ticket.is_some() && now.duration_since(p.last_seen) > config.heartbeat_timeout
                })
                .map(|(&id, _)| id)
                .collect();
            for id in stale {
                remove_peer(&mut peers, id, &mut campaigns, &mut followers);
            }
            feed_idle(
                &mut peers,
                &mut campaigns,
                &mut cursor,
                &mut followers,
                cache,
                &mut stats,
            );
        }
    }

    // Clean stop: release the fleet, tell live subscribers, report.
    for peer in peers.values_mut() {
        match peer.role {
            Role::Worker => {
                let _ = send(peer, FrameKind::Shutdown, &[]);
            }
            Role::Client | Role::New => {}
        }
    }
    for run in &mut campaigns {
        if run.outcome.is_none() {
            for sub in std::mem::take(&mut run.subscribers) {
                if let Some(peer) = peers.get_mut(&sub) {
                    let _ = send(peer, FrameKind::Refuse, b"daemon stopping");
                }
            }
        }
    }
    let mut worker_rows: Vec<(u64, WorkerStats)> = stats.into_iter().collect();
    worker_rows.sort_unstable_by_key(|&(id, _)| id);
    Ok(DaemonReport {
        campaigns: campaigns.len(),
        completed: campaigns
            .iter()
            .filter(|r| matches!(r.outcome, Some(Ok(_))))
            .count(),
        cancelled: campaigns.iter().filter(|r| r.cancelled).count(),
        evaluated: totals.evaluated,
        deduped: totals.deduped,
        workers: worker_rows,
    })
}
