//! `sea-serve` — a multi-campaign coordinator daemon over the `sea-dist`
//! frame protocol.
//!
//! The single-campaign coordinator (`sea_dist::serve_units`) binds one
//! unit list to one listener and exits when it drains. This crate turns
//! that into a *service*: [`run_daemon`] accepts campaign submissions
//! while it runs, multiplexes every registered campaign over one shared
//! worker fleet, deduplicates identical units across concurrent
//! campaigns (one evaluation fans out to every interested campaign),
//! shares one content-addressed cache and one write-ahead journal
//! directory fleet-wide, and streams per-completion records to
//! subscribed clients in enumeration order.
//!
//! Workers are unchanged `sea_dist::run_worker` processes — the worker
//! dialect (Hello / Work / Result / Heartbeat) is identical whether the
//! far end is a coordinator or a daemon. Clients use the service verbs
//! of protocol version 2 ([`sea_dist::frame::FrameKind::Submit`] and
//! friends) via the [`client`] helpers.
//!
//! The determinism contract carries over unweakened: every campaign's
//! streamed records and final report are byte-identical to the same
//! spec run locally with `campaign --jobs N`, regardless of worker
//! count, connection churn, daemon restarts (with a journal directory)
//! or other in-flight campaigns.

pub mod client;
pub mod daemon;

pub use client::{cancel, status, stop, submit, submit_watch, SubmitOutcome};
pub use daemon::{run_daemon, DaemonConfig, DaemonReport, WorkerStats};

use sea_campaign::CampaignError;

/// Shorthand for transport-classified errors.
pub(crate) fn terr(msg: impl Into<String>) -> CampaignError {
    CampaignError::Transport(msg.into())
}
