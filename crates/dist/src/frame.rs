//! The length-prefixed frame protocol between coordinator and workers.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! [len: u32 LE] [kind: u8] [body: len-1 bytes]
//! ```
//!
//! `len` counts the kind byte plus the body, so it is at least 1; lengths
//! above [`MAX_FRAME_LEN`] + 1 are rejected before any allocation. The
//! first frame on a connection must be [`FrameKind::Hello`] carrying the
//! handshake line `sea-dist <version>`; the coordinator answers with the
//! same line in a [`FrameKind::Welcome`] frame. **Compatibility rule**
//! (mirroring the campaign journal's): a version mismatch is refused with
//! both versions in the message — a worker may only serve a coordinator
//! speaking its exact protocol version.
//!
//! Reading is defensive by construction: torn frames surface as
//! [`FrameError::Io`], a clean close at a frame boundary as
//! [`FrameError::Closed`], and oversized lengths, unknown kinds or
//! malformed handshakes as [`FrameError::Malformed`] — never a panic and
//! never an unbounded allocation.

use std::io::{Read, Write};

/// Protocol version spoken by this build (handshake line).
///
/// History: version 1 was the worker dialect alone (kinds 1–8);
/// version 2 added the client-facing service frames (kinds 9+ — submit,
/// subscribe, status, cancel, stop) for the `sea-serve` daemon. The
/// frame *grammar* and the unit encoding (`sea_opt::codec::WIRE_VERSION`)
/// are unchanged, but an old worker would see unknown kind bytes from a
/// new daemon's Refuse-with-status path, so the exact-match rule bumps.
pub const PROTOCOL_VERSION: u32 = 2;

/// Magic token opening every handshake line.
pub const HANDSHAKE_MAGIC: &str = "sea-dist";

/// Upper bound on a frame body, bytes (a result frame carries one full
/// encoded unit result; the largest realistic payloads are Monte-Carlo
/// simulation traces, well under this).
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Worker → coordinator: handshake line, first frame on a connection.
    Hello = 1,
    /// Coordinator → worker: handshake accepted.
    Welcome = 2,
    /// Coordinator → worker: one unit work item ([`crate::wire`]).
    Work = 3,
    /// Worker → coordinator: one completed unit result.
    Result = 4,
    /// Worker → coordinator: liveness while evaluating.
    Heartbeat = 5,
    /// Coordinator → worker: campaign complete, disconnect cleanly.
    Shutdown = 6,
    /// Either direction: the peer violated the protocol; body is the
    /// reason, connection closes after.
    Refuse = 7,
    /// Worker → coordinator: a dispatched unit failed hard (body:
    /// [`crate::wire::encode_work_error`]).
    WorkError = 8,
    /// Client → daemon: submit a campaign spec (body: handshake line,
    /// newline, spec text). First frame on a client connection.
    Submit = 9,
    /// Daemon → client: submission accepted (body:
    /// `<campaign_id> <spec_hash_hex> <n_units>`).
    Accepted = 10,
    /// Client → daemon: stream a campaign's per-completion records
    /// (body: handshake line, newline, campaign id). First frame on a
    /// client connection.
    Subscribe = 11,
    /// Daemon → client: one JSONL per-completion record line, released
    /// in enumeration order.
    Record = 12,
    /// Daemon → client: the campaign's final JSONL report; closes the
    /// subscription.
    Report = 13,
    /// Client → daemon: request per-campaign progress and per-worker
    /// stats (body: handshake line). First frame on a client connection.
    Status = 14,
    /// Daemon → client: the status report (JSON body).
    StatusReport = 15,
    /// Client → daemon: cancel a campaign (body: handshake line,
    /// newline, campaign id). First frame on a client connection.
    Cancel = 16,
    /// Daemon → client: a client verb finished (body: human-readable
    /// outcome).
    Done = 17,
    /// Client → daemon: shut the daemon down cleanly after releasing the
    /// fleet (body: handshake line). First frame on a client connection.
    Stop = 18,
}

impl FrameKind {
    /// Decodes a kind byte.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Welcome),
            3 => Some(FrameKind::Work),
            4 => Some(FrameKind::Result),
            5 => Some(FrameKind::Heartbeat),
            6 => Some(FrameKind::Shutdown),
            7 => Some(FrameKind::Refuse),
            8 => Some(FrameKind::WorkError),
            9 => Some(FrameKind::Submit),
            10 => Some(FrameKind::Accepted),
            11 => Some(FrameKind::Subscribe),
            12 => Some(FrameKind::Record),
            13 => Some(FrameKind::Report),
            14 => Some(FrameKind::Status),
            15 => Some(FrameKind::StatusReport),
            16 => Some(FrameKind::Cancel),
            17 => Some(FrameKind::Done),
            18 => Some(FrameKind::Stop),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameKind,
    /// Message body (kind-specific; see [`crate::wire`]).
    pub body: Vec<u8>,
}

impl Frame {
    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] for non-UTF-8 bodies.
    pub fn text(&self) -> Result<&str, FrameError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| FrameError::Malformed("frame body is not UTF-8".into()))
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The connection failed mid-frame (torn frame, reset, timeout).
    Io(std::io::Error),
    /// The bytes do not form a frame this protocol version accepts
    /// (oversized length, unknown kind, malformed handshake).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "connection error: {e}"),
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (length prefix, kind byte, body) and flushes.
///
/// # Errors
///
/// Propagates I/O failures; refuses bodies over [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, kind: FrameKind, body: &[u8]) -> std::io::Result<()> {
    let Ok(body_len) = u32::try_from(body.len()) else {
        return Err(std::io::Error::other("frame body too large"));
    };
    if body_len > MAX_FRAME_LEN {
        return Err(std::io::Error::other(format!(
            "frame body of {body_len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let len = body_len + 1; // kind byte
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[kind as u8])?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean close at a frame boundary,
/// [`FrameError::Io`] on a torn frame, [`FrameError::Malformed`] for
/// zero/oversized lengths or unknown kind bytes.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; 4];
    // Distinguish a clean close (0 bytes at a frame boundary) from a torn
    // header: read the first byte separately.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut header[1..]).map_err(FrameError::Io)?;
    let len = u32::from_le_bytes(header);
    if len == 0 {
        return Err(FrameError::Malformed("zero-length frame".into()));
    }
    if len > MAX_FRAME_LEN + 1 {
        return Err(FrameError::Malformed(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut kind_byte = [0u8; 1];
    r.read_exact(&mut kind_byte).map_err(FrameError::Io)?;
    let Some(kind) = FrameKind::from_u8(kind_byte[0]) else {
        return Err(FrameError::Malformed(format!(
            "unknown frame kind {}",
            kind_byte[0]
        )));
    };
    let mut body = vec![0u8; len as usize - 1];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    Ok(Frame { kind, body })
}

/// The handshake line both sides exchange.
#[must_use]
pub fn handshake_line() -> String {
    format!("{HANDSHAKE_MAGIC} {PROTOCOL_VERSION}")
}

/// Parses and checks a handshake line, enforcing the compatibility rule.
///
/// # Errors
///
/// A message naming both versions on skew, or describing the malformation.
pub fn check_handshake(body: &[u8]) -> Result<(), String> {
    let text = std::str::from_utf8(body).map_err(|_| "handshake is not UTF-8".to_string())?;
    let mut parts = text.split_whitespace();
    match parts.next() {
        Some(HANDSHAKE_MAGIC) => {}
        other => return Err(format!("not a sea-dist handshake (got `{other:?}`)")),
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| "handshake carries no version".to_string())?;
    if parts.next().is_some() {
        return Err("trailing tokens after the handshake version".into());
    }
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version skew: peer speaks {version}, this build speaks {PROTOCOL_VERSION}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(kind: FrameKind, body: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, body).unwrap();
        read_frame(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Welcome,
            FrameKind::Work,
            FrameKind::Result,
            FrameKind::Heartbeat,
            FrameKind::Shutdown,
            FrameKind::Refuse,
            FrameKind::WorkError,
            FrameKind::Submit,
            FrameKind::Accepted,
            FrameKind::Subscribe,
            FrameKind::Record,
            FrameKind::Report,
            FrameKind::Status,
            FrameKind::StatusReport,
            FrameKind::Cancel,
            FrameKind::Done,
            FrameKind::Stop,
        ] {
            let f = round_trip(kind, b"payload \x00 bytes");
            assert_eq!(f.kind, kind);
            assert_eq!(f.body, b"payload \x00 bytes");
        }
        assert_eq!(round_trip(FrameKind::Heartbeat, b"").body, b"");
    }

    #[test]
    fn clean_close_torn_frames_and_garbage_are_errors_not_panics() {
        // Clean close at a frame boundary.
        assert!(matches!(
            read_frame(&mut [].as_slice()),
            Err(FrameError::Closed)
        ));
        // Every proper prefix of a valid frame is a torn frame.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Work, b"0 abc unit body").unwrap();
        for cut in 1..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Err(FrameError::Io(_)) => {}
                other => panic!("prefix of {cut} bytes: {other:?}"),
            }
        }
        // Zero length.
        assert!(matches!(
            read_frame(&mut [0, 0, 0, 0].as_slice()),
            Err(FrameError::Malformed(_))
        ));
        // Oversized length must be rejected before allocating.
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(FrameError::Malformed(_))
        ));
        // Unknown kind byte.
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xEE, 0x00]);
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn deterministic_garbage_streams_never_panic() {
        // A cheap xorshift fuzz over raw byte streams: every outcome must
        // be Ok or Err, never a panic or an unbounded allocation.
        let mut state = 0x5EA0_D15Cu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let len = (next() % 64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
            let _ = read_frame(&mut bytes.as_slice());
        }
    }

    #[test]
    fn handshake_enforces_magic_and_version() {
        assert!(check_handshake(handshake_line().as_bytes()).is_ok());
        assert!(check_handshake(b"sea-fish 1").is_err());
        assert!(check_handshake(b"sea-dist").is_err());
        assert!(check_handshake(b"sea-dist x").is_err());
        assert!(check_handshake(b"sea-dist 2 extra").is_err());
        assert!(check_handshake(&[0xFF, 0xFE]).is_err());
        // Version 1 (the pre-service dialect) is refused, naming both.
        assert!(check_handshake(b"sea-dist 1").is_err());
        let skew = check_handshake(b"sea-dist 999").unwrap_err();
        assert!(skew.contains("999") && skew.contains('2'), "{skew}");
    }
}
