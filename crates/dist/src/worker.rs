//! The worker: connects to a coordinator, evaluates dispatched units, and
//! streams results back.
//!
//! A worker evaluates through [`sea_campaign::produce_unit`] — the exact
//! path the in-process thread-pool workers run (optional local cache
//! probe, evaluation, best-effort cache publication) — so a unit computes
//! the same bytes no matter which machine runs it. While a unit
//! evaluates, the connection stays live with periodic
//! [`FrameKind::Heartbeat`] frames so the coordinator can tell "slow"
//! from "dead".
//!
//! Resilience: a lost connection is a *session* failure, not a worker
//! failure. [`run_worker`] reconnects with exponential backoff (100 ms
//! doubling to ~2 s) inside a fresh [`WorkerConfig::connect_retry`]
//! window after every loss, so a coordinator (or daemon) restart
//! mid-campaign keeps its fleet: workers rejoin as soon as the listener
//! is back. Only a clean [`FrameKind::Shutdown`], a protocol violation,
//! or an exhausted reconnect window ends the worker. A heartbeat that
//! fails mid-evaluation additionally trips the unit's cooperative cancel
//! flag ([`sea_campaign::produce_unit_cancellable`]) so the in-flight
//! evaluation stops at the next scaling-chunk boundary instead of
//! finishing a result nobody can receive.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use sea_campaign::{encode_result, produce_unit_cancellable, Cache, CampaignError};

use crate::frame::{
    check_handshake, handshake_line, read_frame, write_frame, FrameError, FrameKind,
};
use crate::terr;
use crate::wire;

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig<'a> {
    /// Optional local result cache, probed before evaluating and
    /// published to after — shares work across campaigns exactly like the
    /// local engine's `--cache`.
    pub cache: Option<&'a Cache>,
    /// Worker threads for each unit's own scaling enumeration (the
    /// outcome is job-count invariant; this only trades wall-clock).
    pub inner_jobs: usize,
    /// How often to heartbeat while evaluating.
    pub heartbeat_interval: Duration,
    /// Keep retrying each connect for this long: the initial one (workers
    /// often start before their coordinator listens) and every reconnect
    /// after a lost connection (coordinators restart). The window is
    /// fresh per loss, so a long campaign tolerates any number of
    /// restarts as long as each outage is shorter than this.
    pub connect_retry: Duration,
    /// Test hook: after this many completed units, drop the connection
    /// without replying the next time work arrives — simulates a worker
    /// killed mid-unit.
    pub abandon_after: Option<usize>,
}

impl Default for WorkerConfig<'_> {
    fn default() -> Self {
        WorkerConfig {
            cache: None,
            inner_jobs: 1,
            heartbeat_interval: Duration::from_secs(2),
            connect_retry: Duration::from_secs(10),
            abandon_after: None,
        }
    }
}

/// What a worker did before disconnecting. Aggregated across every
/// session when the worker reconnects after a lost coordinator.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Units evaluated (or served from the worker's local cache).
    pub completed: usize,
    /// Completions served from the worker-side cache.
    pub cache_hits: usize,
    /// Whether the worker left deliberately (a clean [`FrameKind::Shutdown`]
    /// from the coordinator, or the `abandon_after` test hook).
    pub clean_exit: bool,
    /// Sessions re-established after a lost connection.
    pub reconnects: usize,
}

/// Connects with exponential backoff (100 ms doubling to ~2 s between
/// attempts) until `retry` elapses.
fn connect(addr: &str, retry: Duration) -> Result<TcpStream, CampaignError> {
    let deadline = Instant::now() + retry;
    let mut delay = Duration::from_millis(100);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                crate::configure_stream(&stream)
                    .map_err(|e| terr(format!("cannot configure the dispatch socket: {e}")))?;
                return Ok(stream);
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(2));
            }
            Err(e) => return Err(terr(format!("cannot connect to coordinator {addr}: {e}"))),
        }
    }
}

/// How one connected session ended.
enum SessionEnd {
    /// The coordinator sent a clean shutdown (or the abandon hook fired):
    /// the worker is done.
    Clean,
    /// The connection died (close, reset, torn frame, failed write) —
    /// reconnect and keep serving.
    Lost(String),
}

/// Connects to a coordinator, serves dispatched units until a clean
/// shutdown — reconnecting with backoff after every lost connection —
/// and reports what it did across all sessions.
///
/// # Errors
///
/// Initial-connect and reconnect windows exhausted, handshake refusals
/// (version skew), and protocol violations. A lost connection alone is
/// *not* an error: the coordinator re-queues the in-flight unit and the
/// worker rejoins when the listener returns.
pub fn run_worker(addr: &str, config: &WorkerConfig<'_>) -> Result<WorkerReport, CampaignError> {
    let mut report = WorkerReport::default();
    let mut lost_reason: Option<String> = None;
    loop {
        let mut stream = match connect(addr, config.connect_retry) {
            Ok(stream) => stream,
            Err(e) => match lost_reason {
                // A restart outage longer than the window: surface both
                // the original loss and the failed reconnect.
                Some(reason) => {
                    return Err(terr(format!("{reason}; reconnect failed: {e}")));
                }
                None => return Err(e),
            },
        };
        if lost_reason.take().is_some() {
            report.reconnects += 1;
        }
        match serve_session(&mut stream, config, &mut report)? {
            SessionEnd::Clean => {
                report.clean_exit = true;
                return Ok(report);
            }
            SessionEnd::Lost(reason) => lost_reason = Some(reason),
        }
    }
}

/// One handshake-to-disconnect session on an established connection.
fn serve_session(
    stream: &mut TcpStream,
    config: &WorkerConfig<'_>,
    report: &mut WorkerReport,
) -> Result<SessionEnd, CampaignError> {
    if write_frame(stream, FrameKind::Hello, handshake_line().as_bytes()).is_err() {
        return Ok(SessionEnd::Lost("coordinator gone before greeting".into()));
    }
    match read_frame(stream) {
        Ok(frame) if frame.kind == FrameKind::Welcome => {
            check_handshake(&frame.body).map_err(terr)?;
        }
        Ok(frame) if frame.kind == FrameKind::Refuse => {
            return Err(terr(format!(
                "coordinator refused the connection: {}",
                frame.text().map(str::to_owned).unwrap_or_default()
            )));
        }
        Ok(frame) => {
            return Err(terr(format!(
                "expected a welcome, got a {:?} frame",
                frame.kind
            )));
        }
        Err(e) => return Ok(SessionEnd::Lost(format!("handshake failed: {e}"))),
    }

    loop {
        let frame = match read_frame(stream) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => {
                return Ok(SessionEnd::Lost(
                    "coordinator closed the connection mid-campaign".into(),
                ));
            }
            Err(e) => return Ok(SessionEnd::Lost(format!("connection lost: {e}"))),
        };
        match frame.kind {
            FrameKind::Shutdown => return Ok(SessionEnd::Clean),
            FrameKind::Refuse => {
                return Err(terr(format!(
                    "coordinator refused: {}",
                    frame.text().map(str::to_owned).unwrap_or_default()
                )));
            }
            FrameKind::Work => {
                if config.abandon_after.is_some_and(|n| report.completed >= n) {
                    // Test hook: vanish mid-unit, exactly like a killed
                    // process — no reply, just a dropped connection.
                    return Ok(SessionEnd::Clean);
                }
                let (index, _hash, unit) = wire::decode_work(
                    frame
                        .text()
                        .map_err(|e| terr(format!("work frame is not UTF-8: {e}")))?,
                )
                .map_err(|e| terr(format!("refusing work item: {e}")))?;

                let done = match evaluate_with_heartbeats(
                    stream,
                    index,
                    &unit,
                    config.cache,
                    config.inner_jobs,
                    config.heartbeat_interval,
                ) {
                    Ok(done) => done,
                    // The only failure path in there is a dead heartbeat
                    // write: the coordinator is gone, the unit's cancel
                    // flag is tripped, the result (if any) is undeliverable.
                    Err(reason) => return Ok(SessionEnd::Lost(reason)),
                };
                match done.result {
                    Ok(result) => {
                        let entry = encode_result(&result);
                        let body = wire::encode_result_body(
                            index,
                            sea_campaign::unit_hash(&result.unit),
                            &entry,
                        );
                        if body.len() > crate::frame::MAX_FRAME_LEN as usize {
                            // An unshippable result must become a hard
                            // unit error, not a dead worker — dying here
                            // would make the coordinator re-queue the
                            // unit onto the next worker, killing the
                            // whole fleet one by one and hanging the
                            // campaign.
                            let msg = format!(
                                "result of {} bytes exceeds the {}-byte frame limit",
                                body.len(),
                                crate::frame::MAX_FRAME_LEN
                            );
                            let body = wire::encode_work_error(index, &msg);
                            if write_frame(stream, FrameKind::WorkError, body.as_bytes()).is_err() {
                                return Ok(SessionEnd::Lost("cannot send error report".into()));
                            }
                            continue;
                        }
                        if write_frame(stream, FrameKind::Result, body.as_bytes()).is_err() {
                            return Ok(SessionEnd::Lost("cannot send result".into()));
                        }
                        report.completed += 1;
                        if done.from_cache {
                            report.cache_hits += 1;
                        }
                    }
                    Err(CampaignError::Opt(sea_opt::OptError::Cancelled)) => {
                        // Cancellation only fires from the heartbeat path,
                        // which already returned Lost; reaching here means
                        // the flag tripped on the final chunk boundary
                        // while the send still worked — treat as lost so
                        // the unit is re-queued, never reported failed.
                        return Ok(SessionEnd::Lost("unit cancelled mid-connection".into()));
                    }
                    Err(e) => {
                        let body = wire::encode_work_error(index, &e.to_string());
                        if write_frame(stream, FrameKind::WorkError, body.as_bytes()).is_err() {
                            return Ok(SessionEnd::Lost("cannot send error report".into()));
                        }
                    }
                }
            }
            other => {
                return Err(terr(format!("unexpected {other:?} frame from coordinator")));
            }
        }
    }
}

/// Evaluates one unit on a helper thread while the calling thread keeps
/// the connection alive with heartbeats. A failed heartbeat trips the
/// unit's cooperative cancel flag before returning, so the evaluation
/// thread — which this scope must join — exits at the next
/// scaling-chunk boundary rather than finishing a result nobody will
/// receive.
fn evaluate_with_heartbeats(
    stream: &mut TcpStream,
    index: usize,
    unit: &sea_campaign::Unit,
    cache: Option<&Cache>,
    inner_jobs: usize,
    heartbeat_interval: Duration,
) -> Result<sea_campaign::Completion, String> {
    let cancel = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel();
        let eval_cancel = Arc::clone(&cancel);
        s.spawn(move || {
            let _ = tx.send(produce_unit_cancellable(
                index,
                unit,
                cache,
                inner_jobs.max(1),
                Some(&eval_cancel),
            ));
        });
        loop {
            match rx.recv_timeout(heartbeat_interval) {
                Ok(done) => return Ok(done),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Err(e) = write_frame(stream, FrameKind::Heartbeat, &[]) {
                        cancel.store(true, Ordering::Relaxed);
                        return Err(format!("cannot heartbeat (coordinator gone?): {e}"));
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    cancel.store(true, Ordering::Relaxed);
                    return Err("unit evaluation thread died".into());
                }
            }
        }
    })
}
